//! End-to-end acceptance tests for `nsc serve`: the **replay
//! oracle** (streaming a recorded trace through the server
//! reproduces `nsc estimate` byte for byte, at multiple connection
//! fan-outs), the no-final-newline wire case, and degenerate streams
//! surfacing as typed statuses instead of JSON `null`s.

use nsc_serve::server::Conn;
use nsc_serve::{query_status, replay_trace, Endpoint, LoadgenConfig, ServeConfig, Server};
use nsc_trace::DEFAULT_WINDOWS;
use serde_json::Value;
use std::io::{Read, Write};
use std::path::Path;

fn fixture(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn cli_json(args: &[&str]) -> Value {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    serde_json::from_str(&nsc_cli::run(&owned).expect("command succeeds")).expect("valid JSON")
}

fn bind(shards: usize) -> (Server, Endpoint) {
    let server = Server::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
        ServeConfig {
            shards,
            windows: DEFAULT_WINDOWS,
            threads: 0,
        },
    )
    .expect("bind on an ephemeral port");
    let endpoint = Endpoint::Tcp(server.tcp_addr().unwrap().to_string());
    (server, endpoint)
}

/// The headline acceptance criterion: replay the golden fixture at
/// several connection counts and diff every estimate field in the
/// server's status against the batch `nsc estimate` JSON — byte for
/// byte, since both paths drive the same `InferenceBuilder`.
#[test]
fn replayed_golden_trace_matches_batch_estimate_at_every_fanout() {
    let golden = fixture("golden.jsonl");
    let est = cli_json(&["estimate", "--trace", &golden, "--format", "json"]);
    let results = &est["results"];
    let trace_events = est["trace"]["events"].as_u64().unwrap();

    for connections in [1usize, 4] {
        let (server, endpoint) = bind(4);
        let report = replay_trace(
            &endpoint,
            Path::new(&golden),
            &LoadgenConfig {
                connections,
                rate: 0.0,
                repeat: 1,
            },
        )
        .expect("replay succeeds");
        assert_eq!(report.connections, connections);
        assert_eq!(report.events_per_connection, trace_events);
        for ack in &report.acks {
            assert_eq!(ack["schema"], "nsc-serve/v1");
            assert_eq!(ack["events"], serde_json::json!(trace_events));
            assert!(ack.get("error").is_none(), "unexpected ack error: {ack}");
        }

        let status = query_status(&endpoint).expect("status query succeeds");
        let streams = status["streams"].as_array().unwrap();
        assert_eq!(streams.len(), connections);
        for stream in streams {
            assert_eq!(stream["status"], "ok", "stream not ok: {stream}");
            for key in ["counts", "p_d", "p_i", "stationarity", "bounds"] {
                assert_eq!(
                    serde_json::to_string(&stream[key]).unwrap(),
                    serde_json::to_string(&results[key]).unwrap(),
                    "field `{key}` diverges from batch at {connections} connections"
                );
            }
        }
        // The whole status document is null-free: every non-finite
        // or undefined quantity must surface as a typed status.
        assert!(!serde_json::to_string(&status).unwrap().contains("null"));
        server.shutdown();
    }
}

/// A stream whose last line arrives without a trailing newline (the
/// sender flushed and half-closed mid-line) still counts every
/// event, exactly like `TraceReader` on a file.
#[test]
fn stream_without_final_newline_still_counts_every_event() {
    let (server, endpoint) = bind(2);
    let mut conn = endpoint.connect().unwrap();
    conn.write_all(
        b"{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1}\n\
          {\"t\":0,\"ev\":\"send\",\"sym\":1}\n\
          {\"t\":1,\"ev\":\"recv\",\"sym\":1}\n\
          {\"t\":2,\"ev\":\"send\",\"sym\":0}\n\
          {\"t\":3,\"ev\":\"del\",\"sym\":0}",
    )
    .unwrap();
    conn.flush().unwrap();
    conn.shutdown_write().unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    let ack: Value = serde_json::from_str(reply.trim()).unwrap();
    assert_eq!(ack["events"], serde_json::json!(4));
    assert!(ack.get("error").is_none());

    let status = query_status(&endpoint).unwrap();
    assert_eq!(status["streams"][0]["events"], serde_json::json!(4));
    assert_eq!(status["streams"][0]["status"], "ok");
    server.shutdown();
}

/// An acks-only stream reports `status: "insufficient"` with the
/// typed inference reason (never a `NaN`-decayed `null`); a
/// malformed line mid-stream reports the ack error but keeps the
/// partial tallies visible.
#[test]
fn degenerate_and_malformed_streams_report_typed_statuses() {
    let (server, endpoint) = bind(2);

    // Acks only: no P_d evidence.
    let mut conn = endpoint.connect().unwrap();
    conn.write_all(
        b"{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1}\n{\"t\":0,\"ev\":\"ack\"}\n",
    )
    .unwrap();
    conn.flush().unwrap();
    conn.shutdown_write().unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();

    // Valid prefix, then garbage: the error is positioned, the two
    // valid events stay tallied.
    let mut conn = endpoint.connect().unwrap();
    conn.write_all(
        b"{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1}\n\
          {\"t\":0,\"ev\":\"send\",\"sym\":1}\n\
          {\"t\":1,\"ev\":\"recv\",\"sym\":1}\n\
          not json\n",
    )
    .unwrap();
    conn.flush().unwrap();
    conn.shutdown_write().unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    let ack: Value = serde_json::from_str(reply.trim()).unwrap();
    assert_eq!(ack["events"], serde_json::json!(2));
    assert!(ack["error"].as_str().unwrap().contains("line 4"), "{ack}");

    let status = query_status(&endpoint).unwrap();
    let streams = status["streams"].as_array().unwrap();
    assert_eq!(streams.len(), 2);
    assert_eq!(streams[0]["status"], "insufficient");
    assert!(streams[0]["reason"].as_str().unwrap().contains("P_d"));
    // The malformed stream still infers from its two valid events.
    assert_eq!(streams[1]["status"], "ok");
    assert_eq!(streams[1]["events"], serde_json::json!(2));
    assert!(streams[1]["error"].as_str().unwrap().contains("line 4"));
    // No nulls anywhere, even with errors and degenerate streams.
    assert!(!serde_json::to_string(&status).unwrap().contains("null"));
    server.shutdown();
}
