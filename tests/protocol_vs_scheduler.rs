//! The same synchronization protocols run over (a) an abstract
//! Bernoulli operation schedule and (b) a real scheduler trace with
//! the same covert-pair statistics — the results must agree, which is
//! the model-transfer claim behind using Definition 1 for real
//! systems.

use nsc_core::sim::counter::run_counter_protocol;
use nsc_core::sim::stop_wait::run_stop_and_wait;
use nsc_core::sim::{BernoulliSchedule, TraceSchedule};
use nsc_integration::random_message;
use nsc_sched::covert::ops_from_trace;
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::system::{Uniprocessor, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fair lottery trace behaves like a Bernoulli(1/2) schedule for
/// the counter protocol: same stale-fill fraction and similar
/// symbol rate.
#[test]
fn counter_protocol_transfers_from_bernoulli_to_lottery() {
    let bits = 3u32;
    let msg = random_message(bits, 20_000, 1);

    let mut bern = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(2)).unwrap();
    let abstract_run = run_counter_protocol(&msg, &mut bern, usize::MAX).unwrap();

    let mut sys =
        Uniprocessor::new(WorkloadSpec::covert_pair(), PolicyKind::Lottery.build()).unwrap();
    // Run long enough that the trace covers the whole message.
    let trace = sys.run(200_000, &mut StdRng::seed_from_u64(3));
    let mut sched = TraceSchedule::new(ops_from_trace(&trace));
    let concrete_run = run_counter_protocol(&msg, &mut sched, usize::MAX).unwrap();

    assert_eq!(abstract_run.received.len(), msg.len());
    assert_eq!(concrete_run.received.len(), msg.len());
    let stale_a = abstract_run.stale_fills as f64 / msg.len() as f64;
    let stale_c = concrete_run.stale_fills as f64 / msg.len() as f64;
    assert!((stale_a - stale_c).abs() < 0.03, "{stale_a} vs {stale_c}");
    let err_a = abstract_run.symbol_error_rate(&msg);
    let err_c = concrete_run.symbol_error_rate(&msg);
    assert!((err_a - err_c).abs() < 0.03, "{err_a} vs {err_c}");
}

/// Stop-and-wait over a round-robin trace is exactly the synchronous
/// ideal: two operations per symbol, zero waste.
#[test]
fn stop_and_wait_over_round_robin_trace_is_ideal() {
    let msg = random_message(2, 5_000, 4);
    let mut sys =
        Uniprocessor::new(WorkloadSpec::covert_pair(), PolicyKind::RoundRobin.build()).unwrap();
    let trace = sys.run(20_000, &mut StdRng::seed_from_u64(5));
    let mut sched = TraceSchedule::new(ops_from_trace(&trace));
    let out = run_stop_and_wait(&msg, &mut sched, usize::MAX).unwrap();
    assert_eq!(out.received, msg);
    assert_eq!(out.ops, 2 * msg.len());
    assert_eq!(out.waste_fraction(), 0.0);
}

/// Background load stretches wall-clock time but not the covert-pair
/// operation count: stop-and-wait needs the same number of
/// covert-pair ops with or without background processes.
#[test]
fn background_load_is_transparent_to_covert_ops() {
    let msg = random_message(2, 2_000, 6);
    let run_with_background = |n: usize| {
        let spec = WorkloadSpec::covert_pair().with_background(n, 1.0);
        let mut sys = Uniprocessor::new(spec, PolicyKind::RoundRobin.build()).unwrap();
        let trace = sys.run(100_000, &mut StdRng::seed_from_u64(7));
        let mut sched = TraceSchedule::new(ops_from_trace(&trace));
        run_stop_and_wait(&msg, &mut sched, usize::MAX).unwrap()
    };
    let lean = run_with_background(0);
    let loaded = run_with_background(4);
    assert_eq!(lean.received, msg);
    assert_eq!(loaded.received, msg);
    assert_eq!(lean.ops, loaded.ops);
}

/// Sweeping the lottery weight ratio sweeps the effective scheduler
/// bias q, and the counter protocol's stale fraction follows the
/// receiver's share of operations.
#[test]
fn lottery_weights_control_insertion_pressure() {
    let bits = 2u32;
    let msg = random_message(bits, 15_000, 8);
    let mut stale_fracs = Vec::new();
    for (ws, wr) in [(3u32, 1u32), (1, 1), (1, 3)] {
        let spec = WorkloadSpec::covert_pair()
            .map_sender(|p| p.with_weight(ws))
            .map_receiver(|p| p.with_weight(wr));
        let mut sys = Uniprocessor::new(spec, PolicyKind::Lottery.build()).unwrap();
        let trace = sys.run(400_000, &mut StdRng::seed_from_u64(9));
        let mut sched = TraceSchedule::new(ops_from_trace(&trace));
        let out = run_counter_protocol(&msg, &mut sched, usize::MAX).unwrap();
        stale_fracs.push(out.stale_fills as f64 / out.received.len() as f64);
    }
    // More receiver share => more stale fills.
    assert!(
        stale_fracs[0] < stale_fracs[1] && stale_fracs[1] < stale_fracs[2],
        "{stale_fracs:?}"
    );
}
