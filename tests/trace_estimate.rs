//! End-to-end acceptance tests for the `nsc_trace` subsystem: the
//! `record` → `estimate` pipeline, the golden fixture, byte-level
//! thread invariance, and line-numbered rejection of corrupt traces.

use nsc_trace::{read_trace, TraceReader};
use serde_json::Value;
use std::fs;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nsc-trace-it-{tag}-{}.jsonl", std::process::id()))
}

fn cli(args: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    nsc_cli::run(&owned)
}

fn cli_json(args: &[&str]) -> Value {
    serde_json::from_str(&cli(args).expect("command succeeds")).expect("valid JSON")
}

/// The headline acceptance criterion: `nsc record` a campaign, then
/// `nsc estimate` from nothing but the trace file, and the campaign's
/// measured `(P_d, P_i)` fall inside the estimate's reported 95%
/// intervals — deterministically at any thread count.
#[test]
fn record_then_estimate_reproduces_campaign_parameters() {
    let run_record = |threads: &str, tag: &str| -> (Value, Vec<u8>) {
        let path = temp_path(tag);
        let doc = cli_json(&[
            "record",
            "--mechanism",
            "unsync",
            "--bits",
            "2",
            "--len",
            "400",
            "--trials",
            "10",
            "--seed",
            "17",
            "--threads",
            threads,
            "--trace-out",
            path.to_str().unwrap(),
            "--format",
            "json",
        ]);
        let bytes = fs::read(&path).unwrap();
        let _ = fs::remove_file(&path);
        (doc, bytes)
    };
    let (doc_serial, trace_serial) = run_record("1", "serial");
    let (_, trace_parallel) = run_record("4", "parallel");
    // The capture is byte-identical at any --threads setting: its
    // header embeds only the deterministic manifest.
    assert_eq!(trace_serial, trace_parallel);

    // The trace parses and its header carries the campaign manifest.
    let (header, events) = read_trace(trace_serial.as_slice()).unwrap();
    assert_eq!(header.alphabet_bits, 2);
    assert_eq!(header.manifest["master_seed"], 17);
    assert!(!events.is_empty());
    assert_eq!(doc_serial["trace"]["events"], events.len() as u64);

    // Estimate from the trace alone.
    let path = temp_path("estimate");
    fs::write(&path, &trace_serial).unwrap();
    let est = cli_json(&[
        "estimate",
        "--trace",
        path.to_str().unwrap(),
        "--format",
        "json",
    ]);
    let _ = fs::remove_file(&path);

    let in_wilson = |rate: &Value, truth: f64| {
        let lo = rate["wilson"]["lower"].as_f64().unwrap();
        let hi = rate["wilson"]["upper"].as_f64().unwrap();
        assert!(
            lo <= truth && truth <= hi,
            "campaign value {truth} outside reported 95% interval [{lo}, {hi}]"
        );
    };
    let p_d = doc_serial["summary"]["p_d"]["mean"].as_f64().unwrap();
    let p_i = doc_serial["summary"]["p_i"]["mean"].as_f64().unwrap();
    in_wilson(&est["results"]["p_d"], p_d);
    in_wilson(&est["results"]["p_i"], p_i);

    // The estimate embeds the recording's provenance end-to-end.
    assert_eq!(est["trace"]["manifest"]["master_seed"], 17);
    assert!(est["results"]["bounds"]["upper_bound"]["estimate"].is_number());
}

/// The golden fixture has hand-counted events, so the estimator's
/// output is known exactly: P_d = 2/8, P_i = 2/(2+6).
#[test]
fn golden_fixture_estimates_exactly() {
    let est = cli_json(&[
        "estimate",
        "--trace",
        &fixture("golden.jsonl"),
        "--format",
        "json",
    ]);
    let counts = &est["results"]["counts"];
    assert_eq!(counts["sends"], 8);
    assert_eq!(counts["deletions"], 2);
    assert_eq!(counts["receipts"], 6);
    assert_eq!(counts["insertions"], 2);
    assert_eq!(counts["acks"], 1);
    assert!((est["results"]["p_d"]["mle"].as_f64().unwrap() - 0.25).abs() < 1e-12);
    assert!((est["results"]["p_i"]["mle"].as_f64().unwrap() - 0.25).abs() < 1e-12);
    assert_eq!(est["results"]["stationarity"]["stationary"], true);
    // Header metadata flows through.
    assert_eq!(est["trace"]["schema"], "nsc-trace/v1");
    assert_eq!(est["trace"]["alphabet_bits"], 2);
    assert_eq!(est["trace"]["manifest"]["source"], "golden fixture");
}

/// `estimate --format json` is identical at any thread count once
/// `manifest.execution` (timing) is removed — the same invariant CI
/// checks with `jq 'del(.manifest.execution)'`.
#[test]
fn golden_estimate_json_is_thread_invariant_sans_execution() {
    let with_threads = |t: &str| -> Value {
        let mut doc = cli_json(&[
            "estimate",
            "--trace",
            &fixture("golden.jsonl"),
            "--threads",
            t,
            "--format",
            "json",
        ]);
        doc["manifest"].as_object_mut().unwrap().remove("execution");
        doc
    };
    assert_eq!(
        serde_json::to_string_pretty(&with_threads("1")).unwrap(),
        serde_json::to_string_pretty(&with_threads("4")).unwrap()
    );
}

/// Corrupt traces are rejected with 1-based line positions, both at
/// the library layer and through the CLI.
#[test]
fn corrupt_fixtures_fail_with_line_numbers() {
    let truncated = fixture("corrupt_truncated.jsonl");
    let err = cli(&["estimate", "--trace", &truncated]).unwrap_err();
    assert!(err.contains("line 3"), "{err}");

    let versioned = fixture("corrupt_version.jsonl");
    let err = cli(&["estimate", "--trace", &versioned]).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    assert!(err.contains("nsc-trace/v9"), "{err}");

    // Same positions from the streaming reader directly.
    let mut reader = TraceReader::open(&truncated).unwrap();
    assert!(reader.read_event().unwrap().is_some()); // line 2 is fine
    let err = reader.read_event().unwrap_err();
    assert!(err.to_string().contains("line 3"), "{err}");
    assert!(TraceReader::open(&versioned).is_err());
}
