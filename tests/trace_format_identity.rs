//! The trace writer's manual JSONL serializer against the serde
//! rendering it replaced: byte-identical on the golden fixture and
//! on arbitrary generated traces, with the reader's canonical-line
//! fast path recovering exactly what was written.

use nsc_trace::{read_trace, write_trace, TraceEvent, TraceEventKind, TraceHeader};
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Serializes `events` through the manual writer and returns the
/// event lines (header dropped).
fn manual_lines(bits: u32, events: &[TraceEvent]) -> Vec<String> {
    let mut out = Vec::new();
    write_trace(&mut out, &TraceHeader::new(bits), events.iter().copied()).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .skip(1)
        .map(str::to_owned)
        .collect()
}

#[test]
fn golden_fixture_manual_and_serde_paths_agree() {
    let text = std::fs::read_to_string(fixture("golden.jsonl")).unwrap();
    let (header, events) = read_trace(text.as_bytes()).unwrap();
    assert!(!events.is_empty());

    // Re-serializing through the manual writer reproduces the serde
    // rendering byte for byte…
    let lines = manual_lines(header.alphabet_bits, &events);
    assert_eq!(lines.len(), events.len());
    for (line, event) in lines.iter().zip(&events) {
        assert_eq!(line, &serde_json::to_string(event).unwrap());
    }
    // …and each fixture line means the same thing to the serde
    // deserializer as it did to the reader's fast path.
    for (line, event) in text.lines().skip(1).zip(&events) {
        let via_serde: TraceEvent = serde_json::from_str(line).unwrap();
        assert_eq!(&via_serde, event);
    }
}

/// An alphabet width plus raw (tick-delta, symbol, kind-selector)
/// triples; deltas mix small steps with huge jumps so multi-digit
/// and near-`u64::MAX` ticks are exercised.
fn trace_strategy() -> impl Strategy<Value = (u32, Vec<(u64, u32, u8)>)> {
    (1u32..=16).prop_flat_map(|bits| {
        let sym = 0..(1u32 << bits);
        let delta = prop_oneof![4 => 0u64..4, 1 => Just(u64::MAX / 4)];
        (
            Just(bits),
            prop::collection::vec((delta, sym, 0u8..5), 1..100),
        )
    })
}

fn build_events(raw: Vec<(u64, u32, u8)>) -> Vec<TraceEvent> {
    let mut tick = 0u64;
    raw.into_iter()
        .map(|(delta, sym, selector)| {
            tick = tick.saturating_add(delta);
            let kind = match selector {
                0 => TraceEventKind::Send(sym),
                1 => TraceEventKind::Recv(sym),
                2 => TraceEventKind::Delete(sym),
                3 => TraceEventKind::Insert(sym),
                _ => TraceEventKind::Ack,
            };
            TraceEvent::new(tick, kind)
        })
        .collect()
}

proptest! {
    #[test]
    fn manual_writer_matches_serde_on_arbitrary_traces(
        (bits, raw) in trace_strategy(),
    ) {
        let events = build_events(raw);
        let mut out = Vec::new();
        write_trace(&mut out, &TraceHeader::new(bits), events.iter().copied()).unwrap();
        let text = String::from_utf8(out).unwrap();
        for (line, event) in text.lines().skip(1).zip(&events) {
            prop_assert_eq!(line, serde_json::to_string(event).unwrap().as_str());
            let via_serde: TraceEvent = serde_json::from_str(line).unwrap();
            prop_assert_eq!(&via_serde, event);
        }
        // The reader — canonical fast path throughout, since the
        // writer emits only canonical lines — recovers the events.
        let (_, back) = read_trace(text.as_bytes()).unwrap();
        prop_assert_eq!(back, events);
    }
}
