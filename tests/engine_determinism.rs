//! The trial engine's determinism contract, exercised across crate
//! boundaries: campaigns over the §3 simulators and the capacity
//! sweep must be bit-identical at every thread count, because every
//! per-trial seed is a pure function of `(master_seed, trial_index)`
//! and partial results merge in fixed batch order.

use nsc_core::engine::{
    fold_trials, fold_trials_with, run_campaign, run_campaign_manifest, run_trials, EngineConfig,
    Mechanism, RunningStats, TrialPlan, TrialRng,
};
use nsc_core::sweep::{sweep_bounds, sweep_bounds_manifest, sweep_bounds_with, Grid};

#[test]
fn campaign_identical_at_every_thread_count() {
    let plan = TrialPlan::new(Mechanism::StopWait, 2, 400, 0.5);
    let reference = run_campaign(&EngineConfig::serial(11), &plan, 24).unwrap();
    for threads in [2usize, 3, 4, 8] {
        let cfg = EngineConfig::seeded(11).with_threads(threads);
        let got = run_campaign(&cfg, &plan, 24).unwrap();
        assert_eq!(reference, got, "threads = {threads}");
    }
}

#[test]
fn campaign_summaries_render_identically() {
    // Byte-level check on the rendered form — the same property the
    // CI determinism job asserts on the experiments JSON.
    let plan = TrialPlan::new(Mechanism::Slotted { slot_len: 4 }, 2, 300, 0.45);
    let one = run_campaign(&EngineConfig::serial(5), &plan, 16).unwrap();
    let four = run_campaign(&EngineConfig::seeded(5).with_threads(4), &plan, 16).unwrap();
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
}

#[test]
fn sweep_with_engine_matches_serial_sweep() {
    let grid = Grid::new(0.0, 0.8, 5).unwrap();
    let serial = sweep_bounds(&grid, &grid, &[1, 2, 4]).unwrap();
    let parallel = sweep_bounds_with(
        &EngineConfig::seeded(0).with_threads(4),
        &grid,
        &grid,
        &[1, 2, 4],
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn raw_trial_results_keep_trial_order() {
    let serial: Vec<u64> = run_trials(&EngineConfig::serial(3), 100, |seed, _| seed).unwrap();
    let parallel: Vec<u64> =
        run_trials(&EngineConfig::seeded(3).with_threads(4), 100, |seed, _| {
            seed
        })
        .unwrap();
    assert_eq!(serial, parallel);
    // Seeds are distinct per trial index.
    let mut sorted = serial.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), serial.len());
}

#[test]
fn manifest_deterministic_payload_thread_invariant() {
    // The manifest splits into a reproducibility record (pure
    // function of the run's inputs) and an observational execution
    // record; only the latter may vary with the thread count.
    let plan = TrialPlan::new(Mechanism::Counter, 2, 200, 0.5);
    let (ref_summary, ref_manifest) =
        run_campaign_manifest(&EngineConfig::serial(13), &plan, 20).unwrap();
    for threads in [2usize, 4] {
        let cfg = EngineConfig::seeded(13).with_threads(threads);
        let (summary, manifest) = run_campaign_manifest(&cfg, &plan, 20).unwrap();
        assert_eq!(ref_summary, summary, "threads = {threads}");
        assert_eq!(
            ref_manifest.deterministic(),
            manifest.deterministic(),
            "threads = {threads}"
        );
        // The execution record is present and self-consistent even
        // though it is outside the contract.
        let exec = manifest.execution.expect("campaigns report execution");
        assert_eq!(exec.threads_requested, threads);
        assert_eq!(exec.batches.iter().map(|b| b.trials).sum::<usize>(), 20);
    }

    let grid = Grid::new(0.0, 0.8, 5).unwrap();
    let (_, sweep_serial) =
        sweep_bounds_manifest(&EngineConfig::serial(0), &grid, &grid, &[2]).unwrap();
    let (_, sweep_parallel) =
        sweep_bounds_manifest(&EngineConfig::seeded(0).with_threads(4), &grid, &grid, &[2])
            .unwrap();
    assert_eq!(sweep_serial.deterministic(), sweep_parallel.deterministic());
}

#[test]
fn folded_statistics_bit_identical() {
    use rand::Rng;
    let run = |threads: usize| -> RunningStats {
        fold_trials(
            &EngineConfig::seeded(42).with_threads(threads),
            500,
            |_, rng| rng.gen::<f64>(),
        )
        .unwrap()
    };
    let reference = run(1);
    for threads in [2usize, 4, 7] {
        let got = run(threads);
        assert_eq!(reference.count(), got.count());
        assert_eq!(reference.mean().to_bits(), got.mean().to_bits());
        assert_eq!(
            reference.variance().to_bits(),
            got.variance().to_bits(),
            "threads = {threads}"
        );
    }
}

#[test]
fn trialrng_fold_bit_identical_across_threads() {
    // Same contract as above, on the engine's own fast generator.
    use rand::Rng;
    let run = |threads: usize| -> RunningStats {
        fold_trials_with::<TrialRng, _, _>(
            &EngineConfig::seeded(42).with_threads(threads),
            500,
            |_, rng| rng.gen::<f64>(),
        )
        .unwrap()
    };
    let reference = run(1);
    for threads in [2usize, 4, 7] {
        let got = run(threads);
        assert_eq!(reference.count(), got.count());
        assert_eq!(reference.mean().to_bits(), got.mean().to_bits());
        assert_eq!(
            reference.variance().to_bits(),
            got.variance().to_bits(),
            "threads = {threads}"
        );
    }
}
