//! The full non-synchronized transmission chain across crates:
//! bytes → watermark frame → deletion-insertion channel → drift
//! lattice → outer Viterbi → bytes.

use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_channel::Alphabet;
use nsc_coding::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits};
use nsc_coding::conv::ConvCode;
use nsc_coding::marker::MarkerCode;
use nsc_coding::watermark::WatermarkCode;
use nsc_integration::{bits_to_symbols, symbols_to_bits};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
    let ch =
        DeletionInsertionChannel::new(Alphabet::binary(), DiParams::new(p_d, p_i, p_s).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    symbols_to_bits(&ch.transmit(&bits_to_symbols(bits), &mut rng).received)
}

/// A byte payload crosses the full chain intact at moderate noise
/// with the strong outer code.
#[test]
fn bytes_cross_the_chain_intact() {
    let payload = b"the scheduler is the adversary".to_vec();
    let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0xABCD).unwrap();
    let data = bytes_to_bits(&payload);
    let sent = code.encode(&data).unwrap();
    let recv = through_channel(&sent, 0.05, 0.03, 0.005, 1);
    let decoded = code.decode(&recv, data.len(), 0.05, 0.03, 0.005).unwrap();
    assert_eq!(bits_to_bytes(&decoded), payload);
}

/// The decoder tolerates a mismatch between the assumed and the true
/// channel parameters (robustness, since real `P_d` is estimated).
#[test]
fn decoder_is_robust_to_parameter_mismatch() {
    let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0x1234).unwrap();
    let data = nsc_coding::bits::random_bits(400, &mut StdRng::seed_from_u64(2));
    let sent = code.encode(&data).unwrap();
    let true_p_d = 0.06;
    let recv = through_channel(&sent, true_p_d, 0.0, 0.0, 3);
    // Decode with a 50% over-estimate of p_d.
    let decoded = code.decode(&recv, data.len(), 0.09, 0.01, 0.01).unwrap();
    let ber = bit_error_rate(&decoded, &data);
    assert!(ber < 0.02, "ber = {ber}");
}

/// Watermark frames decoded across several independent channel
/// realizations: the frame error rate at light noise is low.
#[test]
fn frame_error_rate_at_light_noise() {
    let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0x77).unwrap();
    let mut failures = 0;
    let trials = 8;
    for t in 0..trials {
        let data = nsc_coding::bits::random_bits(200, &mut StdRng::seed_from_u64(10 + t));
        let sent = code.encode(&data).unwrap();
        let recv = through_channel(&sent, 0.04, 0.02, 0.0, 100 + t);
        let decoded = code.decode(&recv, data.len(), 0.04, 0.02, 0.0).unwrap();
        if decoded != data {
            failures += 1;
        }
    }
    assert!(failures <= 1, "{failures}/{trials} frames failed");
}

/// Marker and watermark codes face the same channel realization; the
/// watermark code's decoded quality is at least as good.
#[test]
fn watermark_dominates_marker_on_shared_channel() {
    let data = nsc_coding::bits::random_bits(320, &mut StdRng::seed_from_u64(4));
    let p_d = 0.07;

    let wm = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0x99).unwrap();
    let wm_sent = wm.encode(&data).unwrap();
    let wm_recv = through_channel(&wm_sent, p_d, 0.0, 0.0, 5);
    let wm_ber = bit_error_rate(
        &wm.decode(&wm_recv, data.len(), p_d, 0.0, 0.0).unwrap(),
        &data,
    );

    let mk = MarkerCode::default_params();
    let mk_sent = mk.encode(&data).unwrap();
    let mk_recv = through_channel(&mk_sent, p_d, 0.0, 0.0, 5);
    let mk_ber = bit_error_rate(&mk.decode(&mk_recv, data.len()).unwrap(), &data);

    assert!(wm_ber <= mk_ber, "wm {wm_ber} vs mk {mk_ber}");
}

/// The watermark chain fails loudly, not silently, when the received
/// stream cannot have come from the frame (e.g. absurd length).
#[test]
fn impossible_stream_is_rejected() {
    let code = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 0x10).unwrap();
    let junk = vec![true; 10_000];
    assert!(code.decode(&junk, 16, 0.0, 0.0, 0.0).is_err());
}
