//! Support crate for the cross-crate integration tests.
//!
//! The actual tests live in the sibling `*.rs` files registered as
//! `[[test]]` targets; this library only hosts shared fixtures.

use nsc_channel::alphabet::{Alphabet, Symbol};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws a reproducible random message over the given alphabet.
pub fn random_message(bits: u32, len: usize, seed: u64) -> Vec<Symbol> {
    let alphabet = Alphabet::new(bits).expect("test widths are valid");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| alphabet.random(&mut rng)).collect()
}

/// Converts a symbol slice over the binary alphabet into bits.
pub fn symbols_to_bits(symbols: &[Symbol]) -> Vec<bool> {
    symbols.iter().map(|s| s.index() == 1).collect()
}

/// Converts bits into binary-alphabet symbols.
pub fn bits_to_symbols(bits: &[bool]) -> Vec<Symbol> {
    bits.iter().map(|&b| Symbol::from_index(b as u32)).collect()
}
