//! End-to-end estimation pipeline: scheduler trace → measured
//! parameters → corrected capacity → severity, spanning `nsc-sched`,
//! `nsc-core`, `nsc-channel`, and `nsc-info`.

use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_channel::Alphabet;
use nsc_core::degradation::{Severity, SeverityPolicy};
use nsc_core::estimator::{assess_from_counts, assess_from_event_log};
use nsc_core::sim::unsync::run_unsynchronized;
use nsc_core::sim::TraceSchedule;
use nsc_info::BitsPerTick;
use nsc_integration::random_message;
use nsc_sched::covert::{measure_covert_channel, ops_from_trace};
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::system::{Uniprocessor, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full §4.3 recipe against a lottery-scheduled machine: the
/// corrected capacity is roughly half the traditional estimate
/// because a fair lottery deletes about half the writes.
#[test]
fn lottery_machine_full_audit() {
    let spec = WorkloadSpec::covert_pair();
    let mut sys = Uniprocessor::new(spec, PolicyKind::Lottery.build()).unwrap();
    let trace = sys.run(80_000, &mut StdRng::seed_from_u64(1));
    let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(2)).unwrap();
    assert!((m.p_d - 0.5).abs() < 0.02, "p_d = {}", m.p_d);

    let traditional = BitsPerTick(10.0);
    let a = assess_from_counts(
        traditional,
        (m.p_d * m.writes as f64) as u64,
        m.writes as u64,
        &SeverityPolicy::default(),
    )
    .unwrap();
    assert!((a.report.corrected.value() - 5.0).abs() < 0.3);
    assert_eq!(a.severity, Severity::Concerning);
}

/// The same unsynchronized run measured two ways — through the
/// scheduler crate's helper and by hand through the core runner —
/// must agree exactly (same trace, same message-generation seed).
#[test]
fn measurement_paths_agree() {
    let spec = WorkloadSpec::covert_pair().with_background(1, 1.0);
    let mut sys = Uniprocessor::new(spec, PolicyKind::UniformRandom.build()).unwrap();
    let trace = sys.run(30_000, &mut StdRng::seed_from_u64(3));

    let via_sched = measure_covert_channel(&trace, 2, &mut StdRng::seed_from_u64(4)).unwrap();

    let ops = ops_from_trace(&trace);
    let sender_ops = ops
        .iter()
        .filter(|p| **p == nsc_core::sim::Party::Sender)
        .count();
    let alphabet = Alphabet::new(2).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let message: Vec<_> = (0..sender_ops).map(|_| alphabet.random(&mut rng)).collect();
    let mut schedule = TraceSchedule::new(ops);
    let by_hand = run_unsynchronized(&message, &mut schedule, usize::MAX).unwrap();

    assert_eq!(via_sched.p_d, by_hand.p_d());
    assert_eq!(via_sched.p_i, by_hand.p_i());
    assert_eq!(via_sched.writes, by_hand.writes);
}

/// Event-log-driven assessment over the abstract channel agrees with
/// the configured deletion probability.
#[test]
fn abstract_channel_audit_matches_configuration() {
    let p_d = 0.35;
    let channel = DeletionInsertionChannel::new(
        Alphabet::new(3).unwrap(),
        DiParams::deletion_only(p_d).unwrap(),
    );
    let msg = random_message(3, 60_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let out = channel.transmit(&msg, &mut rng);
    let a = assess_from_event_log(BitsPerTick(3.0), 3, &out.events, &SeverityPolicy::default())
        .unwrap();
    assert!(a.report.p_d.contains(p_d), "{:?}", a.report.p_d);
    assert!((a.report.corrected.value() - 3.0 * (1.0 - p_d)).abs() < 0.05);
}

/// Starvation end-to-end: a high-priority sender suffocates the
/// receiver, the measured channel is dead, and the audit reports a
/// negligible corrected capacity despite a large traditional
/// estimate.
#[test]
fn starved_channel_is_negligible() {
    let spec = WorkloadSpec::covert_pair().map_sender(|p| p.with_priority(9));
    let mut sys = Uniprocessor::new(spec, PolicyKind::FixedPriority.build()).unwrap();
    let trace = sys.run(20_000, &mut StdRng::seed_from_u64(7));
    let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(8)).unwrap();
    assert!(m.p_d > 0.999);
    let a = assess_from_counts(
        BitsPerTick(1000.0),
        (m.p_d * m.writes as f64).round() as u64,
        m.writes as u64,
        &SeverityPolicy::default(),
    )
    .unwrap();
    assert_eq!(a.severity, Severity::Negligible);
}
