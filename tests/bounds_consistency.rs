//! Property-based consistency of the paper's bounds against the
//! numerical machinery, across crates.

use nsc_channel::dmc::closed_form;
use nsc_core::bounds::{
    alpha, capacity_bounds, converted_channel_capacity, converted_channel_matrix,
    erasure_upper_bound, theorem5_lower_bound,
};
use nsc_info::blahut::{blahut_arimoto, BlahutOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5's lower bound never exceeds Theorem 4's upper bound
    /// anywhere in the valid parameter simplex.
    #[test]
    fn lower_bound_below_upper_bound(
        bits in 1u32..=16,
        p_d in 0.0f64..1.0,
        scale in 0.0f64..1.0,
    ) {
        let p_i = (1.0 - p_d) * scale * 0.999;
        let b = capacity_bounds(bits, p_d, p_i).unwrap();
        prop_assert!(b.lower.value() <= b.upper.value() + 1e-9);
        prop_assert!(b.lower.value() >= 0.0);
        prop_assert!(b.upper.value() <= bits as f64);
    }

    /// The closed-form converted-channel capacity equals the M-ary
    /// symmetric closed form at error alpha*p_i, and both match
    /// Blahut–Arimoto on the explicit Figure 5 matrix.
    #[test]
    fn converted_capacity_three_ways(
        bits in 1u32..=5,
        p_i in 0.0f64..0.95,
    ) {
        let closed = converted_channel_capacity(bits, p_i).unwrap().value();
        let mary = closed_form::mary_symmetric(bits, alpha(bits) * p_i);
        prop_assert!((closed - mary).abs() < 1e-12);
        let w = converted_channel_matrix(bits, p_i).unwrap();
        let ba = blahut_arimoto(&w, &BlahutOptions::default()).unwrap().capacity;
        prop_assert!((closed - ba).abs() < 1e-6, "closed {closed} vs BA {ba}");
    }

    /// Bounds are monotone: more deletions never help.
    #[test]
    fn bounds_monotone_in_p_d(
        bits in 1u32..=8,
        p_lo in 0.0f64..0.5,
        delta in 0.0f64..0.4,
    ) {
        let p_hi = (p_lo + delta).min(0.89);
        let p_i = 0.1;
        let lo = capacity_bounds(bits, p_lo, p_i).unwrap();
        let hi = capacity_bounds(bits, p_hi, p_i).unwrap();
        prop_assert!(hi.upper.value() <= lo.upper.value() + 1e-12);
        prop_assert!(hi.lower.value() <= lo.lower.value() + 1e-12);
    }

    /// More insertions never help either (upper bound unaffected,
    /// lower bound decreases).
    #[test]
    fn lower_bound_monotone_in_p_i(
        bits in 1u32..=8,
        p_d in 0.0f64..0.5,
        base in 0.0f64..0.2,
        delta in 0.0f64..0.2,
    ) {
        let lo = theorem5_lower_bound(bits, p_d, base).unwrap();
        let hi = theorem5_lower_bound(bits, p_d, (base + delta).min(1.0 - p_d).min(0.99)).unwrap();
        prop_assert!(hi.value() <= lo.value() + 1e-9);
    }

    /// Equation (1) in `nsc-core` and the erasure channel in
    /// `nsc-channel` agree on every input.
    #[test]
    fn equation_1_consistent_across_crates(
        bits in 1u32..=16,
        p_d in 0.0f64..=1.0,
    ) {
        let core_val = erasure_upper_bound(bits, p_d).unwrap().value();
        let chan_val = nsc_channel::erasure::ErasureChannel::new(
            nsc_channel::Alphabet::new(bits).unwrap(), p_d).unwrap().capacity();
        prop_assert!((core_val - chan_val).abs() < 1e-12);
    }

    /// Convergence ratio is within (0, 1] and increases with N.
    #[test]
    fn convergence_ratio_behaviour(p in 0.001f64..0.45) {
        let mut last = 0.0;
        for bits in [1u32, 2, 4, 8, 16] {
            let r = nsc_core::bounds::convergence_ratio(bits, p).unwrap();
            prop_assert!(r > 0.0 && r <= 1.0 + 1e-12);
            prop_assert!(r >= last - 1e-12);
            last = r;
        }
    }
}
