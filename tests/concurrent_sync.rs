//! The counter protocol across real OS threads: the paper's Appendix
//! A implemented with `parking_lot` shared state and a `crossbeam`
//! feedback channel. The OS thread scheduler supplies the
//! non-synchrony.

use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Runs the threaded counter protocol for `message` and returns the
/// receiver's aligned stream.
fn run_threaded_counter(message: Vec<u8>) -> Vec<u8> {
    let mailbox = Arc::new(Mutex::new(0u8));
    let receiver_count = Arc::new(AtomicUsize::new(0));
    let (done_tx, done_rx) = channel::bounded::<Vec<u8>>(1);
    let total = message.len();

    let receiver = {
        let mailbox = Arc::clone(&mailbox);
        let receiver_count = Arc::clone(&receiver_count);
        thread::spawn(move || {
            let mut received = Vec::with_capacity(total);
            while received.len() < total {
                received.push(*mailbox.lock());
                // Perfect feedback: publish the count.
                receiver_count.store(received.len(), Ordering::SeqCst);
                thread::yield_now();
            }
            let _ = done_tx.send(received);
        })
    };

    let sender = {
        let mailbox = Arc::clone(&mailbox);
        let receiver_count = Arc::clone(&receiver_count);
        thread::spawn(move || {
            let mut s = 0usize;
            while s < message.len() {
                let r = receiver_count.load(Ordering::SeqCst);
                match r.cmp(&s) {
                    std::cmp::Ordering::Less => thread::yield_now(),
                    std::cmp::Ordering::Equal => {
                        *mailbox.lock() = message[s];
                        s += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        if r < message.len() {
                            *mailbox.lock() = message[r];
                        }
                        s = r + 1;
                    }
                }
            }
        })
    };

    sender.join().expect("sender panicked");
    let received = done_rx.recv().expect("receiver produced output");
    receiver.join().expect("receiver panicked");
    received
}

/// The threaded counter protocol terminates and stays aligned: the
/// output has exactly the message length, and positions are either
/// correct or stale copies of *earlier message bytes* (never
/// misaligned garbage).
#[test]
fn threaded_counter_protocol_aligns() {
    let message: Vec<u8> = (0..2000u32).map(|i| (i * 7 + 13) as u8).collect();
    let received = run_threaded_counter(message.clone());
    assert_eq!(received.len(), message.len());
    // Appendix A bounds the error of the counter protocol by the
    // number of stale fills; it promises *alignment*, not a correct
    // fraction. No fraction is scheduler-guaranteed: a receiver that
    // drains every position before the sender's first write reads all
    // stale-initial values, and the sender (seeing count = len)
    // legitimately skips to the end. The earlier `correct * 2 >= len`
    // assertion encoded that wrong expectation and failed under
    // unlucky schedules — the invariants below are what the theorem
    // actually guarantees.
    for (k, &v) in received.iter().enumerate() {
        let is_initial = v == 0;
        let is_current = v == message[k];
        let is_earlier = message[..k].contains(&v);
        assert!(
            is_initial || is_current || is_earlier,
            "position {k} holds a value never sent"
        );
    }
}

/// Repeated runs always terminate with full-length output
/// (no deadlock between waiting sender and reading receiver).
#[test]
fn threaded_counter_protocol_never_deadlocks() {
    for len in [1usize, 2, 64, 500] {
        let message: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
        let received = run_threaded_counter(message);
        assert_eq!(received.len(), len);
    }
}
