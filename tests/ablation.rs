//! Cross-crate ablation pipelines: bursty channels measured and
//! fitted (`nsc-channel`), decoded (`nsc-coding`), and corrected
//! (`nsc-core`).

use nsc_channel::burst::GilbertElliottChannel;
use nsc_channel::di::DiParams;
use nsc_channel::stats::fit_deletion_bursts;
use nsc_channel::Alphabet;
use nsc_core::degradation::SeverityPolicy;
use nsc_core::estimator::assess_from_event_log;
use nsc_info::BitsPerTick;
use nsc_integration::random_message;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bursty(mean_burst: f64, avg_p_d: f64) -> GilbertElliottChannel {
    let (good, bad) = (0.02, 0.7);
    let w_bad = (avg_p_d - good) / (bad - good);
    let p_bg = (1.0 / mean_burst).min(1.0);
    let p_gb = (w_bad / (1.0 - w_bad) * p_bg).min(1.0);
    GilbertElliottChannel::new(
        Alphabet::binary(),
        DiParams::deletion_only(good).unwrap(),
        DiParams::deletion_only(bad).unwrap(),
        p_gb,
        p_bg,
    )
    .unwrap()
}

/// The §4.3 correction is burst-robust end to end: the corrected
/// capacity computed from a bursty log equals the one computed from a
/// matched memoryless log, because only the average `P_d` enters.
#[test]
fn correction_is_burst_invariant() {
    let avg = 0.25;
    let msg = random_message(1, 150_000, 1);
    let policy = SeverityPolicy::default();
    let traditional = BitsPerTick(10.0);

    let bursty_ch = bursty(20.0, avg);
    let out_bursty = bursty_ch.transmit(&msg, &mut StdRng::seed_from_u64(2));
    let a_bursty = assess_from_event_log(traditional, 1, &out_bursty.events, &policy).unwrap();

    let flat = nsc_channel::di::DeletionInsertionChannel::new(
        Alphabet::binary(),
        bursty_ch.average_params().unwrap(),
    );
    let out_flat = flat.transmit(&msg, &mut StdRng::seed_from_u64(3));
    let a_flat = assess_from_event_log(traditional, 1, &out_flat.events, &policy).unwrap();

    let b = a_bursty.report.corrected.value();
    let f = a_flat.report.corrected.value();
    assert!((b - f).abs() / f < 0.05, "bursty {b} vs flat {f}");
}

/// The burst fit distinguishes the two regimes that the plain `P_d`
/// estimate cannot: same average, very different burstiness index.
#[test]
fn burst_fit_separates_regimes_with_equal_averages() {
    let avg = 0.25;
    let msg = random_message(1, 150_000, 4);

    let fit_of = |mean_burst: f64, seed: u64| {
        let ch = bursty(mean_burst, avg);
        let out = ch.transmit(&msg, &mut StdRng::seed_from_u64(seed));
        fit_deletion_bursts(&out.events).unwrap()
    };
    let short = fit_of(1.5, 5);
    let long = fit_of(30.0, 6);
    // Averages agree…
    assert!((short.stationary_rate - long.stationary_rate).abs() < 0.03);
    // …but burstiness separates by a wide margin.
    assert!(
        long.burstiness > short.burstiness * 1.5,
        "short {short:?} vs long {long:?}"
    );
}

/// Watermark decoding degrades with burstiness at a fixed average —
/// the cross-crate version of experiment E11's coding leg.
#[test]
fn watermark_ber_grows_with_burstiness() {
    use nsc_coding::bits::{bit_error_rate, random_bits};
    use nsc_coding::conv::ConvCode;
    use nsc_coding::watermark::WatermarkCode;
    use nsc_integration::{bits_to_symbols, symbols_to_bits};

    let avg = 0.05;
    let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0xAB).unwrap();
    let mut ber_of = |mean_burst: f64| {
        let ch = GilbertElliottChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.01).unwrap(),
            DiParams::deletion_only(0.8).unwrap(),
            {
                let w = (avg - 0.01) / 0.79;
                (w / (1.0 - w)) * (1.0 / mean_burst)
            },
            1.0 / mean_burst,
        )
        .unwrap();
        let mut total = 0.0;
        let trials = 4;
        for t in 0..trials {
            let data = random_bits(250, &mut StdRng::seed_from_u64(7 + t));
            let sent = code.encode(&data).unwrap();
            let out = ch.transmit(&bits_to_symbols(&sent), &mut StdRng::seed_from_u64(100 + t));
            let recv = symbols_to_bits(&out.received);
            total += match code.decode(&recv, data.len(), avg, 0.0, 0.0) {
                Ok(decoded) => bit_error_rate(&decoded, &data),
                Err(_) => 0.5,
            };
        }
        total / trials as f64
    };
    let near_memoryless = ber_of(1.0);
    let very_bursty = ber_of(60.0);
    assert!(
        very_bursty > near_memoryless,
        "{near_memoryless} !< {very_bursty}"
    );
    assert!(near_memoryless < 0.01, "{near_memoryless}");
}
