//! The determinism rules and the per-file checking engine.
//!
//! Every rule is lexical: it works on the token stream produced by
//! [`crate::lexer`], never on resolved types. That makes the linter
//! fast and dependency-free at the cost of precision, which is why
//! every rule supports an explicit, reasoned waiver:
//!
//! ```text
//! // nsc-lint: allow(wall-clock, reason = "observational timing only")
//! let started = Instant::now();
//! ```
//!
//! A waiver covers its own line and the line directly below it, and
//! must name a known rule and a non-empty reason; anything else is
//! itself a violation (`bad-waiver`).
//!
//! Test code — files under a `tests/` or `benches/` directory, and
//! `#[cfg(test)]` items — is exempt from the determinism rules
//! (`wall-clock`, `ambient-rng`, `unordered-collections`,
//! `mpsc-merge`) and from the hot-region rules (`hot-alloc`,
//! `hot-panic`) because test assertions do not feed results and do
//! not run on the trial hot path. `undocumented-unsafe` and
//! `bad-waiver` apply everywhere.
//!
//! ## Hot regions
//!
//! The allocation-audit rules only fire inside *hot regions*: the
//! brace-balanced bodies of functions that are part of the
//! steady-state per-trial / per-decode path. A function is hot when
//!
//! * a `// nsc-lint: hot` comment precedes it (the marker attaches
//!   to the next `fn` or `impl` item; on an `impl`, every method in
//!   the block is hot), or
//! * the file is in a default-hot path (`crates/core/src/sim/`,
//!   `crates/core/src/engine/`, `crates/coding/src/lattice.rs`,
//!   `crates/trace/src/`) and the function name ends in `_into` or
//!   `_with_scratch` — the workspace's scratch-reuse entry-point
//!   convention.
//!
//! Inside a hot region, `hot-alloc` (deny) flags allocating
//! expressions and `hot-panic` (note) flags panicking ones. Warm-up
//! or cold-error-path allocations carry the standard waiver — and a
//! `hot-alloc`/`hot-panic` waiver that suppresses nothing is itself
//! a violation (`unused-waiver`), so stale bookkeeping cannot
//! accumulate: every waiver must still name a real, present
//! allocation documented in DESIGN §14.

use crate::lexer::{lex, Tok, TokKind};

/// A lint rule's stable name and one-line rationale.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case rule name, used in waivers and reports.
    pub name: &'static str,
    /// Why violating the rule threatens the determinism contract.
    pub summary: &'static str,
    /// Note-level rules inform (reported, never counted toward the
    /// violation total or the exit code). Deny-level rules gate CI.
    pub note: bool,
}

/// Every rule the linter knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        summary: "Instant::now/SystemTime::now feed ambient time into code; results must \
                  depend only on the seed. Waive only for observational timing \
                  (BatchTiming, ExecutionReport, bench fingerprints).",
        note: false,
    },
    RuleInfo {
        name: "ambient-rng",
        summary: "thread_rng/rand::random/from_entropy/OsRng draw entropy outside the \
                  seeded TrialRng/StdRng derivation chain.",
        note: false,
    },
    RuleInfo {
        name: "unordered-collections",
        summary: "HashMap/HashSet iteration order is randomized per process; use \
                  BTreeMap/BTreeSet (or waive with proof the map is never iterated).",
        note: false,
    },
    RuleInfo {
        name: "mpsc-merge",
        summary: "mpsc delivers in arrival order, which depends on scheduling; merge \
                  paths must use the slot-vector pool's index-ordered reassembly.",
        note: false,
    },
    RuleInfo {
        name: "undocumented-unsafe",
        summary: "every `unsafe` block/impl/fn needs an adjacent `// SAFETY:` comment \
                  stating the invariant it relies on.",
        note: false,
    },
    RuleInfo {
        name: "kernel-divergence",
        summary: "note: cfg(target_feature)-gated code in a result path can make the \
                  same seed produce different bytes on different machines; keep ISA \
                  dispatch out of result paths or pin equivalence the way the \
                  kernel-equivalence CI job pins scalar vs bitsliced.",
        note: true,
    },
    RuleInfo {
        name: "hot-alloc",
        summary: "allocating expression (Vec::new/vec!/to_vec/clone/collect/Box::new/\
                  String::from/format!/with_capacity) inside a declared hot region; the \
                  steady-state trial and decode paths must reuse scratch buffers. Waive \
                  only warm-up or cold error-path allocations, each documented in \
                  DESIGN \u{a7}14 and backed by the alloc_census runtime oracle.",
        note: false,
    },
    RuleInfo {
        name: "hot-panic",
        summary: "note: unwrap/expect/panic! inside a hot region; prefer typed errors \
                  on the per-trial path so a poisoned input cannot abort a campaign \
                  mid-merge.",
        note: true,
    },
    RuleInfo {
        name: "unused-waiver",
        summary: "a hot-alloc/hot-panic waiver that suppresses nothing; the allocation \
                  it documented is gone, so the waiver is stale bookkeeping and must be \
                  removed (keeps DESIGN \u{a7}14's warm-up table honest).",
        note: false,
    },
    RuleInfo {
        name: "bad-waiver",
        summary: "a `nsc-lint:` comment that does not parse, names an unknown rule, \
                  gives an empty reason, or is a `hot` marker with no `fn`/`impl` item \
                  below it to attach to.",
        note: false,
    },
];

/// True when `name` is a known rule.
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (a [`RULES`] name).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable diagnostic.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Violation {
    /// True when the fired rule is note-level (reported but not
    /// counted toward the violation total or the exit code).
    #[must_use]
    pub fn is_note(&self) -> bool {
        RULES.iter().any(|r| r.name == self.rule && r.note)
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The waiver comment's line; covers this line and the next.
    pub line: u32,
    /// The mandatory justification.
    pub reason: String,
    /// Whether any violation was actually suppressed by it.
    pub used: bool,
}

/// Everything the engine found in one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations, sorted by (line, col).
    pub violations: Vec<Violation>,
    /// All syntactically valid waivers, used or not.
    pub waivers: Vec<Waiver>,
}

/// Rules suspended inside test code.
const TEST_EXEMPT: &[&str] = &[
    "wall-clock",
    "ambient-rng",
    "unordered-collections",
    "mpsc-merge",
    "kernel-divergence",
    "hot-alloc",
    "hot-panic",
];

/// How a file should be checked: whole-file test exemption and
/// whether `*_into`/`*_with_scratch` functions are hot by default
/// (both derived from the file's path by the caller).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// The whole file is test code (under `tests/` or `benches/`).
    pub test_file: bool,
    /// The file sits on a declared hot path, so scratch-reuse entry
    /// points are hot without an explicit `// nsc-lint: hot` marker.
    pub default_hot: bool,
}

/// Checks one file's source. `test_file` marks the whole file as test
/// code (integration tests, benches); `*_into` entry points are not
/// hot by default (use [`check_file_ctx`] for path-aware checking).
#[cfg(test)]
pub fn check_file(src: &str, test_file: bool) -> FileReport {
    check_file_ctx(
        src,
        FileContext {
            test_file,
            default_hot: false,
        },
    )
}

/// Checks one file's source under an explicit [`FileContext`].
pub fn check_file_ctx(src: &str, ctx: FileContext) -> FileReport {
    let test_file = ctx.test_file;
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        let text = lines.get(line as usize - 1).copied().unwrap_or("").trim();
        let mut s: String = text.chars().take(120).collect();
        if s.len() < text.len() {
            s.push('…');
        }
        s
    };

    let mut report = FileReport::default();

    // ---- Waivers and hot markers (from comment tokens). ---------
    // Doc comments are excluded: rustdoc prose *describing* the
    // waiver syntax must not be parsed as a waiver.
    let mut hot_markers: Vec<(u32, u32)> = Vec::new();
    for t in toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Comment { doc: false }))
    {
        let Some(idx) = t.text.find("nsc-lint:") else {
            continue;
        };
        let tail = &t.text[idx + "nsc-lint:".len()..];
        // A `hot` tail marks the next `fn` or `impl` item as a hot
        // region; it is an annotation, not a waiver.
        if tail.trim().trim_end_matches("*/").trim() == "hot" {
            hot_markers.push((t.line, t.col));
            continue;
        }
        match parse_waiver(tail) {
            Ok((rule, reason)) => {
                if !known_rule(&rule) {
                    report.violations.push(Violation {
                        rule: "bad-waiver",
                        line: t.line,
                        col: t.col,
                        message: format!("waiver names unknown rule `{rule}`"),
                        snippet: snippet(t.line),
                    });
                } else if reason.trim().is_empty() {
                    report.violations.push(Violation {
                        rule: "bad-waiver",
                        line: t.line,
                        col: t.col,
                        message: format!("waiver for `{rule}` has an empty reason"),
                        snippet: snippet(t.line),
                    });
                } else {
                    report.waivers.push(Waiver {
                        rule,
                        line: t.line,
                        reason,
                        used: false,
                    });
                }
            }
            Err(why) => report.violations.push(Violation {
                rule: "bad-waiver",
                line: t.line,
                col: t.col,
                message: format!("unparseable nsc-lint comment: {why}"),
                snippet: snippet(t.line),
            }),
        }
    }

    // ---- #[cfg(test)] regions (line ranges). --------------------
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let test_regions = cfg_test_regions(&code);
    let in_test = |line: u32| -> bool {
        test_file
            || test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    };

    // ---- Hot regions (line ranges of hot function bodies). ------
    let (hot_spans, orphan_markers) = hot_regions(&code, &hot_markers, ctx.default_hot);
    // A marker that binds to nothing would silently leave its
    // intended region cold — fail it like a malformed waiver.
    for (line, col) in orphan_markers {
        report.violations.push(Violation {
            rule: "bad-waiver",
            line,
            col,
            message: "`hot` marker has no `fn` or `impl` item below it to attach to, \
                      so the region it meant to mark stays unchecked"
                .to_owned(),
            snippet: snippet(line),
        });
    }
    let in_hot =
        |line: u32| -> bool { hot_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi) };

    // ---- Per-line comment text, for the SAFETY rule. ------------
    let mut comment_on_line: Vec<(u32, &str)> = toks
        .iter()
        .filter(|t| t.is_comment())
        .map(|t| (t.line, t.text.as_str()))
        .collect();
    comment_on_line.sort_by_key(|&(l, _)| l);
    let comment_text = |line: u32| -> Option<&str> {
        comment_on_line
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, t)| t)
    };
    // Block comments span lines; record every line they cover.
    let mut comment_lines: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut safety_lines: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let span = t.text.matches('\n').count() as u32;
        for l in t.line..=t.line + span {
            comment_lines.insert(l);
            if t.text.contains("SAFETY:") {
                safety_lines.insert(l);
            }
        }
    }

    // ---- Candidate violations from the code-token stream. -------
    let mut found: Vec<Violation> = Vec::new();
    let ident = |i: usize, name: &str| -> bool { code.get(i).is_some_and(|t| t.is_ident(name)) };
    let path_sep = |i: usize| -> bool {
        code.get(i).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" if path_sep(i + 1) && ident(i + 3, "now") => {
                found.push(Violation {
                    rule: "wall-clock",
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{}::now() reads ambient time; results must be a function of the \
                         seed alone",
                        t.text
                    ),
                    snippet: snippet(t.line),
                });
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                found.push(Violation {
                    rule: "ambient-rng",
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` draws OS entropy; derive randomness from trial_seed() instead",
                        t.text
                    ),
                    snippet: snippet(t.line),
                });
            }
            "rand" if path_sep(i + 1) && ident(i + 3, "random") => {
                found.push(Violation {
                    rule: "ambient-rng",
                    line: t.line,
                    col: t.col,
                    message: "`rand::random` uses the ambient thread RNG".to_owned(),
                    snippet: snippet(t.line),
                });
            }
            "HashMap" | "HashSet" => {
                found.push(Violation {
                    rule: "unordered-collections",
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` has randomized iteration order; use the BTree equivalent or \
                         waive with proof it is never iterated",
                        t.text
                    ),
                    snippet: snippet(t.line),
                });
            }
            "mpsc" => {
                found.push(Violation {
                    rule: "mpsc-merge",
                    line: t.line,
                    col: t.col,
                    message: "mpsc delivery order depends on scheduling; use the slot-vector \
                              pool's index-ordered reassembly"
                        .to_owned(),
                    snippet: snippet(t.line),
                });
            }
            "unsafe" => {
                // Accepted if a `SAFETY:` comment sits on the same
                // line or in the contiguous comment block directly
                // above.
                let mut ok = comment_text(t.line).is_some_and(|c| c.contains("SAFETY:"));
                let mut l = t.line - 1;
                while !ok && l >= 1 && comment_lines.contains(&l) {
                    if safety_lines.contains(&l) {
                        ok = true;
                    }
                    l -= 1;
                }
                if !ok {
                    found.push(Violation {
                        rule: "undocumented-unsafe",
                        line: t.line,
                        col: t.col,
                        message: "`unsafe` without an adjacent `// SAFETY:` comment stating \
                                  the invariant it relies on"
                            .to_owned(),
                        snippet: snippet(t.line),
                    });
                }
            }
            _ => {}
        }
    }

    // ---- kernel-divergence (note): ISA-gated code. --------------
    // Fires on `#[cfg(target_feature = …)]` / `#[cfg_attr(…)]`
    // attributes and `cfg!(target_feature = …)` expressions: both
    // compile the same source to machine-dependent *behavior*, which
    // is how a seed stops being the whole story.
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        let (open, start) = if t.is_punct('#') && code.get(i + 1).is_some_and(|c| c.is_punct('[')) {
            ('[', i + 2)
        } else if t.kind == TokKind::Ident
            && t.text == "cfg"
            && code.get(i + 1).is_some_and(|c| c.is_punct('!'))
        {
            ('(', i + 3)
        } else {
            i += 1;
            continue;
        };
        let close = match open {
            '[' => ']',
            _ => ')',
        };
        let mut j = start;
        let mut depth = 1i32;
        let mut mentions = false;
        while j < code.len() && depth > 0 {
            let c = code[j];
            if c.is_punct(open) {
                depth += 1;
            } else if c.is_punct(close) {
                depth -= 1;
            } else if c.kind == TokKind::Ident && c.text == "target_feature" {
                mentions = true;
            }
            j += 1;
        }
        if mentions {
            found.push(Violation {
                rule: "kernel-divergence",
                line: t.line,
                col: t.col,
                message: "target_feature-gated code makes behavior ISA-dependent; keep it \
                          out of result paths or pin cross-ISA equivalence in CI"
                    .to_owned(),
                snippet: snippet(t.line),
            });
        }
        i = j.max(i + 1);
    }

    // ---- Hot-region rules: hot-alloc (deny), hot-panic (note). --
    let prev_dot = |i: usize| -> bool { i > 0 && code[i - 1].is_punct('.') };
    let next_bang = |i: usize| -> bool { code.get(i + 1).is_some_and(|t| t.is_punct('!')) };
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !in_hot(t.line) {
            continue;
        }
        let alloc: Option<&str> = match t.text.as_str() {
            "Vec" if path_sep(i + 1) && ident(i + 3, "new") => Some("`Vec::new` allocates"),
            "Box" if path_sep(i + 1) && ident(i + 3, "new") => Some("`Box::new` allocates"),
            "String" if path_sep(i + 1) && ident(i + 3, "from") => {
                Some("`String::from` allocates")
            }
            "vec" if next_bang(i) => Some("`vec!` allocates"),
            "format" if next_bang(i) => Some("`format!` allocates"),
            "to_vec" if prev_dot(i) => Some("`.to_vec()` allocates a fresh Vec"),
            "clone" if prev_dot(i) => Some("`.clone()` deep-copies its receiver"),
            "collect" if prev_dot(i) => Some("`.collect()` builds a fresh collection"),
            "with_capacity" => Some("`with_capacity` allocates"),
            _ => None,
        };
        if let Some(what) = alloc {
            found.push(Violation {
                rule: "hot-alloc",
                line: t.line,
                col: t.col,
                message: format!(
                    "{what} inside a hot region; reuse the scratch buffer, or waive a \
                     documented warm-up/cold-path site (DESIGN \u{a7}14)"
                ),
                snippet: snippet(t.line),
            });
            continue;
        }
        let panics = match t.text.as_str() {
            "unwrap" | "expect" => prev_dot(i),
            "panic" => next_bang(i),
            _ => false,
        };
        if panics {
            found.push(Violation {
                rule: "hot-panic",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` can panic inside a hot region; prefer a typed error so a bad \
                     input cannot abort a campaign mid-merge",
                    t.text
                ),
                snippet: snippet(t.line),
            });
        }
    }

    // ---- Apply test exemptions and waivers. ---------------------
    for v in found {
        if TEST_EXEMPT.contains(&v.rule) && in_test(v.line) {
            continue;
        }
        let waived = report
            .waivers
            .iter_mut()
            .find(|w| w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line));
        if let Some(w) = waived {
            w.used = true;
            continue;
        }
        report.violations.push(v);
    }

    // ---- Stale hot-rule waivers are violations. -----------------
    // The §14 double-entry bookkeeping: every hot-alloc/hot-panic
    // waiver documents a real, measured allocation; when the site is
    // gone the waiver must go too, or the audit table lies.
    let stale: Vec<(u32, String)> = report
        .waivers
        .iter()
        .filter(|w| !w.used && (w.rule == "hot-alloc" || w.rule == "hot-panic"))
        .filter(|w| !in_test(w.line))
        .map(|w| (w.line, w.rule.clone()))
        .collect();
    for (line, rule) in stale {
        report.violations.push(Violation {
            rule: "unused-waiver",
            line,
            col: 1,
            message: format!(
                "waiver for `{rule}` suppresses nothing; the documented allocation is \
                 gone, so remove the waiver (and its DESIGN \u{a7}14 table row)"
            ),
            snippet: snippet(line),
        });
    }

    report.violations.sort_by_key(|v| (v.line, v.col));
    report
}

/// Parses the tail of a `nsc-lint:` comment:
/// `allow(<rule>, reason = "<text>")`.
fn parse_waiver(rest: &str) -> Result<(String, String), &'static str> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>, reason = \"…\")`");
    };
    let Some(comma) = rest.find(',') else {
        return Err("missing `, reason = \"…\"`");
    };
    let rule = rest[..comma].trim().to_owned();
    let tail = rest[comma + 1..].trim_start();
    let Some(tail) = tail.strip_prefix("reason") else {
        return Err("missing `reason =`");
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return Err("missing `=` after `reason`");
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('"') else {
        return Err("reason must be a quoted string");
    };
    let Some(close) = tail.rfind('"') else {
        return Err("unterminated reason string");
    };
    Ok((rule, tail[..close].to_owned()))
}

/// Finds `(first_line, last_line)` spans of hot function bodies,
/// plus the `(line, col)` of every marker that attached to nothing
/// (for the caller to report — a silently dropped marker would leave
/// its intended region cold).
///
/// A `// nsc-lint: hot` marker attaches to the next `fn` or `impl`
/// keyword at or below the marker's line; a hot `impl` makes every
/// method in its body hot. With `default_hot`, functions named
/// `*_into` or `*_with_scratch` are hot without a marker (the
/// workspace's scratch-reuse naming convention).
fn hot_regions(
    code: &[&Tok],
    hot_markers: &[(u32, u32)],
    default_hot: bool,
) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
    #[derive(Clone, Copy, PartialEq)]
    enum Item {
        Fn,
        Impl,
    }
    // Every named `fn` and every `impl` keyword, in stream order, so
    // markers can attach to the next item. (`impl` in type position
    // — `-> impl Iterator` — also lands here, but the enclosing
    // `fn` precedes it in the stream and absorbs any marker first.)
    let mut items: Vec<(usize, Item)> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            items.push((i, Item::Fn));
        } else if t.is_ident("impl") {
            items.push((i, Item::Impl));
        }
    }
    let mut marked = vec![false; items.len()];
    let mut orphans: Vec<(u32, u32)> = Vec::new();
    for &(m, c) in hot_markers {
        if let Some(slot) = items.iter().position(|&(i, _)| code[i].line >= m) {
            marked[slot] = true;
        } else {
            orphans.push((m, c));
        }
    }
    // Hot impl bodies, as token-index spans.
    let mut hot_impls: Vec<(usize, usize)> = Vec::new();
    for (slot, &(i, item)) in items.iter().enumerate() {
        if item == Item::Impl && marked[slot] {
            if let Some((open, close)) = brace_body(code, i) {
                hot_impls.push((open, close));
            }
        }
    }
    let mut regions = Vec::new();
    for (slot, &(i, item)) in items.iter().enumerate() {
        if item != Item::Fn {
            continue;
        }
        let name = code[i + 1].text.as_str();
        let hot = marked[slot]
            || hot_impls.iter().any(|&(lo, hi)| lo < i && i < hi)
            || (default_hot && (name.ends_with("_into") || name.ends_with("_with_scratch")));
        if !hot {
            continue;
        }
        if let Some((_, close)) = brace_body(code, i) {
            regions.push((code[i].line, code[close].line));
        }
    }
    (regions, orphans)
}

/// Finds the token indices of an item's body braces `{ … }`,
/// scanning from `start` (the `fn`/`impl` keyword). Returns `None`
/// for bodiless declarations (a `;` at nesting depth 0 comes first).
fn brace_body(code: &[&Tok], start: usize) -> Option<(usize, usize)> {
    let mut j = start + 1;
    let mut nest = 0i32;
    let open = loop {
        let t = code.get(j)?;
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
            TokKind::Punct('{') if nest == 0 => break j,
            TokKind::Punct(';') if nest == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds `(first_line, last_line)` spans of items annotated
/// `#[cfg(test)]` (or any `cfg(...)` mentioning the `test` ident,
/// e.g. `cfg(all(test, feature = "x"))`).
fn cfg_test_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // Match `#[cfg( … test … )]`.
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start_line = code[i].line;
        // Scan the attribute's bracket-balanced contents.
        let mut j = i + 2;
        let mut depth = 1i32;
        // `cfg_attr(test, …)` does NOT make the item test-only (it
        // only toggles attributes), so require `cfg` exactly.
        let is_cfg = code.get(j).is_some_and(|t| t.is_ident("cfg"));
        let mut mentions_test = false;
        while j < code.len() && depth > 0 {
            let t = code[j];
            match t.kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident if t.text == "test" => mentions_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(is_cfg && mentions_test) {
            i = j;
            continue;
        }
        // Skip any further attributes, then consume the item: either
        // up to a `;` (no body) or through its brace-balanced body.
        let mut k = j;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            let mut d = 1i32;
            k += 2;
            while k < code.len() && d > 0 {
                match code[k].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut end_line = attr_start_line;
        let mut d = 0i32;
        let mut entered = false;
        while k < code.len() {
            let t = code[k];
            end_line = t.line;
            match t.kind {
                TokKind::Punct('{') => {
                    d += 1;
                    entered = true;
                }
                TokKind::Punct('}') => {
                    d -= 1;
                    if entered && d == 0 {
                        break;
                    }
                }
                TokKind::Punct(';') if !entered => break,
                _ => {}
            }
            k += 1;
        }
        regions.push((attr_start_line, end_line));
        i = k + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str) -> Vec<&'static str> {
        check_file(src, false)
            .violations
            .iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn wall_clock_fires() {
        assert_eq!(
            rules_fired("fn f() { let t = Instant::now(); }"),
            ["wall-clock"]
        );
        assert_eq!(
            rules_fired("fn f() { let t = std::time::SystemTime::now(); }"),
            ["wall-clock"]
        );
    }

    #[test]
    fn wall_clock_ignores_other_now() {
        assert!(rules_fired("fn f() { let t = clock.now(); }").is_empty());
        assert!(rules_fired("fn f() { let t: Instant = saved; }").is_empty());
    }

    #[test]
    fn ambient_rng_fires() {
        assert_eq!(
            rules_fired("let mut r = rand::thread_rng();"),
            ["ambient-rng"]
        );
        assert_eq!(rules_fired("let x: u8 = rand::random();"), ["ambient-rng"]);
        assert_eq!(
            rules_fired("let r = StdRng::from_entropy();"),
            ["ambient-rng"]
        );
    }

    #[test]
    fn unordered_collections_fires() {
        assert_eq!(
            rules_fired("use std::collections::HashMap;"),
            ["unordered-collections"]
        );
    }

    #[test]
    fn mpsc_fires() {
        assert_eq!(rules_fired("use std::sync::mpsc;"), ["mpsc-merge"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(rules_fired(r#"let s = "thread_rng HashMap mpsc Instant::now";"#).is_empty());
        assert!(rules_fired("// thread_rng HashMap mpsc in prose\nfn f() {}").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(
            rules_fired("fn f() { unsafe { danger() } }"),
            ["undocumented-unsafe"]
        );
        assert!(rules_fired(
            "fn f() {\n    // SAFETY: slot b has one writer.\n    unsafe { danger() }\n}"
        )
        .is_empty());
        assert!(rules_fired(
            "// SAFETY: disjoint indices.\n// (see Slot docs)\nunsafe impl Sync for S {}"
        )
        .is_empty());
        assert!(rules_fired("fn f() { unsafe { danger() } } // SAFETY: same line\n").is_empty());
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let src = "// SAFETY: stale, far away.\nfn g() {}\n\nfn f() { unsafe { danger() } }";
        assert_eq!(rules_fired(src), ["undocumented-unsafe"]);
    }

    #[test]
    fn waiver_suppresses_and_is_marked_used() {
        let src = "// nsc-lint: allow(wall-clock, reason = \"observational timing only\")\n\
                   let t = Instant::now();";
        let rep = check_file(src, false);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.waivers.len(), 1);
        assert!(rep.waivers[0].used);
        assert_eq!(rep.waivers[0].rule, "wall-clock");
    }

    #[test]
    fn trailing_waiver_on_same_line() {
        let src = "let t = Instant::now(); // nsc-lint: allow(wall-clock, reason = \"bench\")";
        assert!(check_file(src, false).violations.is_empty());
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "// nsc-lint: allow(ambient-rng, reason = \"mismatch\")\n\
                   let t = Instant::now();";
        assert_eq!(rules_fired(src), ["wall-clock"]);
    }

    #[test]
    fn waiver_does_not_leak_past_next_line() {
        let src = "// nsc-lint: allow(wall-clock, reason = \"one line only\")\n\
                   fn pad() {}\n\
                   let t = Instant::now();";
        assert_eq!(rules_fired(src), ["wall-clock"]);
    }

    #[test]
    fn bad_waivers_are_violations() {
        assert_eq!(
            rules_fired("// nsc-lint: allow(no-such-rule, reason = \"x\")"),
            ["bad-waiver"]
        );
        assert_eq!(
            rules_fired("// nsc-lint: allow(wall-clock, reason = \"\")"),
            ["bad-waiver"]
        );
        assert_eq!(
            rules_fired("// nsc-lint: allow(wall-clock)"),
            ["bad-waiver"]
        );
        assert_eq!(rules_fired("// nsc-lint: disallow(x)"), ["bad-waiver"]);
    }

    #[test]
    fn doc_comments_never_parse_as_waivers() {
        // Rustdoc prose describing the syntax is not a waiver…
        let src = "/// nsc-lint: allow(<rule>, reason = \"…\")\nfn f() {}";
        let rep = check_file(src, false);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.waivers.is_empty());
        // …and a doc comment cannot suppress a violation either.
        let src = "/// nsc-lint: allow(wall-clock, reason = \"docs\")\nfn f() { Instant::now(); }";
        assert_eq!(rules_fired(src), ["wall-clock"]);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashSet;\n\
                       #[test]\n\
                       fn t() { let mut r = rand::thread_rng(); }\n\
                   }\n";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_mod_is_not_exempt() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashSet;\n\
                   }\n\
                   use std::collections::HashMap;\n";
        assert_eq!(rules_fired(src), ["unordered-collections"]);
    }

    #[test]
    fn cfg_any_test_is_exempt_too() {
        let src = "#[cfg(any(test, loom))]\nmod model { use std::collections::HashSet; }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn unsafe_rule_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { danger() } }\n}";
        assert_eq!(rules_fired(src), ["undocumented-unsafe"]);
    }

    #[test]
    fn test_file_exemption_covers_whole_file() {
        let rep = check_file("let t = Instant::now();", true);
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn kernel_divergence_fires_as_a_note() {
        for src in [
            "#[cfg(target_feature = \"avx2\")]\nfn fast() {}",
            "#[cfg_attr(target_feature = \"avx2\", inline)]\nfn fast() {}",
            "#[target_feature(enable = \"avx2\")]\nunsafe fn fast() {} // SAFETY: caller checks",
            "fn f() -> bool { cfg!(target_feature = \"avx2\") }",
        ] {
            let rep = check_file(src, false);
            let fired: Vec<&str> = rep.violations.iter().map(|v| v.rule).collect();
            assert!(fired.contains(&"kernel-divergence"), "{src}: {fired:?}");
            for v in &rep.violations {
                if v.rule == "kernel-divergence" {
                    assert!(v.is_note(), "{src}");
                }
            }
        }
    }

    #[test]
    fn kernel_divergence_ignores_other_cfgs_and_is_waivable() {
        assert!(rules_fired("#[cfg(feature = \"simd\")]\nfn f() {}").is_empty());
        assert!(rules_fired("#[cfg(target_os = \"linux\")]\nfn f() {}").is_empty());
        // Test code is not a result path.
        let src = "#[cfg(test)]\nmod t {\n    #[cfg(target_feature = \"avx2\")]\n    fn f() {}\n}";
        assert!(rules_fired(src).is_empty());
        // The standard waiver machinery applies.
        let src = "// nsc-lint: allow(kernel-divergence, reason = \"output pinned by CI\")\n\
                   #[cfg(target_feature = \"avx2\")]\nfn f() {}";
        let rep = check_file(src, false);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.waivers[0].used);
    }

    #[test]
    fn deny_rules_are_not_notes() {
        let rep = check_file("fn f() { let t = Instant::now(); }", false);
        assert!(!rep.violations[0].is_note());
    }

    #[test]
    fn violations_sorted_by_position() {
        let src = "use std::sync::mpsc;\nuse std::collections::HashMap;\n";
        let rep = check_file(src, false);
        assert_eq!(rep.violations[0].line, 1);
        assert_eq!(rep.violations[1].line, 2);
    }

    // ---- Hot-region rules. --------------------------------------

    fn rules_fired_hot(src: &str) -> Vec<&'static str> {
        check_file_ctx(
            src,
            FileContext {
                test_file: false,
                default_hot: true,
            },
        )
        .violations
        .iter()
        .map(|v| v.rule)
        .collect()
    }

    #[test]
    fn hot_marker_makes_the_next_fn_hot() {
        let src = "// nsc-lint: hot\nfn decode(x: &[u8]) { let v = x.to_vec(); }";
        assert_eq!(rules_fired(src), ["hot-alloc"]);
    }

    #[test]
    fn unmarked_fns_are_cold() {
        let src = "fn decode(x: &[u8]) { let v = x.to_vec(); let b = Vec::new(); }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn default_hot_covers_scratch_entry_points_only() {
        let hot = "fn decode_into(x: &[u8]) { let v = x.to_vec(); }";
        assert_eq!(rules_fired_hot(hot), ["hot-alloc"]);
        let hot = "fn run_with_scratch(x: &[u8]) { let v = vec![0u8; 4]; }";
        assert_eq!(rules_fired_hot(hot), ["hot-alloc"]);
        let cold = "fn decode(x: &[u8]) { let v = x.to_vec(); }";
        assert!(rules_fired_hot(cold).is_empty());
        // Without the path-derived default, the same names are cold.
        let src = "fn decode_into(x: &[u8]) { let v = x.to_vec(); }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn hot_impl_marks_every_method() {
        let src = "// nsc-lint: hot\n\
                   impl Decoder {\n\
                       fn a(&self) { let v = Vec::new(); }\n\
                       fn b(&self) { let s = String::from(\"x\"); }\n\
                   }\n\
                   fn outside() { let v = Vec::new(); }";
        assert_eq!(rules_fired(src), ["hot-alloc", "hot-alloc"]);
    }

    #[test]
    fn every_alloc_pattern_fires_in_a_hot_fn() {
        for expr in [
            "Vec::new()",
            "vec![0u8; 4]",
            "x.to_vec()",
            "x.clone()",
            "x.iter().map(|v| v).collect::<Vec<_>>()",
            "Box::new(4)",
            "String::from(\"s\")",
            "format!(\"{x:?}\")",
            "Vec::<u8>::with_capacity(8)",
        ] {
            let src = format!("fn f_into(x: &[u8]) {{ let v = {expr}; }}");
            assert_eq!(rules_fired_hot(&src), ["hot-alloc"], "{expr}");
        }
        // `.collect` without a hot region never fires.
        let src = "fn f(x: &[u8]) { let v: Vec<u8> = x.iter().copied().collect(); }";
        assert!(rules_fired_hot(src).is_empty());
    }

    #[test]
    fn hot_panic_is_a_note() {
        let src = "// nsc-lint: hot\nfn f(x: Option<u8>) { let v = x.unwrap(); }";
        let rep = check_file(src, false);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "hot-panic");
        assert!(rep.violations[0].is_note());
        let src = "// nsc-lint: hot\nfn f() { panic!(\"boom\"); }";
        assert_eq!(rules_fired(src), ["hot-panic"]);
        let src = "// nsc-lint: hot\nfn f(x: Option<u8>) { x.expect(\"set\"); }";
        assert_eq!(rules_fired(src), ["hot-panic"]);
    }

    #[test]
    fn hot_rules_are_test_exempt() {
        let src = "#[cfg(test)]\nmod t {\n    fn f_into(x: &[u8]) { let v = x.to_vec(); }\n}";
        assert!(rules_fired_hot(src).is_empty());
        let rep = check_file_ctx(
            "fn f_into(x: &[u8]) { let v = x.to_vec(); }",
            FileContext {
                test_file: true,
                default_hot: true,
            },
        );
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn hot_alloc_waiver_round_trips() {
        let src = "fn grow_into(buf: &mut Vec<u8>) {\n\
                   // nsc-lint: allow(hot-alloc, reason = \"warm-up growth, measured once\")\n\
                   buf.extend(core::iter::repeat(0).take(4).collect::<Vec<u8>>());\n\
                   }";
        let rep = check_file_ctx(
            src,
            FileContext {
                test_file: false,
                default_hot: true,
            },
        );
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.waivers.len(), 1);
        assert!(rep.waivers[0].used);
    }

    #[test]
    fn stale_hot_waivers_are_violations() {
        // The waived line no longer allocates: the waiver itself
        // must now fire, so §14's table cannot go stale silently.
        let src = "fn f_into(x: &mut [u8]) {\n\
                   // nsc-lint: allow(hot-alloc, reason = \"the alloc this documented is gone\")\n\
                   x.sort_unstable();\n\
                   }";
        assert_eq!(rules_fired_hot(src), ["unused-waiver"]);
        // Stale waivers for non-hot rules stay reported-but-not-
        // gating (the pre-§14 behavior).
        let src = "// nsc-lint: allow(wall-clock, reason = \"stale\")\nfn f() {}";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn hot_marker_is_not_a_bad_waiver() {
        let rep = check_file("// nsc-lint: hot\nfn f() {}", false);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.waivers.is_empty());
    }

    #[test]
    fn unattached_hot_marker_is_a_bad_waiver() {
        // A marker below every item binds to nothing; silently
        // dropping it would leave the intended region cold.
        let rep = check_file("fn f() {}\n// nsc-lint: hot", false);
        assert_eq!(
            rep.violations
                .iter()
                .map(|v| (v.rule, v.line))
                .collect::<Vec<_>>(),
            [("bad-waiver", 2)]
        );
        // A marker in an otherwise item-free file is equally orphaned.
        assert_eq!(rules_fired("// nsc-lint: hot"), ["bad-waiver"]);
    }

    #[test]
    fn hot_region_ends_at_the_closing_brace() {
        let src = "// nsc-lint: hot\n\
                   fn hot_one() { let x = 1; }\n\
                   fn cold_one() { let v = Vec::new(); }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn bodiless_decls_do_not_swallow_the_file() {
        let src = "trait T {\n    fn decode_into(&self, out: &mut Vec<u8>);\n}\n\
                   fn after() { let v = Vec::new(); }";
        assert!(rules_fired_hot(src).is_empty());
    }
}
