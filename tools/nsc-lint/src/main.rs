//! `nsc-lint` — the workspace's determinism-invariant checker.
//!
//! The trial engine's contract is that every result is a pure
//! function of `(--seed, trial index)`: byte-identical across thread
//! counts, RNG generators, and runs. That contract is easy to break
//! silently — one `Instant::now` in a result path, one `HashMap`
//! iteration, one `mpsc` merge — so this tool machine-checks the
//! rules the contract rests on (see [`rules::RULES`]):
//!
//! * `wall-clock` — no `Instant::now`/`SystemTime::now` outside
//!   waived observational-timing sites (`BatchTiming`, bench
//!   fingerprinting);
//! * `ambient-rng` — no `thread_rng`/`rand::random`/`from_entropy`/
//!   `OsRng` anywhere;
//! * `unordered-collections` — no `HashMap`/`HashSet` in
//!   result-affecting code (use `BTreeMap`/`BTreeSet`, or waive with
//!   proof the collection is never iterated);
//! * `mpsc-merge` — no `mpsc` in merge paths (the slot-vector pool
//!   owns reassembly);
//! * `undocumented-unsafe` — every `unsafe` needs an adjacent
//!   `// SAFETY:` comment;
//! * `kernel-divergence` — note-level: `cfg(target_feature)`-gated
//!   code in a result path is flagged for review (reported, never
//!   counted toward the exit code) because ISA dispatch can make the
//!   same seed produce different bytes on different machines;
//! * `hot-alloc` — no allocating expressions (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.clone()`, `.collect()`, `Box::new`,
//!   `String::from`, `format!`, `with_capacity`) inside a declared
//!   hot region: a `// nsc-lint: hot`-marked `fn`/`impl`, or any
//!   `*_into`/`*_with_scratch` entry point under
//!   `crates/core/src/sim/`, `crates/core/src/engine/`,
//!   `crates/coding/src/lattice.rs`, or `crates/trace/src/`. The
//!   static twin of the `alloc_census` runtime oracle in
//!   `crates/bench` (DESIGN §14);
//! * `hot-panic` — note-level: `unwrap`/`expect`/`panic!` inside a
//!   hot region;
//! * `unused-waiver` — a `hot-alloc`/`hot-panic` waiver that no
//!   longer suppresses anything is stale bookkeeping and fails the
//!   lint;
//! * `bad-waiver` — malformed waivers are themselves violations.
//!
//! Waiver syntax, on the offending line or the line directly above:
//!
//! ```text
//! // nsc-lint: allow(<rule>, reason = "<non-empty justification>")
//! ```
//!
//! Exit codes: `0` clean, `1` at least one violation, `2` usage or
//! I/O error — suitable for CI gating. `--format json` emits an
//! `nsc-lint/v1` document on stdout.
//!
//! The linter is deliberately dependency-free (std only, lexical
//! analysis — no syntax tree) so it builds and runs even where the
//! crate graph cannot, and cannot itself destabilize the workspace.

mod lexer;
mod rules;

use rules::{check_file_ctx, FileContext, FileReport, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned during a workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    root: PathBuf,
    /// Explicit files/dirs to lint; empty means "walk the root".
    paths: Vec<PathBuf>,
    list_rules: bool,
}

fn usage() -> String {
    "usage: nsc-lint [--format text|json] [--root DIR] [--list-rules] [PATH ...]\n\
     \n\
     With no PATH, walks DIR (default: the current directory) for *.rs\n\
     files, skipping target/, .git/, and fixtures/ directories.\n\
     Explicit PATHs are linted exactly as given (fixtures included).\n\
     Exit codes: 0 clean, 1 violations found, 2 usage/IO error."
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        root: PathBuf::from("."),
        paths: Vec::new(),
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value (text|json)")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format: expected text|json, got `{other}`")),
                };
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

/// Recursively collects `.rs` files under `dir`, skipping
/// [`SKIP_DIRS`], in sorted (deterministic) order.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?
        .map(|r| r.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Test code (integration tests, benches) is exempt from the
/// determinism rules; see [`rules::check_file_ctx`].
fn is_test_path(path: &Path) -> bool {
    path.components()
        .any(|c| matches!(c.as_os_str().to_str(), Some("tests") | Some("benches")))
}

/// Files whose `*_into`/`*_with_scratch` entry points are hot by
/// default: the steady-state trial, decode, and trace-render paths.
/// Matched on the path suffix so relative and absolute invocations
/// agree.
fn is_default_hot_path(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    ["crates/core/src/sim/", "crates/core/src/engine/", "crates/trace/src/"]
        .iter()
        .any(|dir| p.contains(dir))
        || p.ends_with("crates/coding/src/lattice.rs")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(reports: &[(String, FileReport)], files_scanned: usize) -> String {
    let mut v_items = Vec::new();
    let mut w_items = Vec::new();
    let mut notes = 0usize;
    for (file, rep) in reports {
        for v in &rep.violations {
            notes += usize::from(v.is_note());
            v_items.push(format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"column\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
                v.rule,
                if v.is_note() { "note" } else { "deny" },
                json_escape(file),
                v.line,
                v.col,
                json_escape(&v.message),
                json_escape(&v.snippet)
            ));
        }
        for w in &rep.waivers {
            w_items.push(format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\", \
                 \"used\": {}}}",
                w.rule,
                json_escape(file),
                w.line,
                json_escape(&w.reason),
                w.used
            ));
        }
    }
    // Notes inform; only deny-level findings count as violations.
    format!(
        "{{\n  \"schema\": \"nsc-lint/v1\",\n  \"files_scanned\": {},\n  \
         \"violation_count\": {},\n  \"note_count\": {},\n  \"violations\": [\n{}\n  ],\n  \
         \"waivers\": [\n{}\n  ]\n}}\n",
        files_scanned,
        v_items.len() - notes,
        notes,
        v_items.join(",\n"),
        w_items.join(",\n")
    )
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for r in RULES {
            println!(
                "{:<24} {}",
                r.name,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut files = Vec::new();
    if opts.paths.is_empty() {
        walk(&opts.root, &mut files)?;
    } else {
        for p in &opts.paths {
            if p.is_dir() {
                walk(p, &mut files)?;
            } else {
                files.push(p.clone());
            }
        }
    }

    let mut reports: Vec<(String, FileReport)> = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rep = check_file_ctx(
            &src,
            FileContext {
                test_file: is_test_path(path),
                default_hot: is_default_hot_path(path),
            },
        );
        let display = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .display()
            .to_string();
        if !rep.violations.is_empty() || !rep.waivers.is_empty() {
            reports.push((display, rep));
        }
    }
    reports.sort_by(|a, b| a.0.cmp(&b.0));

    // Note-level findings are reported but never gate the exit code.
    let violation_count: usize = reports
        .iter()
        .flat_map(|(_, r)| &r.violations)
        .filter(|v| !v.is_note())
        .count();
    let note_count: usize = reports
        .iter()
        .flat_map(|(_, r)| &r.violations)
        .filter(|v| v.is_note())
        .count();

    match opts.format {
        Format::Json => print!("{}", render_json(&reports, files.len())),
        Format::Text => {
            for (file, rep) in &reports {
                for v in &rep.violations {
                    let sev = if v.is_note() { "note " } else { "" };
                    println!(
                        "{file}:{}:{}: {sev}[{}] {}",
                        v.line, v.col, v.rule, v.message
                    );
                    if !v.snippet.is_empty() {
                        println!("    {}", v.snippet);
                    }
                }
            }
            let waivers: usize = reports.iter().map(|(_, r)| r.waivers.len()).sum();
            let unused: usize = reports
                .iter()
                .flat_map(|(_, r)| &r.waivers)
                .filter(|w| !w.used)
                .count();
            for (file, rep) in &reports {
                for w in rep.waivers.iter().filter(|w| !w.used) {
                    eprintln!(
                        "note: unused waiver for `{}` at {file}:{} ({})",
                        w.rule, w.line, w.reason
                    );
                }
            }
            println!(
                "nsc-lint: {} violation(s), {} note(s), {} file(s) scanned, {} waiver(s) \
                 ({} unused)",
                violation_count,
                note_count,
                files.len(),
                waivers,
                unused
            );
        }
    }

    Ok(if violation_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.format, Format::Text);
        assert!(o.paths.is_empty());
    }

    #[test]
    fn args_full() {
        let o = parse_args(&[
            "--format".into(),
            "json".into(),
            "--root".into(),
            "/tmp".into(),
            "a.rs".into(),
        ])
        .unwrap();
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.root, PathBuf::from("/tmp"));
        assert_eq!(o.paths, vec![PathBuf::from("a.rs")]);
    }

    #[test]
    fn args_reject_unknown() {
        assert!(parse_args(&["--wat".into()]).is_err());
        assert!(parse_args(&["--format".into(), "yaml".into()]).is_err());
    }

    #[test]
    fn test_paths_detected() {
        assert!(is_test_path(Path::new("crates/core/tests/properties.rs")));
        assert!(is_test_path(Path::new(
            "crates/bench/benches/bench_channel.rs"
        )));
        assert!(!is_test_path(Path::new("crates/core/src/engine/runner.rs")));
    }

    #[test]
    fn default_hot_paths_detected() {
        for p in [
            "crates/core/src/sim/unsync.rs",
            "/abs/root/crates/core/src/sim/unsync.rs",
            "crates/core/src/engine/campaign.rs",
            "crates/coding/src/lattice.rs",
            "crates/trace/src/format.rs",
        ] {
            assert!(is_default_hot_path(Path::new(p)), "{p}");
        }
        for p in [
            "crates/coding/src/sequential.rs",
            "crates/core/src/bounds.rs",
            "crates/cli/src/lib.rs",
        ] {
            assert!(!is_default_hot_path(Path::new(p)), "{p}");
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_document_is_well_formed_when_empty() {
        let doc = render_json(&[], 0);
        assert!(doc.contains("\"schema\": \"nsc-lint/v1\""));
        assert!(doc.contains("\"violation_count\": 0"));
    }
}
