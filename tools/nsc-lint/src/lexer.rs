//! A minimal Rust lexer: just enough fidelity to lint determinism
//! invariants without a full parser.
//!
//! The scanner distinguishes the token classes that matter for
//! `nsc-lint`'s rules — identifiers (including keywords), punctuation,
//! comments (line/block, doc or not), string/char literals, and
//! lifetimes — and attaches a 1-based line/column to every token.
//! Comment *text* is preserved because waivers and `SAFETY:`
//! annotations live there; string literal *content* is deliberately
//! discarded so `"thread_rng"` inside a message can never trip a
//! rule.
//!
//! Handled edge cases: nested block comments, raw strings with any
//! number of `#` guards (`r#"…"#`), byte/C strings (`b"…"`, `c"…"`),
//! raw identifiers (`r#type`), escaped char literals (`'\''`), and
//! the char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Instant`, `mod`, …).
    Ident,
    /// A single punctuation character (`:`, `#`, `{`, …).
    Punct(char),
    /// A comment; `text` keeps the full comment including markers.
    Comment {
        /// `///`, `//!`, `/** … */`, `/*! … */`.
        doc: bool,
    },
    /// String literal of any flavor (content discarded).
    Str,
    /// Char or byte literal (content discarded).
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal (content discarded).
    Number,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier or comment text; empty for literals/punctuation.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True for any comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment { .. })
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Never fails: unterminated constructs
/// simply consume the rest of the input as their own token, which is
/// good enough for linting (the compiler proper will reject the file
/// anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = s.peek() {
        let (line, col) = (s.line, s.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => {
                let start = s.pos;
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                let text = src[start..s.pos].to_owned();
                let doc = text.starts_with("///") || text.starts_with("//!");
                toks.push(Tok {
                    kind: TokKind::Comment { doc },
                    text,
                    line,
                    col,
                });
            }
            b'/' if s.peek_at(1) == Some(b'*') => {
                let start = s.pos;
                s.bump();
                s.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (s.peek(), s.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = src[start..s.pos].to_owned();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                toks.push(Tok {
                    kind: TokKind::Comment { doc },
                    text,
                    line,
                    col,
                });
            }
            b'"' => {
                scan_string(&mut s);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'r' | b'b' | b'c' if starts_prefixed_literal(&s) => {
                scan_prefixed_literal(&mut s);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'r' if s.peek_at(1) == Some(b'#') && s.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`.
                s.bump();
                s.bump();
                let text = scan_ident(&mut s);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                if scan_char_or_lifetime(&mut s) {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                } else {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let text = scan_ident(&mut s);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                // Numbers can contain `_`, `.`, exponents and type
                // suffixes; consume the contiguous alnum-ish run.
                while let Some(c) = s.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        // Stop at `..` (range) and method calls on
                        // literals like `1.max(2)`.
                        if c == b'.'
                            && (s.peek_at(1) == Some(b'.')
                                || s.peek_at(1).is_some_and(is_ident_start))
                        {
                            break;
                        }
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: String::new(),
                    line,
                    col,
                });
            }
            _ => {
                s.bump();
                toks.push(Tok {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

/// True when the scanner sits on `r"`, `r#"`, `b"`, `br"`, `c"`,
/// `cr#"`, `b'`, … — a prefixed string/byte/char literal rather than
/// an identifier starting with that letter.
fn starts_prefixed_literal(s: &Scanner<'_>) -> bool {
    let mut i = 1;
    // Optional second prefix letter (`br`, `cr`).
    if matches!(s.peek_at(i), Some(b'r')) && s.peek() != Some(b'r') {
        i += 1;
    }
    // Any number of `#` guards only makes sense before `"`.
    let mut j = i;
    while s.peek_at(j) == Some(b'#') {
        j += 1;
    }
    if j > i {
        return s.peek_at(j) == Some(b'"');
    }
    matches!(s.peek_at(i), Some(b'"')) || (s.peek() == Some(b'b') && s.peek_at(i) == Some(b'\''))
}

fn scan_prefixed_literal(s: &mut Scanner<'_>) {
    // Consume prefix letters.
    while matches!(s.peek(), Some(b'r') | Some(b'b') | Some(b'c')) {
        s.bump();
    }
    let mut guards = 0usize;
    while s.peek() == Some(b'#') {
        guards += 1;
        s.bump();
    }
    match s.peek() {
        Some(b'"') if guards > 0 => {
            // Raw string: ends at `"` followed by `guards` hashes.
            s.bump();
            loop {
                match s.bump() {
                    None => break,
                    Some(b'"') => {
                        let mut k = 0;
                        while k < guards && s.peek() == Some(b'#') {
                            s.bump();
                            k += 1;
                        }
                        if k == guards {
                            break;
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        Some(b'"') => scan_string(s),
        Some(b'\'') => {
            // Byte char literal `b'x'`.
            s.bump();
            loop {
                match s.bump() {
                    None | Some(b'\'') => break,
                    Some(b'\\') => {
                        s.bump();
                    }
                    Some(_) => {}
                }
            }
        }
        _ => {}
    }
}

fn scan_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    loop {
        match s.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                s.bump();
            }
            Some(_) => {}
        }
    }
}

fn scan_ident(s: &mut Scanner<'_>) -> String {
    let start = s.pos;
    while let Some(c) = s.peek() {
        if is_ident_continue(c) {
            s.bump();
        } else {
            break;
        }
    }
    String::from_utf8_lossy(&s.src[start..s.pos]).into_owned()
}

/// Consumes a `'…` construct; returns `true` for a char literal,
/// `false` for a lifetime.
fn scan_char_or_lifetime(s: &mut Scanner<'_>) -> bool {
    s.bump(); // the opening quote
    match s.peek() {
        Some(b'\\') => {
            // Escaped char literal: `'\n'`, `'\''`, `'\u{…}'`.
            s.bump();
            s.bump();
            while let Some(c) = s.peek() {
                s.bump();
                if c == b'\'' {
                    break;
                }
            }
            true
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char, `'a` / `'static` is a lifetime.
            let mut k = 1;
            while s.peek_at(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if s.peek_at(k) == Some(b'\'') {
                for _ in 0..=k {
                    s.bump();
                }
                true
            } else {
                while s.peek().is_some_and(is_ident_continue) {
                    s.bump();
                }
                false
            }
        }
        Some(b'\'') => {
            // `''` — malformed; treat as char and move on.
            s.bump();
            true
        }
        Some(_) => {
            // `'+'` and friends.
            s.bump();
            if s.peek() == Some(b'\'') {
                s.bump();
            }
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_and_positions() {
        let toks = lex("fn main() {\n    let x = 1;\n}\n");
        assert!(toks[0].is_ident("fn"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn string_content_is_opaque() {
        assert_eq!(
            idents(r#"let s = "thread_rng Instant::now";"#),
            ["let", "s"]
        );
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r##"let s = r#"quote " and thread_rng"# ; after"##;
        assert_eq!(idents(src), ["let", "s", "after"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(
            idents(r#"let b = b"thread_rng"; let c = c"x";"#),
            ["let", "b", "let", "c"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert!(toks[0].is_comment());
        assert!(toks[0].text.contains("inner"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn doc_comments_flagged() {
        let toks = lex("/// docs\n//! inner docs\n// plain\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::Comment { doc: true });
        assert_eq!(toks[1].kind, TokKind::Comment { doc: true });
        assert_eq!(toks[2].kind, TokKind::Comment { doc: false });
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {} let q = '\\'';");
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(chars, 2, "{toks:?}");
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = lex("static S: &'static str = \"x\";");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            1
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn unterminated_constructs_do_not_loop() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let s = r#\"unterminated");
    }

    #[test]
    fn numbers_with_method_calls() {
        // `1.max(2)` must not swallow `max` into the number token.
        assert_eq!(
            idents("let x = 1.max(2) + 1.0e3 + 0xff_u32;"),
            ["let", "x", "max"]
        );
    }
}
