//! End-to-end self-tests: run the built `nsc-lint` binary against
//! the committed fixtures and the real workspace.
//!
//! The seeded-violation fixture is the linter's liveness proof: a
//! linter that silently stopped matching would pass the workspace
//! *and* pass the fixture, so CI (and this test) require the fixture
//! to fail with exactly the expected rule set.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nsc-lint"))
        .args(args)
        .output()
        .expect("nsc-lint binary runs")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .display()
        .to_string()
}

/// The workspace root, two levels above `tools/nsc-lint`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/nsc-lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn seeded_violations_are_all_caught() {
    let fix = fixture("seeded_violations.rs");
    let out = lint(&["--format", "json", &fix]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded fixture must fail: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"schema\": \"nsc-lint/v1\""));
    assert!(json.contains("\"violation_count\": 8"), "{json}");
    for (rule, count) in [
        ("wall-clock", 2),
        ("ambient-rng", 2),
        ("unordered-collections", 1),
        ("mpsc-merge", 1),
        ("undocumented-unsafe", 1),
        ("bad-waiver", 1),
    ] {
        let hits = json.matches(&format!("\"rule\": \"{rule}\"")).count();
        assert_eq!(hits, count, "rule {rule}: {json}");
    }
}

#[test]
fn seeded_violation_lines_match_the_fixture_header() {
    let fix = fixture("seeded_violations.rs");
    let out = lint(&[&fix]);
    let text = String::from_utf8(out.stdout).unwrap();
    for line in [20, 23, 26, 29, 32, 35, 37, 39] {
        assert!(
            text.contains(&format!(":{line}:")),
            "expected a violation on line {line}:\n{text}"
        );
    }
}

#[test]
fn clean_fixture_passes_with_used_waivers() {
    let fix = fixture("clean_with_waivers.rs");
    let out = lint(&["--format", "json", &fix]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"violation_count\": 0"), "{json}");
    // Every waiver in the clean fixture suppresses something real.
    assert!(json.contains("\"used\": true"), "{json}");
    assert!(!json.contains("\"used\": false"), "{json}");
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = workspace_root();
    let out = lint(&["--root", root.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean:\n{text}"
    );
    assert!(text.contains("0 violation(s)"), "{text}");
}

#[test]
fn json_output_on_the_workspace_parses_minimally() {
    let root = workspace_root();
    let out = lint(&["--root", root.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.trim_start().starts_with('{'));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"schema\": \"nsc-lint/v1\""));
}

#[test]
fn kernel_divergence_notes_do_not_fail_the_lint() {
    let fix = fixture("note_kernel_divergence.rs");
    let out = lint(&["--format", "json", &fix]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "notes must not gate the exit code: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"violation_count\": 0"), "{json}");
    assert!(json.contains("\"note_count\": 3"), "{json}");
    assert_eq!(json.matches("\"rule\": \"kernel-divergence\"").count(), 3);
    assert_eq!(json.matches("\"severity\": \"note\"").count(), 3);

    // The text rendering marks them as notes too.
    let out = lint(&[&fix]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("note [kernel-divergence]"), "{text}");
    assert!(text.contains("0 violation(s), 3 note(s)"), "{text}");
}

#[test]
fn hot_fixture_diagnostics_are_pinned_to_exact_positions() {
    let fix = fixture("hot_violations.rs");
    let out = lint(&["--format", "json", &fix]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "hot fixture must fail: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"violation_count\": 4"), "{json}");
    assert!(json.contains("\"note_count\": 1"), "{json}");
    for (rule, count) in [("hot-alloc", 3), ("hot-panic", 1), ("unused-waiver", 1)] {
        let hits = json.matches(&format!("\"rule\": \"{rule}\"")).count();
        assert_eq!(hits, count, "rule {rule}: {json}");
    }

    // Text rendering pins each diagnostic to its exact line:col, and
    // the single note does not gate the exit code on its own.
    let out = lint(&[&fix]);
    let text = String::from_utf8(out.stdout).unwrap();
    for pos in [":27:5:", ":33:19:", ":39:17:", ":40:45:", ":54:1:"] {
        assert!(text.contains(pos), "expected a diagnostic at {pos}:\n{text}");
    }
    assert!(text.contains("note [hot-panic]"), "{text}");
    assert!(text.contains("4 violation(s), 1 note(s)"), "{text}");
}

#[test]
fn hot_waiver_round_trips_and_stale_waivers_are_flagged() {
    let fix = fixture("hot_violations.rs");
    let out = lint(&["--format", "json", &fix]);
    let json = String::from_utf8(out.stdout).unwrap();
    // The warm-up vec! waiver suppresses its allocation...
    assert!(json.contains("\"used\": true"), "{json}");
    // ...while the stale waiver surfaces as a violation, not a mere
    // note, so CI refuses bookkeeping drift.
    assert!(json.contains("\"rule\": \"unused-waiver\""), "{json}");
    assert!(json.contains("\"used\": false"), "{json}");
}

#[test]
fn usage_errors_exit_2() {
    let out = lint(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["--root", "/no/such/dir/anywhere"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "wall-clock",
        "ambient-rng",
        "unordered-collections",
        "mpsc-merge",
        "undocumented-unsafe",
        "kernel-divergence",
        "hot-alloc",
        "hot-panic",
        "unused-waiver",
        "bad-waiver",
    ] {
        assert!(text.contains(rule), "{text}");
    }
}
