//! Seeded fixture: every determinism rule fires here (hot-region rules: see `hot_violations.rs`).
//!
//! CI runs `nsc-lint` against this fixture and *requires* a non-zero
//! exit — proving the linter is alive — before trusting its clean
//! verdict on the workspace. This file is never compiled (it lives
//! outside any cargo target directory) and is excluded from default
//! workspace walks (`fixtures/` directories are skipped); it is only
//! linted when passed explicitly.
//!
//! Expected violations, in order:
//!   line 20: wall-clock            (Instant::now)
//!   line 23: wall-clock            (SystemTime::now)
//!   line 26: ambient-rng           (thread_rng)
//!   line 29: ambient-rng           (rand::random)
//!   line 32: unordered-collections (HashMap)
//!   line 35: mpsc-merge            (mpsc)
//!   line 37: undocumented-unsafe   (no SAFETY comment)
//!   line 39: bad-waiver            (unknown rule name)

fn a() { let _ = std::time::Instant::now(); }

#[allow(dead_code)]
fn b() { let _ = std::time::SystemTime::now(); }

#[allow(dead_code)]
fn c() { let _rng = rand::thread_rng(); }

#[allow(dead_code)]
fn d() { let _x: u64 = rand::random(); }

#[allow(dead_code)]
fn e(m: std::collections::HashMap<u32, u32>) { drop(m); }

#[allow(dead_code)]
fn f() { let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); }

fn g(p: *mut u32) { unsafe { *p = 1 }; }

// nsc-lint: allow(made-up-rule, reason = "unknown rules are bad waivers")
fn h() {}

fn main() {
    a();
    g(std::ptr::null_mut());
    h();
}
