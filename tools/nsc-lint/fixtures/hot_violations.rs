//! Hot-region seeded fixture: every allocation-audit rule must fire
//! on this file.
//!
//! CI's `alloc-audit` job runs `nsc-lint` against this fixture and
//! *requires* a non-zero exit — proving the hot-region scanner is
//! alive — before trusting the linter's clean verdict on the
//! workspace, exactly as `seeded_violations.rs` does for the
//! determinism rules. This file is never compiled and is excluded
//! from default workspace walks (`fixtures/` directories are
//! skipped); it is only linted when passed explicitly.
//!
//! Expected diagnostics, in order (deny unless noted):
//!   27:5  hot-alloc     (`Vec::new` in a marked-hot fn)
//!   33:19 hot-alloc     (`.clone()` in a hot `impl` method)
//!   39:17 hot-alloc     (`format!` in a hot fn)
//!   40:45 hot-panic     (note: `.unwrap()` in the same hot fn)
//!   54:1  unused-waiver (a `hot-alloc` waiver suppressing nothing)
//! The *waived* `vec!` on line 47 and the allocations in the cold
//! functions at the bottom must NOT be flagged.

struct Frame {
    bits: Vec<bool>,
}

// nsc-lint: hot
fn hot_fresh_buffer() -> Vec<bool> {
    Vec::new()
}

// nsc-lint: hot
impl Frame {
    fn hot_method(&self) -> Vec<bool> {
        self.bits.clone()
    }
}

// nsc-lint: hot
fn hot_render(frame: &Frame) -> usize {
    let label = format!("{} bits", frame.bits.len());
    let first = frame.bits.first().copied().unwrap();
    label.len() + usize::from(first)
}

// nsc-lint: hot
fn hot_warmup_waived(n: usize) -> Vec<u8> {
    // nsc-lint: allow(hot-alloc, reason = "warm-up: sized once per campaign, reused by every trial")
    vec![0u8; n]
}

// nsc-lint: hot
fn hot_stale_waiver(x: u64) -> u64 {
    // The fn below allocates nothing, so this waiver is stale and
    // must itself be flagged:
    // nsc-lint: allow(hot-alloc, reason = "left behind after a refactor")
    x.wrapping_mul(3)
}

fn cold_helper() -> Vec<bool> {
    // Not in a hot region: allocation rules do not apply.
    Vec::new()
}

fn main() {
    let frame = Frame {
        bits: cold_helper(),
    };
    let _ = hot_fresh_buffer();
    let _ = frame.hot_method();
    let _ = hot_render(&frame);
    let _ = hot_warmup_waived(4);
    let _ = hot_stale_waiver(7);
}
