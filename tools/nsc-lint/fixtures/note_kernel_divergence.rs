//! Fixture: ISA-gated code that must draw a `kernel-divergence`
//! *note* — reported for review, but never failing the lint (exit 0,
//! `violation_count` 0), because the rule is advisory.
//!
//! Lines with expected notes: 9, 16, 20.

#![allow(dead_code)]

#[cfg(target_feature = "avx2")]
fn lanes_avx2(xs: &mut [u64]) {
    for x in xs.iter_mut() {
        *x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

#[cfg(not(target_feature = "avx2"))]
fn lanes_avx2(_xs: &mut [u64]) {}

fn pick() -> bool {
    cfg!(target_feature = "avx2")
}
