//! Clean fixture: correctly annotated code the linter must accept.
//!
//! Exercises every suppression path — reasoned waivers (standalone
//! and trailing), `SAFETY:` comments on `unsafe`, string/comment
//! immunity, and `#[cfg(test)]` exemption — so the self-test can pin
//! "exit 0, zero violations" alongside the seeded-violation file's
//! "exit 1, eight violations".

// nsc-lint: allow(wall-clock, reason = "observational batch timing, never folded into results")
fn timed() { let _ = std::time::Instant::now(); }

fn also_timed() {
    let _ = std::time::Instant::now(); // nsc-lint: allow(wall-clock, reason = "bench fingerprint")
}

// nsc-lint: allow(unordered-collections, reason = "lookup-only; iteration never reaches results")
fn lookup(m: &std::collections::HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied()
}

struct Slot(std::cell::UnsafeCell<Option<u64>>);

// SAFETY: the atomic cursor hands each index to exactly one worker,
// so no two threads touch the same slot.
unsafe impl Sync for Slot {}

fn write(slot: &Slot, v: u64) {
    // SAFETY: `slot` was claimed via fetch_add, making this thread
    // its only writer.
    unsafe { *slot.0.get() = Some(v) };
}

fn prose() {
    // This comment mentions thread_rng, HashMap, mpsc, and
    // Instant::now without triggering anything.
    let _ = "thread_rng HashMap mpsc Instant::now SystemTime::now";
}

#[cfg(test)]
mod tests {
    // Test code may use unordered collections freely.
    use std::collections::HashSet;

    #[test]
    fn t() {
        let mut s = HashSet::new();
        s.insert(1u32);
        assert!(s.contains(&1));
    }
}

fn main() {
    timed();
    also_timed();
    // nsc-lint: allow(unordered-collections, reason = "constructing the lookup-only map")
    lookup(&std::collections::HashMap::new());
    write(&Slot(std::cell::UnsafeCell::new(None)), 7);
    prose();
}
