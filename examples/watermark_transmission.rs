//! Sending a real message over a non-synchronous covert channel with
//! **no synchronization mechanism at all** — the §4.1 scenario: no
//! feedback path, no common clock, just a deletion-insertion channel
//! and a watermark code.
//!
//! Run with `cargo run --bin watermark_transmission --release`.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_coding::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits};
use nsc_coding::conv::ConvCode;
use nsc_coding::watermark::WatermarkCode;
use nsc_examples::header;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret = b"MEET AT DAWN. BRING THE KEYS.";
    let (p_d, p_i) = (0.05, 0.03);

    header("1. Encode");
    let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, 0x5EC2E7)?;
    let data = bytes_to_bits(secret);
    let sent = code.encode(&data)?;
    println!(
        "secret                : {:?}",
        String::from_utf8_lossy(secret)
    );
    println!("data bits             : {}", data.len());
    println!("transmitted bits      : {}", sent.len());
    println!(
        "code rate             : {:.4} data bits/channel bit",
        code.rate(data.len())
    );

    header("2. Transmit over the deletion-insertion channel");
    let channel = DeletionInsertionChannel::new(Alphabet::binary(), DiParams::new(p_d, p_i, 0.0)?);
    let input: Vec<Symbol> = sent.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    let mut rng = StdRng::seed_from_u64(1812);
    let out = channel.transmit(&input, &mut rng);
    let received: Vec<bool> = out.received.iter().map(|s| s.index() == 1).collect();
    println!("deletions             : {}", out.events.deletions());
    println!("insertions            : {}", out.events.insertions());
    println!(
        "received bits         : {} (sent {})",
        received.len(),
        sent.len()
    );
    println!("note: the receiver does NOT know where the losses happened.");

    header("3. Decode with the drift lattice");
    let decoded = code.decode(&received, data.len(), p_d, p_i, 0.0)?;
    let ber = bit_error_rate(&decoded, &data);
    let recovered = bits_to_bytes(&decoded);
    println!("bit error rate        : {ber:.5}");
    println!(
        "recovered             : {:?}",
        String::from_utf8_lossy(&recovered)
    );
    println!(
        "\nIt works — but at rate {:.3}, far below the {:.3} bits/use that",
        code.rate(data.len()),
        1.0 - p_d
    );
    println!("Theorem 3 promises *with* a feedback path. Non-synchronized");
    println!("communication is possible, just much less effective — the");
    println!("paper's central claim about covert channels in the wild.");
    Ok(())
}
