//! The covert pair as *real threads*: a sender and receiver sharing a
//! `parking_lot::Mutex` variable, with a crossbeam channel as the
//! perfect feedback path of Theorems 2-5.
//!
//! The OS thread scheduler plays the role of the paper's §3.1
//! uniprocessor scheduler: neither thread controls when it runs, so
//! without the counter protocol symbols would be lost and duplicated.
//! With it, the transfer is exact.
//!
//! Run with `cargo run --bin concurrent_pair --release`.

use crossbeam::channel;
use nsc_examples::header;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// The shared variable: the covert "mailbox".
#[derive(Default)]
struct SharedVariable {
    value: u8,
}

fn main() {
    let secret: Vec<u8> = b"non-synchronous covert channels are real".to_vec();
    header("Counter protocol across real threads");
    println!("message bytes         : {}", secret.len());

    let mailbox = Arc::new(Mutex::new(SharedVariable::default()));
    let done = Arc::new(AtomicBool::new(false));
    // Perfect feedback path: the receiver reports its running count.
    let (feedback_tx, feedback_rx) = channel::unbounded::<usize>();
    // Out-of-band result collection for the demo.
    let (result_tx, result_rx) = channel::unbounded::<Vec<u8>>();

    let receiver = {
        let mailbox = Arc::clone(&mailbox);
        let done = Arc::clone(&done);
        let total = secret.len();
        thread::spawn(move || {
            let mut received = Vec::with_capacity(total);
            while received.len() < total {
                // Each loop iteration is one "operation opportunity":
                // the receiver samples the shared variable and
                // reports how many symbols it believes it has.
                {
                    let guard = mailbox.lock();
                    received.push(guard.value);
                }
                // Appendix A: notify the sender of the count over the
                // feedback path.
                let _ = feedback_tx.send(received.len());
                thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
            let _ = result_tx.send(received);
        })
    };

    let sender = {
        let mailbox = Arc::clone(&mailbox);
        let done = Arc::clone(&done);
        let message = secret.clone();
        thread::spawn(move || {
            let mut sent_or_skipped = 0usize; // the sender counter S
            let mut last_r = 0usize; // latest receiver count R
            let mut waits = 0u64;
            let mut skips = 0u64;
            while sent_or_skipped < message.len() && !done.load(Ordering::SeqCst) {
                while let Ok(r) = feedback_rx.try_recv() {
                    last_r = r;
                }
                match last_r.cmp(&sent_or_skipped) {
                    std::cmp::Ordering::Less => {
                        // Last symbol unread: wait (no deletion!).
                        waits += 1;
                        thread::yield_now();
                    }
                    std::cmp::Ordering::Equal => {
                        let mut guard = mailbox.lock();
                        guard.value = message[sent_or_skipped];
                        sent_or_skipped += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        // Receiver read stale values: skip forward so
                        // the next symbol lands at the right offset.
                        skips += (last_r - sent_or_skipped) as u64;
                        if last_r < message.len() {
                            let mut guard = mailbox.lock();
                            guard.value = message[last_r];
                        }
                        sent_or_skipped = last_r + 1;
                    }
                }
            }
            (waits, skips)
        })
    };

    let (waits, skips) = sender.join().expect("sender thread panicked");
    receiver.join().expect("receiver thread panicked");
    let received = result_rx.recv().expect("receiver reported a result");

    let matches = received.iter().zip(&secret).filter(|(a, b)| a == b).count();
    println!("sender waits          : {waits}");
    println!("positions skipped     : {skips}");
    println!(
        "positions correct     : {matches}/{} ({:.1}%)",
        secret.len(),
        100.0 * matches as f64 / secret.len() as f64
    );
    println!(
        "received              : {:?}",
        String::from_utf8_lossy(&received)
    );
    println!("\nWaits replace deletions; skips convert insertions into");
    println!("substitutions at known offsets — Appendix A, on real threads.");
    println!("(Positions filled by stale reads may differ from the message;");
    println!("that residue is exactly the converted channel of Figure 5.)");
}
