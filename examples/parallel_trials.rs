//! Parallel trials: the deterministic Monte-Carlo engine in action.
//!
//! Runs the same §3 mechanism campaign serially and on a worker pool,
//! prints both summaries, and asserts they are identical — the
//! engine's determinism contract (per-trial SplitMix64 seeds, fixed
//! batch boundaries, ordered merges) makes the thread count a pure
//! wall-clock knob.
//!
//! Run with `cargo run --release --bin parallel_trials`.

use nsc_core::engine::{run_campaign, EngineConfig, Mechanism, TrialPlan};
use nsc_examples::header;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = TrialPlan::new(Mechanism::Counter, 2, 5_000, 0.5);
    let trials = 256;
    let seed = 20_050_605;

    header("1. Serial baseline (--threads 1)");
    // nsc-lint: allow(wall-clock, reason = "the example prints wall-clock to show the speed-up; statistics stay seed-pure")
    let start = Instant::now();
    let serial = run_campaign(&EngineConfig::serial(seed), &plan, trials)?;
    let serial_time = start.elapsed();
    println!(
        "mechanism : {} ({} trials)",
        serial.mechanism, serial.trials
    );
    println!(
        "rate      : {:.6} bits/op (95% CI half-width {:.6})",
        serial.rate.mean,
        serial.rate.ci95_hi - serial.rate.mean
    );
    println!("wall time : {serial_time:.2?}");

    header("2. Worker pool (--threads = all cores)");
    let cfg = EngineConfig::seeded(seed);
    // nsc-lint: allow(wall-clock, reason = "the example prints wall-clock to show the speed-up; statistics stay seed-pure")
    let start = Instant::now();
    let parallel = run_campaign(&cfg, &plan, trials)?;
    let parallel_time = start.elapsed();
    println!("workers   : {}", cfg.effective_threads());
    println!(
        "rate      : {:.6} bits/op (95% CI half-width {:.6})",
        parallel.rate.mean,
        parallel.rate.ci95_hi - parallel.rate.mean
    );
    println!("wall time : {parallel_time:.2?}");

    header("3. Determinism check");
    assert_eq!(serial, parallel, "engine determinism contract violated");
    println!("serial and parallel summaries are identical, field for field —");
    println!("every float bit-equal. The thread count changed only wall time");
    println!(
        "({:.2?} serial vs {:.2?} on {} workers).",
        serial_time,
        parallel_time,
        cfg.effective_threads()
    );
    Ok(())
}
