//! The capacity surface: Theorem 4/5 bounds over the whole
//! `(P_d, P_i)` simplex, and the defender's mitigation threshold.
//!
//! Run with `cargo run --bin bounds_surface --release`.

use nsc_core::sweep::{sweep_bounds, Grid};
use nsc_examples::header;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 8u32;
    header("Achievable capacity surface (Theorem 5), N = 8 bits");
    let grid = Grid::new(0.0, 0.9, 10)?;
    let sweep = sweep_bounds(&grid, &grid, &[bits])?;

    // Render the lower-bound surface as a text heat table.
    print!("{:>7}", "Pd\\Pi");
    for p_i in grid.values() {
        print!("{p_i:>7.2}");
    }
    println!();
    for p_d in grid.values() {
        print!("{p_d:>7.2}");
        for p_i in grid.values() {
            let cell = sweep
                .points
                .iter()
                .find(|p| (p.p_d - p_d).abs() < 1e-9 && (p.p_i - p_i).abs() < 1e-9);
            match cell {
                Some(p) => print!("{:>7.2}", p.bounds.lower.value()),
                None => print!("{:>7}", "-"),
            }
        }
        println!();
    }
    println!(
        "\n({} grid points outside the parameter simplex were skipped.)",
        sweep.skipped
    );

    header("Reading the surface");
    let best = sweep.best_achievable().expect("non-empty sweep");
    println!(
        "attacker's best point : P_d = {}, P_i = {} -> {:.3} bits/slot",
        best.p_d,
        best.p_i,
        best.bounds.lower.value()
    );
    for target in [4.0, 2.0, 1.0] {
        match sweep.mitigation_threshold(target) {
            Some(p_d) => {
                println!("to cap the channel under {target:.0} bits/slot, push P_d past {p_d:.2}")
            }
            None => println!("no surveyed point falls below {target:.0} bits/slot"),
        }
    }
    println!("\nDeletions dominate: the surface falls linearly in P_d (Theorem 4's");
    println!("N(1-P_d) envelope) while insertions cost only the C_conv penalty —");
    println!("which vanishes as the symbol width grows (equations 6-7).");
    Ok(())
}
