//! Shared helpers for the runnable examples.

/// Prints a boxed section header.
pub fn header(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Formats a rate with its unit.
pub fn rate(value: f64, unit: &str) -> String {
    format!("{value:.4} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formats() {
        assert_eq!(rate(0.5, "bits/op"), "0.5000 bits/op");
    }
}
