//! Quickstart: model a non-synchronous covert channel, bound its
//! capacity, and verify the bound by running the Theorem 3 protocol.
//!
//! Run with `cargo run --bin quickstart` (add `--release` for speed).

use nsc_channel::alphabet::Alphabet;
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::bounds::{capacity_bounds, converted_channel_capacity};
use nsc_core::protocols::resend::run_resend;
use nsc_examples::{header, rate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A covert channel carrying 4-bit symbols that loses 15% of them
    // and gains 10% spurious ones — the deletion-insertion channel of
    // Wang & Lee, Definition 1.
    let bits = 4u32;
    let (p_d, p_i) = (0.15, 0.10);

    header("1. Capacity bounds (Theorems 1-5)");
    let b = capacity_bounds(bits, p_d, p_i)?;
    println!("symbol width          : {bits} bits");
    println!("deletion probability  : {p_d}");
    println!("insertion probability : {p_i}");
    println!(
        "converted channel C_conv (eq. 2-4): {}",
        rate(
            converted_channel_capacity(bits, p_i)?.value(),
            "bits/symbol"
        )
    );
    println!(
        "Theorem 5 lower bound : {}",
        rate(b.lower.value(), "bits/slot")
    );
    println!(
        "Theorem 4 upper bound : {}",
        rate(b.upper.value(), "bits/slot")
    );
    println!("bound tightness       : {:.1}%", 100.0 * b.tightness());

    header("2. Theorem 3 in action: resend over a deletion channel");
    let alphabet = Alphabet::new(bits)?;
    let channel = DeletionInsertionChannel::new(alphabet, DiParams::deletion_only(p_d)?);
    let mut rng = StdRng::seed_from_u64(42);
    let message: Vec<_> = (0..20_000).map(|_| alphabet.random(&mut rng)).collect();
    let run = run_resend(&channel, &message, &mut rng)?;
    println!("message symbols       : {}", message.len());
    println!("channel uses          : {}", run.channel_uses);
    println!("retransmissions       : {}", run.retransmissions);
    println!(
        "measured goodput      : {}",
        rate(run.goodput(bits).value(), "bits/use")
    );
    println!(
        "theory N(1-p_d)       : {}",
        rate(bits as f64 * (1.0 - p_d), "bits/use")
    );
    println!("\nThe resend protocol achieves the erasure-channel capacity —");
    println!("the Theorem 2 upper bound is tight, exactly as Theorem 3 claims.");
    Ok(())
}
