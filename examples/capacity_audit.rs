//! A TCSEC-style covert-channel audit with the paper's correction.
//!
//! An auditor finds a covert *timing* channel: a high-side process
//! modulates the low-side process's scheduling gaps (a timed
//! Z-channel in the sense of Moskowitz-Greenwald-Kang). The audit
//! runs the channel on the simulated uniprocessor, estimates its
//! capacity the traditional (synchronous-model) way from the measured
//! gap statistics, then applies the Wang & Lee correction
//! `C·(1 − P_d)` using the measured deletion rate — changing the
//! number an accreditor would act on.
//!
//! Run with `cargo run --bin capacity_audit --release`.

use nsc_core::degradation::SeverityPolicy;
use nsc_examples::{header, rate};
use nsc_info::BitsPerTick;
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::timing::{run_timing_channel, TimingConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("1. Exercise the timing channel on the target system");
    // A loaded machine with a lottery scheduler and a sender that can
    // only poll the low side's progress 40% of the time.
    let config = TimingConfig {
        policy: PolicyKind::Lottery,
        poll_prob: 0.4,
        background: 2,
        bg_ready: 0.7,
    };
    let mut rng = StdRng::seed_from_u64(2005);
    let pilot: Vec<bool> = (0..20_000).map(|_| rng.gen()).collect();
    let run = run_timing_channel(&pilot, &config, usize::MAX, &mut rng)?;
    println!("quanta simulated      : {}", run.quanta);
    println!("receiver observations : {}", run.samples.len());

    header("2. Traditional (synchronous-model) estimate");
    // Threshold between the gap means (calibrated on the pilot).
    let m = run.measure(3)?;
    println!(
        "gap means             : bit 0 -> {:.3} quanta, bit 1 -> {:.3} quanta",
        m.mean_gap_zero, m.mean_gap_one
    );
    println!("substitution rate     : {:.4}", m.p_s);
    println!(
        "traditional capacity  : {}",
        rate(m.traditional_capacity, "bits/quantum")
    );
    let policy = SeverityPolicy {
        negligible_below: 0.01,
        critical_above: 0.25,
    };
    println!(
        "severity (traditional): {:?}",
        policy.classify(BitsPerTick(m.traditional_capacity))
    );

    header("3. Measure non-synchrony and apply the correction");
    println!("measured P_d          : {:.4} (bits never observed)", m.p_d);
    println!("measured P_i          : {:.4} (stale re-reads)", m.p_i);
    println!(
        "corrected capacity    : {}",
        rate(m.corrected_capacity, "bits/quantum")
    );
    println!(
        "severity (corrected)  : {:?}",
        policy.classify(BitsPerTick(m.corrected_capacity))
    );
    println!(
        "capacity over-report  : {:.1}%",
        100.0 * (m.traditional_capacity / m.corrected_capacity.max(1e-12) - 1.0)
    );
    println!("\nThe synchronous-model analysis over-reports the channel. The");
    println!("paper's recipe — measure P_d, report C(1 - P_d) — is what the");
    println!("accreditor should file.");
    Ok(())
}
