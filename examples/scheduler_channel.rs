//! The paper's §3.1 motivating example, end to end: two processes on
//! a uniprocessor leak data through a shared variable, and the
//! *scheduler* determines how non-synchronous — and therefore how
//! fast — the covert channel is.
//!
//! Run with `cargo run --bin scheduler_channel --release`.

use nsc_channel::alphabet::Alphabet;
use nsc_examples::{header, rate};
use nsc_sched::covert::{counter_protocol_over_trace, measure_covert_channel};
use nsc_sched::mitigation::{policy_study, PolicyKind};
use nsc_sched::system::{Uniprocessor, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 4u32;
    let quanta = 60_000;
    let seed = 7u64;

    header("1. One machine, one policy: lottery scheduling");
    let spec = WorkloadSpec::covert_pair().with_background(2, 0.8);
    let mut system = Uniprocessor::new(spec.clone(), PolicyKind::Lottery.build())?;
    let trace = system.run(quanta, &mut StdRng::seed_from_u64(seed));
    let m = measure_covert_channel(&trace, bits, &mut StdRng::seed_from_u64(seed + 1))?;
    println!("quanta simulated      : {}", trace.len());
    println!("covert pair CPU share : {:.1}%", 100.0 * m.covert_share());
    println!("measured P_d          : {:.4} (sender overwrites)", m.p_d);
    println!(
        "measured P_i          : {:.4} (receiver stale reads)",
        m.p_i
    );

    header("2. Exploiting it anyway: the Appendix A counter protocol");
    let alphabet = Alphabet::new(bits)?;
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let msg: Vec<_> = (0..10_000).map(|_| alphabet.random(&mut rng)).collect();
    let out = counter_protocol_over_trace(&trace, &msg)?;
    println!("positions delivered   : {}", out.received.len());
    println!(
        "symbol error rate     : {:.4}",
        out.symbol_error_rate(&msg[..out.received.len()])
    );
    println!(
        "reliable rate         : {}",
        rate(
            out.reliable_rate(bits, &msg[..out.received.len()]).value(),
            "bits/covert-op"
        )
    );

    header("3. The scheduler as mitigation: policy study");
    println!(
        "{:<16} {:>8} {:>8} {:>12} {:>12}",
        "policy", "P_d", "P_i", "achievable", "upper"
    );
    for r in policy_study(&spec, bits, quanta, seed)? {
        println!(
            "{:<16} {:>8.4} {:>8.4} {:>12.4} {:>12.4}",
            r.policy.name(),
            r.measurement.p_d,
            r.measurement.p_i,
            r.achievable.value(),
            r.upper_bound.value(),
        );
    }
    println!("\nDeterministic fair schedulers (round-robin, stride) hand the");
    println!("covert pair a clean, full-rate channel; randomized scheduling");
    println!("degrades it — but Theorem 5 says a synchronized attacker still");
    println!("gets a predictable fraction of it. Capacity estimation must use");
    println!("the measured P_d, not the synchronous-model assumption.");
    Ok(())
}
