//! Finite Markov chains: stationary distributions and entropy rates.
//!
//! Protocol analyses in `nsc-core` (e.g. the counter protocol's
//! alternating send/receive occupancy) and the HMM-based watermark
//! decoder in `nsc-coding` both reduce to questions about small
//! Markov chains.

use crate::dist::Distribution;
use crate::entropy::entropy;
use crate::error::InfoError;
use serde::{Deserialize, Serialize};

/// A finite, row-stochastic Markov chain.
///
/// # Example
///
/// ```
/// use nsc_info::markov::MarkovChain;
///
/// // A two-state chain that flips with probability 0.25.
/// let mc = MarkovChain::new(vec![
///     vec![0.75, 0.25],
///     vec![0.25, 0.75],
/// ])?;
/// let pi = mc.stationary(1e-12, 100_000)?;
/// assert!((pi[0] - 0.5).abs() < 1e-9);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    rows: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain from a row-stochastic transition matrix
    /// `rows[i][j] = P(next = j | current = i)`.
    ///
    /// # Errors
    ///
    /// Returns a validation error when the matrix is empty, ragged,
    /// non-square, or a row is not a probability distribution.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, InfoError> {
        crate::blahut::validate_transition_matrix(&rows)?;
        if rows[0].len() != rows.len() {
            return Err(InfoError::DimensionMismatch {
                got: (rows.len(), rows[0].len()),
                expected: (rows.len(), rows.len()),
            });
        }
        Ok(MarkovChain { rows })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.rows.len()
    }

    /// Borrow the transition matrix.
    pub fn transition_matrix(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// One step of the chain: `next_j = Σ_i current_i · P(j | i)`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::DimensionMismatch`] when `current` has the
    /// wrong length.
    pub fn step(&self, current: &[f64]) -> Result<Vec<f64>, InfoError> {
        if current.len() != self.states() {
            return Err(InfoError::DimensionMismatch {
                got: (current.len(), 1),
                expected: (self.states(), 1),
            });
        }
        let n = self.states();
        let mut next = vec![0.0; n];
        for (i, &ci) in current.iter().enumerate() {
            if ci == 0.0 {
                continue;
            }
            for (j, &pij) in self.rows[i].iter().enumerate() {
                next[j] += ci * pij;
            }
        }
        Ok(next)
    }

    /// Stationary distribution by fixed-point iteration from the
    /// uniform start, with damping to handle periodic chains.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::NoConvergence`] if the iteration does not
    /// settle within `max_iter` steps (e.g. the chain has several
    /// closed classes and the limit depends on the start — callers
    /// should treat that as "no unique stationary distribution").
    pub fn stationary(&self, tol: f64, max_iter: usize) -> Result<Distribution, InfoError> {
        let n = self.states();
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..max_iter {
            let stepped = self.step(&pi)?;
            // Damped update makes period-2 chains converge too.
            let next: Vec<f64> = stepped
                .iter()
                .zip(&pi)
                .map(|(s, p)| 0.5 * s + 0.5 * p)
                .collect();
            let delta: f64 = next
                .iter()
                .zip(&pi)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
            pi = next;
            if delta < tol {
                return Distribution::from_weights(&pi);
            }
        }
        Err(InfoError::NoConvergence {
            iterations: max_iter,
            residual: tol,
        })
    }

    /// Entropy rate of the stationary chain in bits per step:
    /// `H = Σ_i π_i · H(P(· | i))`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::stationary`] errors.
    pub fn entropy_rate(&self, tol: f64, max_iter: usize) -> Result<f64, InfoError> {
        let pi = self.stationary(tol, max_iter)?;
        Ok(pi
            .iter()
            .zip(&self.rows)
            .map(|(p, row)| p * entropy(row))
            .sum())
    }

    /// Expected hitting probability mass on state `target` after `k`
    /// steps from distribution `start`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::DimensionMismatch`] for a wrong-length
    /// start vector or [`InfoError::InvalidArgument`] for an invalid
    /// target.
    pub fn occupancy_after(
        &self,
        start: &[f64],
        k: usize,
        target: usize,
    ) -> Result<f64, InfoError> {
        if target >= self.states() {
            return Err(InfoError::InvalidArgument(format!(
                "target state {target} out of range"
            )));
        }
        let mut v = start.to_vec();
        for _ in 0..k {
            v = self.step(&v)?;
        }
        Ok(v[target])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MarkovChain::new(vec![vec![0.5, 0.5]]).is_err()); // non-square
        assert!(MarkovChain::new(vec![vec![0.5, 0.6], vec![0.5, 0.5]]).is_err());
        assert!(MarkovChain::new(vec![]).is_err());
    }

    #[test]
    fn stationary_of_symmetric_chain_is_uniform() {
        let mc = MarkovChain::new(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let pi = mc.stationary(1e-13, 1_000_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_of_biased_chain() {
        // Birth-death chain with known stationary distribution
        // pi ∝ (1, a/b) for flip rates a (0→1) and b (1→0).
        let a = 0.2;
        let b = 0.6;
        let mc = MarkovChain::new(vec![vec![1.0 - a, a], vec![b, 1.0 - b]]).unwrap();
        let pi = mc.stationary(1e-13, 1_000_000).unwrap();
        let expected0 = b / (a + b);
        assert!((pi[0] - expected0).abs() < 1e-9, "pi = {pi:?}");
    }

    #[test]
    fn stationary_of_periodic_chain_converges_with_damping() {
        let mc = MarkovChain::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let pi = mc.stationary(1e-13, 1_000_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn entropy_rate_of_iid_chain_is_row_entropy() {
        // All rows identical => iid process.
        let mc = MarkovChain::new(vec![vec![0.25, 0.75], vec![0.25, 0.75]]).unwrap();
        let h = mc.entropy_rate(1e-13, 1_000_000).unwrap();
        assert!((h - crate::entropy::binary_entropy(0.25)).abs() < 1e-9);
    }

    #[test]
    fn entropy_rate_of_deterministic_chain_is_zero() {
        let mc = MarkovChain::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(mc.entropy_rate(1e-13, 1_000_000).unwrap().abs() < 1e-12);
    }

    #[test]
    fn occupancy_evolves() {
        let mc = MarkovChain::new(vec![vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        // Absorbing state 1: after one step all mass is there.
        let occ = mc.occupancy_after(&[1.0, 0.0], 1, 1).unwrap();
        assert_eq!(occ, 1.0);
        assert!(mc.occupancy_after(&[1.0], 1, 0).is_err());
        assert!(mc.occupancy_after(&[1.0, 0.0], 1, 9).is_err());
    }

    #[test]
    fn step_preserves_total_mass() {
        let mc = MarkovChain::new(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.1, 0.8, 0.1],
            vec![0.3, 0.3, 0.4],
        ])
        .unwrap();
        let v = mc.step(&[0.2, 0.3, 0.5]).unwrap();
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
