//! Capacity per unit time for channels with unequal symbol durations.
//!
//! Traditional covert-channel capacity estimation (Millen 1987/1989,
//! Moskowitz's Simple Timing Channels) measures capacity in bits per
//! second for channels whose symbols take different times to send.
//! Two solvers live here:
//!
//! * [`noiseless_timing_capacity`] — Shannon's classic result for a
//!   noiseless channel with symbol durations `t_1..t_k`: the capacity
//!   is the unique `C ≥ 0` with `Σ_i 2^{-C·t_i} = 1`.
//! * [`capacity_per_unit_time`] — the general noisy case
//!   `C = max_p I(p; W) / E_p[T]`, solved by Dinkelbach iterations
//!   whose inner problems are cost-tilted Blahut–Arimoto passes.
//!
//! These are the "traditional methods" the paper's §4.3 Remarks feed
//! into its correction: estimate a physical capacity `C` this way,
//! then report `C · (1 − P_d)`.

use crate::blahut::validate_transition_matrix;
use crate::dist::Distribution;
use crate::error::InfoError;
use crate::roots::{brent, RootOptions};

/// Options for the capacity-per-unit-time solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingOptions {
    /// Tolerance on the rate (bits per unit time).
    pub tolerance: f64,
    /// Outer (Dinkelbach) iteration budget.
    pub max_outer: usize,
    /// Inner (Blahut–Arimoto) iteration budget per outer step.
    pub max_inner: usize,
}

impl Default for TimingOptions {
    fn default() -> Self {
        TimingOptions {
            tolerance: 1e-10,
            max_outer: 100,
            max_inner: 20_000,
        }
    }
}

/// Result of a capacity-per-unit-time computation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingCapacity {
    /// Capacity in bits per unit time.
    pub rate: f64,
    /// The rate-optimal input distribution.
    pub input: Distribution,
    /// Mutual information at the optimal input (bits per channel use).
    pub bits_per_use: f64,
    /// Mean symbol duration at the optimal input.
    pub mean_duration: f64,
}

/// Shannon's noiseless timing capacity: the unique `C ≥ 0` solving
/// `Σ_i 2^{-C·t_i} = 1` for symbol durations `t_i`.
///
/// This is Moskowitz's Simple Timing Channel capacity and the
/// single-state case of Millen's finite-state model.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when `durations` is empty,
/// contains a non-positive or non-finite value, or has exactly one
/// symbol of zero duration. A single symbol yields capacity zero (one
/// symbol carries no information).
///
/// # Example
///
/// Two symbols of durations 1 and 2 give the "telegraph" capacity
/// `log2(φ)` where `φ` is the golden ratio:
///
/// ```
/// use nsc_info::timing::noiseless_timing_capacity;
/// let c = noiseless_timing_capacity(&[1.0, 2.0])?;
/// let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
/// assert!((c - phi.log2()).abs() < 1e-10);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn noiseless_timing_capacity(durations: &[f64]) -> Result<f64, InfoError> {
    if durations.is_empty() {
        return Err(InfoError::InvalidArgument(
            "need at least one symbol duration".to_owned(),
        ));
    }
    for &t in durations {
        if !t.is_finite() || t <= 0.0 {
            return Err(InfoError::InvalidArgument(format!(
                "symbol durations must be positive and finite, got {t}"
            )));
        }
    }
    if durations.len() == 1 {
        return Ok(0.0);
    }
    let f = |c: f64| durations.iter().map(|&t| (-c * t).exp2()).sum::<f64>() - 1.0;
    // f(0) = k - 1 > 0 and f is strictly decreasing; find an upper
    // bracket by doubling.
    let mut hi = 1.0;
    while f(hi) > 0.0 {
        hi *= 2.0;
        if hi > 1e9 {
            return Err(InfoError::NoConvergence {
                iterations: 0,
                residual: f(hi),
            });
        }
    }
    brent(f, 0.0, hi, &RootOptions::default())
}

/// Inner helper: for a fixed Lagrange rate `r`, maximize
/// `I(p) − r·E_p[T]` over input distributions via a cost-tilted
/// Blahut–Arimoto pass. Returns `(objective, p, mutual_info,
/// mean_duration)`.
fn tilted_blahut(
    w: &[Vec<f64>],
    durations: &[f64],
    rate: f64,
    tol: f64,
    max_iter: usize,
) -> Result<(f64, Vec<f64>, f64, f64), InfoError> {
    let nx = w.len();
    let ny = w[0].len();
    let mut p = vec![1.0 / nx as f64; nx];
    let mut score = vec![0.0_f64; nx];
    let mut result = (f64::NEG_INFINITY, p.clone(), 0.0, 0.0);
    for _ in 0..max_iter {
        let mut r_out = vec![0.0_f64; ny];
        for (px, row) in p.iter().zip(w) {
            for (ry, &wxy) in r_out.iter_mut().zip(row) {
                *ry += px * wxy;
            }
        }
        let mut info = 0.0;
        let mut mean_t = 0.0;
        for (x, row) in w.iter().enumerate() {
            let mut d = 0.0;
            for (&wxy, &ry) in row.iter().zip(&r_out) {
                if wxy > 0.0 {
                    d += wxy * (wxy / ry).log2();
                }
            }
            score[x] = d - rate * durations[x];
            info += p[x] * d;
            mean_t += p[x] * durations[x];
        }
        let lower: f64 = p.iter().zip(&score).map(|(px, sx)| px * sx).sum();
        let upper = score.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        result = (lower, p.clone(), info, mean_t);
        if upper - lower <= tol {
            return Ok(result);
        }
        let mut z = 0.0;
        for (px, sx) in p.iter_mut().zip(&score) {
            *px *= (sx - upper).exp2();
            z += *px;
        }
        if z <= 0.0 || !z.is_finite() {
            return Err(InfoError::NoConvergence {
                iterations: max_iter,
                residual: z,
            });
        }
        for px in &mut p {
            *px /= z;
        }
    }
    // Accept the best lower bound found even if the bracket did not
    // fully close; Dinkelbach's outer loop tolerates approximate inner
    // solutions.
    Ok(result)
}

/// Capacity per unit time of a DMC whose input symbol `x` takes
/// `durations[x]` time units to send:
/// `C = max_p I(p; W) / E_p[T]`.
///
/// # Errors
///
/// Returns a validation error for malformed `w` or `durations`
/// (lengths must match, durations positive), and
/// [`InfoError::NoConvergence`] when the Dinkelbach iteration fails to
/// settle.
///
/// # Example
///
/// With equal durations the result is the plain capacity divided by
/// the symbol time:
///
/// ```
/// use nsc_info::timing::{capacity_per_unit_time, TimingOptions};
/// use nsc_info::entropy::binary_entropy;
/// let p = 0.1;
/// let w = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
/// let tc = capacity_per_unit_time(&w, &[2.0, 2.0], &TimingOptions::default())?;
/// assert!((tc.rate - (1.0 - binary_entropy(p)) / 2.0).abs() < 1e-8);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn capacity_per_unit_time(
    w: &[Vec<f64>],
    durations: &[f64],
    opts: &TimingOptions,
) -> Result<TimingCapacity, InfoError> {
    validate_transition_matrix(w)?;
    if durations.len() != w.len() {
        return Err(InfoError::DimensionMismatch {
            got: (durations.len(), 1),
            expected: (w.len(), 1),
        });
    }
    for &t in durations {
        if !t.is_finite() || t <= 0.0 {
            return Err(InfoError::InvalidArgument(format!(
                "symbol durations must be positive and finite, got {t}"
            )));
        }
    }
    let mut rate = 0.0_f64;
    for it in 0..opts.max_outer {
        let (_, p, info, mean_t) =
            tilted_blahut(w, durations, rate, opts.tolerance * 0.1, opts.max_inner)?;
        let new_rate = if mean_t > 0.0 { info / mean_t } else { 0.0 };
        if (new_rate - rate).abs() <= opts.tolerance {
            return Ok(TimingCapacity {
                rate: new_rate.max(0.0),
                input: Distribution::from_weights(&p)?,
                bits_per_use: info,
                mean_duration: mean_t,
            });
        }
        rate = new_rate;
        let _ = it;
    }
    Err(InfoError::NoConvergence {
        iterations: opts.max_outer,
        residual: rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::binary_entropy;

    #[test]
    fn noiseless_equal_durations_is_log_k_over_t() {
        let c = noiseless_timing_capacity(&[3.0, 3.0, 3.0, 3.0]).unwrap();
        assert!((c - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn noiseless_telegraph_golden_ratio() {
        let c = noiseless_timing_capacity(&[1.0, 2.0]).unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((c - phi.log2()).abs() < 1e-10);
    }

    #[test]
    fn noiseless_single_symbol_is_zero() {
        assert_eq!(noiseless_timing_capacity(&[5.0]).unwrap(), 0.0);
    }

    #[test]
    fn noiseless_rejects_bad_durations() {
        assert!(noiseless_timing_capacity(&[]).is_err());
        assert!(noiseless_timing_capacity(&[0.0, 1.0]).is_err());
        assert!(noiseless_timing_capacity(&[-1.0, 1.0]).is_err());
        assert!(noiseless_timing_capacity(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn noiseless_capacity_decreases_with_duration() {
        let fast = noiseless_timing_capacity(&[1.0, 1.0]).unwrap();
        let slow = noiseless_timing_capacity(&[2.0, 2.0]).unwrap();
        assert!(fast > slow);
        assert!((fast - 1.0).abs() < 1e-10);
        assert!((slow - 0.5).abs() < 1e-10);
    }

    #[test]
    fn per_unit_time_equal_durations_reduces_to_dmc() {
        let p = 0.07;
        let w = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
        let tc = capacity_per_unit_time(&w, &[1.0, 1.0], &TimingOptions::default()).unwrap();
        assert!((tc.rate - (1.0 - binary_entropy(p))).abs() < 1e-8);
        assert!((tc.mean_duration - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_unit_time_noiseless_matches_shannon_root() {
        // Noiseless 2-symbol channel with durations 1 and 2, solved
        // two independent ways.
        let w = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let tc = capacity_per_unit_time(&w, &[1.0, 2.0], &TimingOptions::default()).unwrap();
        let shannon = noiseless_timing_capacity(&[1.0, 2.0]).unwrap();
        assert!(
            (tc.rate - shannon).abs() < 1e-6,
            "dinkelbach={} shannon={shannon}",
            tc.rate
        );
        // The optimal input favors the short symbol.
        assert!(tc.input[0] > tc.input[1]);
    }

    #[test]
    fn per_unit_time_unequal_durations_tilt_input() {
        let p = 0.05;
        let w = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
        let tc = capacity_per_unit_time(&w, &[1.0, 10.0], &TimingOptions::default()).unwrap();
        // Short symbol should be heavily favored but not exclusively.
        assert!(tc.input[0] > 0.6 && tc.input[0] < 1.0, "{:?}", tc.input);
        // The rate must beat "use only the slow pair" and lose to the
        // per-use capacity at unit time.
        assert!(tc.rate < 1.0 - binary_entropy(p));
        assert!(tc.rate > 0.0);
    }

    #[test]
    fn per_unit_time_validates_inputs() {
        let w = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(capacity_per_unit_time(&w, &[1.0], &TimingOptions::default()).is_err());
        assert!(capacity_per_unit_time(&w, &[1.0, 0.0], &TimingOptions::default()).is_err());
        assert!(capacity_per_unit_time(&[], &[], &TimingOptions::default()).is_err());
    }
}
