//! Error type shared by all numerical routines in this crate.

use std::fmt;

/// Errors produced by the numerical routines in `nsc-info`.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoError {
    /// A value expected to be a probability was outside `[0, 1]` or
    /// not finite.
    InvalidProbability(f64),
    /// A probability vector did not sum to one (within tolerance) or
    /// contained invalid entries. Carries the offending sum.
    InvalidDistribution(f64),
    /// A matrix argument had inconsistent or empty dimensions.
    DimensionMismatch {
        /// What the caller supplied.
        got: (usize, usize),
        /// What the routine required.
        expected: (usize, usize),
    },
    /// An iterative routine failed to converge within its iteration
    /// budget. Carries the budget and the final residual.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual (routine-specific measure) at the last iterate.
        residual: f64,
    },
    /// A bracketing routine was given an interval whose endpoints do
    /// not bracket a root (same sign at both ends).
    NoBracket {
        /// Function value at the left endpoint.
        f_lo: f64,
        /// Function value at the right endpoint.
        f_hi: f64,
    },
    /// A routine received an argument outside its documented domain.
    InvalidArgument(String),
}

impl fmt::Display for InfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoError::InvalidProbability(p) => {
                write!(f, "value {p} is not a probability in [0, 1]")
            }
            InfoError::InvalidDistribution(sum) => {
                write!(f, "probability vector does not sum to 1 (sum = {sum})")
            }
            InfoError::DimensionMismatch { got, expected } => write!(
                f,
                "dimension mismatch: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            InfoError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:e})"
            ),
            InfoError::NoBracket { f_lo, f_hi } => write!(
                f,
                "interval does not bracket a root (f(lo) = {f_lo}, f(hi) = {f_hi})"
            ),
            InfoError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for InfoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            InfoError::InvalidProbability(1.5),
            InfoError::InvalidDistribution(0.9),
            InfoError::DimensionMismatch {
                got: (2, 3),
                expected: (3, 3),
            },
            InfoError::NoConvergence {
                iterations: 10,
                residual: 1e-3,
            },
            InfoError::NoBracket {
                f_lo: 1.0,
                f_hi: 2.0,
            },
            InfoError::InvalidArgument("negative length".to_owned()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InfoError>();
    }
}
