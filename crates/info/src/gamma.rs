//! Gamma-family special functions and chi-square tail probabilities.
//!
//! The measurement pipeline tests goodness of fit with chi-square
//! statistics; a real p-value needs the regularized incomplete gamma
//! function. Implemented from first principles: Lanczos
//! approximation for `ln Γ`, power series and continued fraction for
//! the regularized incomplete gamma (Numerical-Recipes style), and
//! the chi-square survival function on top.

use crate::error::InfoError;

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] for non-positive or
/// non-finite `x`.
///
/// # Example
///
/// ```
/// use nsc_info::gamma::ln_gamma;
/// // Γ(5) = 24.
/// assert!((ln_gamma(5.0)? - 24.0f64.ln()).abs() < 1e-12);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn ln_gamma(x: f64) -> Result<f64, InfoError> {
    if !x.is_finite() || x <= 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "ln_gamma domain is x > 0, got {x}"
        )));
    }
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx).
        let reflected = ln_gamma(1.0 - x)?;
        return Ok(std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().abs().ln()
            - reflected);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    Ok(0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln())
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)` for
/// `a > 0`, `x ≥ 0`.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] outside the domain and
/// [`InfoError::NoConvergence`] if neither expansion settles (does
/// not happen for sane magnitudes).
pub fn regularized_gamma_p(a: f64, x: f64) -> Result<f64, InfoError> {
    if !a.is_finite() || a <= 0.0 || !x.is_finite() || x < 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "regularized_gamma_p domain is a > 0, x >= 0; got a = {a}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    let ln_g = ln_gamma(a)?;
    let prefactor = (a * x.ln() - x - ln_g).exp();
    if x < a + 1.0 {
        // Series: P(a,x) = prefactor * Σ x^n Γ(a)/Γ(a+1+n).
        let mut term = 1.0 / a;
        let mut sum = term;
        for n in 1..500 {
            term *= x / (a + n as f64);
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                return Ok((prefactor * sum).clamp(0.0, 1.0));
            }
        }
        Err(InfoError::NoConvergence {
            iterations: 500,
            residual: term,
        })
    } else {
        // Continued fraction for Q(a,x) (modified Lentz).
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                return Ok((1.0 - prefactor * h).clamp(0.0, 1.0));
            }
        }
        Err(InfoError::NoConvergence {
            iterations: 500,
            residual: h,
        })
    }
}

/// Chi-square survival function (p-value): `P(X ≥ stat)` for a
/// chi-square variable with `dof` degrees of freedom.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] for `dof == 0` or negative
/// / non-finite `stat`.
///
/// # Example
///
/// The classic 5% critical value for 3 degrees of freedom:
///
/// ```
/// use nsc_info::gamma::chi_square_p_value;
/// let p = chi_square_p_value(7.815, 3)?;
/// assert!((p - 0.05).abs() < 1e-3);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn chi_square_p_value(stat: f64, dof: usize) -> Result<f64, InfoError> {
    if dof == 0 {
        return Err(InfoError::InvalidArgument(
            "chi-square needs at least one degree of freedom".to_owned(),
        ));
    }
    if !stat.is_finite() || stat < 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "chi-square statistic must be non-negative, got {stat}"
        )));
    }
    Ok(1.0 - regularized_gamma_p(dof as f64 / 2.0, stat / 2.0)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(1/2) = sqrt(pi).
        assert!(ln_gamma(1.0).unwrap().abs() < 1e-12);
        assert!(ln_gamma(2.0).unwrap().abs() < 1e-12);
        assert!((ln_gamma(5.0).unwrap() - 24.0f64.ln()).abs() < 1e-12);
        let half = ln_gamma(0.5).unwrap();
        assert!((half - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for &x in &[0.3, 1.7, 4.2, 11.5] {
            let lhs = ln_gamma(x + 1.0).unwrap();
            let rhs = ln_gamma(x).unwrap() + x.ln();
            assert!((lhs - rhs).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    fn ln_gamma_domain() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn incomplete_gamma_endpoints() {
        assert_eq!(regularized_gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!(regularized_gamma_p(2.0, 100.0).unwrap() > 0.999_999);
        assert!(regularized_gamma_p(0.0, 1.0).is_err());
        assert!(regularized_gamma_p(1.0, -1.0).is_err());
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = regularized_gamma_p(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn chi_square_critical_values() {
        // Textbook 5% critical values.
        for &(dof, crit) in &[(1usize, 3.841), (2, 5.991), (3, 7.815), (10, 18.307)] {
            let p = chi_square_p_value(crit, dof).unwrap();
            assert!((p - 0.05).abs() < 2e-3, "dof = {dof}, p = {p}");
        }
        // 1% critical value for dof = 5.
        let p = chi_square_p_value(15.086, 5).unwrap();
        assert!((p - 0.01).abs() < 5e-4, "p = {p}");
    }

    #[test]
    fn chi_square_edge_cases() {
        assert_eq!(chi_square_p_value(0.0, 3).unwrap(), 1.0);
        assert!(chi_square_p_value(1e6, 3).unwrap() < 1e-10);
        assert!(chi_square_p_value(-1.0, 3).is_err());
        assert!(chi_square_p_value(1.0, 0).is_err());
    }

    #[test]
    fn chi_square_monotone_in_stat() {
        let mut last = 1.0;
        for i in 0..20 {
            let p = chi_square_p_value(i as f64, 4).unwrap();
            assert!(p <= last + 1e-12);
            last = p;
        }
    }
}
