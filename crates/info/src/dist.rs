//! Validated probability values and finite probability distributions.

use crate::error::InfoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Tolerance used when validating that a distribution sums to one.
pub const SUM_TOLERANCE: f64 = 1e-9;

/// A probability: a finite `f64` guaranteed to lie in `[0, 1]`.
///
/// The deletion-insertion channel of the paper is parameterized by
/// four probabilities `P_d, P_i, P_t, P_s`; using this newtype at API
/// boundaries rules out negative rates and `NaN` poisoning statically
/// wherever possible and dynamically otherwise.
///
/// # Example
///
/// ```
/// use nsc_info::Probability;
///
/// let p = Probability::new(0.25)?;
/// assert_eq!(p.value(), 0.25);
/// assert_eq!(p.complement().value(), 0.75);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// The probability zero.
    pub const ZERO: Probability = Probability(0.0);
    /// The probability one.
    pub const ONE: Probability = Probability(1.0);
    /// The probability one half.
    pub const HALF: Probability = Probability(0.5);

    /// Creates a validated probability.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidProbability`] when `value` is not
    /// finite or lies outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, InfoError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(InfoError::InvalidProbability(value))
        }
    }

    /// Creates a probability, clamping out-of-range finite values into
    /// `[0, 1]`. Useful for results of floating-point arithmetic that
    /// may stray slightly outside the interval.
    ///
    /// # Panics
    ///
    /// Panics if `value` is `NaN`.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "cannot clamp NaN into a probability");
        Probability(value.clamp(0.0, 1.0))
    }

    /// Returns the inner value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `1 - p`.
    pub fn complement(self) -> Self {
        Probability(1.0 - self.0)
    }

    /// Multiplies two probabilities (probability of independent
    /// conjunction).
    pub fn and(self, other: Self) -> Self {
        Probability(self.0 * other.0)
    }

    /// Probability of the disjunction of two *independent* events:
    /// `p + q - pq`.
    pub fn or_independent(self, other: Self) -> Self {
        Probability::clamped(self.0 + other.0 - self.0 * other.0)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = InfoError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

/// A finite probability distribution: non-negative entries summing to
/// one (within [`SUM_TOLERANCE`]).
///
/// # Example
///
/// ```
/// use nsc_info::Distribution;
///
/// let d = Distribution::new(vec![0.5, 0.25, 0.25])?;
/// assert_eq!(d.len(), 3);
/// assert!((d.entropy() - 1.5).abs() < 1e-12);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<f64>", into = "Vec<f64>")]
pub struct Distribution(Vec<f64>);

impl Distribution {
    /// Creates a validated distribution from raw probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidProbability`] if any entry is
    /// negative or non-finite, and [`InfoError::InvalidDistribution`]
    /// if the entries do not sum to one within [`SUM_TOLERANCE`], or
    /// if `probs` is empty.
    pub fn new(probs: Vec<f64>) -> Result<Self, InfoError> {
        if probs.is_empty() {
            return Err(InfoError::InvalidDistribution(0.0));
        }
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(InfoError::InvalidProbability(p));
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(InfoError::InvalidDistribution(sum));
        }
        Ok(Distribution(probs))
    }

    /// Creates a distribution by normalizing non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidProbability`] for negative or
    /// non-finite weights, and [`InfoError::InvalidDistribution`] when
    /// the weights are empty or all zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, InfoError> {
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(InfoError::InvalidProbability(w));
            }
        }
        let sum: f64 = weights.iter().sum();
        if weights.is_empty() || sum <= 0.0 {
            return Err(InfoError::InvalidDistribution(sum));
        }
        Ok(Distribution(weights.iter().map(|w| w / sum).collect()))
    }

    /// The uniform distribution on `n` outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, InfoError> {
        if n == 0 {
            return Err(InfoError::InvalidArgument(
                "uniform distribution needs at least one outcome".to_owned(),
            ));
        }
        Ok(Distribution(vec![1.0 / n as f64; n]))
    }

    /// The point mass on outcome `i` among `n` outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when `i >= n`.
    pub fn point_mass(i: usize, n: usize) -> Result<Self, InfoError> {
        if i >= n {
            return Err(InfoError::InvalidArgument(format!(
                "point mass index {i} out of range for {n} outcomes"
            )));
        }
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        Ok(Distribution(v))
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the distribution has no outcomes (never true
    /// for a validated distribution; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the probabilities as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Consume the distribution, returning the probability vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Iterate over the probabilities.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Shannon entropy in bits.
    pub fn entropy(&self) -> f64 {
        crate::entropy::entropy(&self.0)
    }

    /// Expected value of `f` over the distribution.
    pub fn expect<F: Fn(usize) -> f64>(&self, f: F) -> f64 {
        self.0.iter().enumerate().map(|(i, p)| p * f(i)).sum()
    }

    /// Total-variation distance to another distribution of the same
    /// support size.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::DimensionMismatch`] when supports differ.
    pub fn total_variation(&self, other: &Distribution) -> Result<f64, InfoError> {
        if self.len() != other.len() {
            return Err(InfoError::DimensionMismatch {
                got: (other.len(), 1),
                expected: (self.len(), 1),
            });
        }
        Ok(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0)
    }

    /// Samples an outcome given a uniform variate `u` in `[0, 1)`.
    /// The caller supplies the randomness so that simulations remain
    /// reproducible.
    pub fn sample_with(&self, u: f64) -> usize {
        let mut acc = 0.0;
        for (i, &p) in self.0.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.0.len() - 1
    }
}

impl Index<usize> for Distribution {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.0[index]
    }
}

impl TryFrom<Vec<f64>> for Distribution {
    type Error = InfoError;
    fn try_from(v: Vec<f64>) -> Result<Self, Self::Error> {
        Distribution::new(v)
    }
}

impl From<Distribution> for Vec<f64> {
    fn from(d: Distribution) -> Vec<f64> {
        d.0
    }
}

impl<'a> IntoIterator for &'a Distribution {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.01).is_err());
        assert!(Probability::new(1.01).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn probability_algebra() {
        let p = Probability::new(0.3).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert!((p.complement().value() - 0.7).abs() < 1e-15);
        assert!((p.and(q).value() - 0.15).abs() < 1e-15);
        assert!((p.or_independent(q).value() - 0.65).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn clamped_clamps() {
        assert_eq!(Probability::clamped(1.2).value(), 1.0);
        assert_eq!(Probability::clamped(-0.2).value(), 0.0);
        assert_eq!(Probability::clamped(0.4).value(), 0.4);
    }

    #[test]
    fn distribution_validation() {
        assert!(Distribution::new(vec![0.5, 0.5]).is_ok());
        assert!(Distribution::new(vec![0.5, 0.6]).is_err());
        assert!(Distribution::new(vec![-0.1, 1.1]).is_err());
        assert!(Distribution::new(vec![]).is_err());
    }

    #[test]
    fn from_weights_normalizes() {
        let d = Distribution::from_weights(&[2.0, 2.0, 4.0]).unwrap();
        assert_eq!(d.as_slice(), &[0.25, 0.25, 0.5]);
        assert!(Distribution::from_weights(&[0.0, 0.0]).is_err());
        assert!(Distribution::from_weights(&[]).is_err());
        assert!(Distribution::from_weights(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn uniform_and_point_mass() {
        let u = Distribution::uniform(4).unwrap();
        assert!((u.entropy() - 2.0).abs() < 1e-12);
        let p = Distribution::point_mass(2, 4).unwrap();
        assert_eq!(p.entropy(), 0.0);
        assert_eq!(p[2], 1.0);
        assert!(Distribution::uniform(0).is_err());
        assert!(Distribution::point_mass(4, 4).is_err());
    }

    #[test]
    fn expectation() {
        let d = Distribution::new(vec![0.5, 0.5]).unwrap();
        assert!((d.expect(|i| i as f64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_variation_distance() {
        let a = Distribution::uniform(2).unwrap();
        let b = Distribution::point_mass(0, 2).unwrap();
        assert!((a.total_variation(&b).unwrap() - 0.5).abs() < 1e-12);
        let c = Distribution::uniform(3).unwrap();
        assert!(a.total_variation(&c).is_err());
    }

    #[test]
    fn sampling_covers_support() {
        let d = Distribution::new(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(d.sample_with(0.0), 0);
        assert_eq!(d.sample_with(0.3), 1);
        assert_eq!(d.sample_with(0.8), 2);
        assert_eq!(d.sample_with(0.999_999_999), 2);
    }
}
