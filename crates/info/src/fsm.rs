//! Millen's finite-state noiseless covert-channel capacity.
//!
//! Millen (1989) modeled an important class of covert channels as
//! noiseless finite-state machines whose transitions take non-uniform
//! times, and computed their capacity with Shannon's discrete
//! noiseless channel theory: the capacity (bits per unit time) is the
//! value `C` at which the spectral radius of the connection matrix
//! `D(C)`, with entries `D(C)_{ij} = Σ_{edges i→j} 2^{-C·t(edge)}`,
//! equals one. For unit transition times this reduces to `log2 ρ(A)`
//! of the plain adjacency-count matrix `A`.
//!
//! This is one of the "traditional" estimators the paper's §4.3
//! corrects by the factor `(1 − P_d)`.

use crate::error::InfoError;
use crate::matrix::Matrix;
use crate::roots::{bisect, RootOptions};
use serde::{Deserialize, Serialize};

/// A labelled, timed transition of a noiseless finite-state channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsmEdge {
    /// Source state.
    pub from: usize,
    /// Destination state.
    pub to: usize,
    /// Time taken by the transition (must be positive).
    pub duration: f64,
    /// Human-readable symbol label (for reports only).
    pub label: String,
}

/// A noiseless finite-state channel in Millen's sense.
///
/// # Example
///
/// A single state with two unit-time self-loops transmits one bit per
/// time unit:
///
/// ```
/// use nsc_info::fsm::{FsmChannel, FsmEdge};
///
/// let fsm = FsmChannel::new(1, vec![
///     FsmEdge { from: 0, to: 0, duration: 1.0, label: "a".into() },
///     FsmEdge { from: 0, to: 0, duration: 1.0, label: "b".into() },
/// ])?;
/// assert!((fsm.capacity()? - 1.0).abs() < 1e-9);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsmChannel {
    states: usize,
    edges: Vec<FsmEdge>,
}

impl FsmChannel {
    /// Creates a finite-state channel with `states` states and the
    /// given transitions.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when `states == 0`, a
    /// transition references a state out of range, has a non-positive
    /// or non-finite duration, or `edges` is empty.
    pub fn new(states: usize, edges: Vec<FsmEdge>) -> Result<Self, InfoError> {
        if states == 0 {
            return Err(InfoError::InvalidArgument(
                "finite-state channel needs at least one state".to_owned(),
            ));
        }
        if edges.is_empty() {
            return Err(InfoError::InvalidArgument(
                "finite-state channel needs at least one edge".to_owned(),
            ));
        }
        for e in &edges {
            if e.from >= states || e.to >= states {
                return Err(InfoError::InvalidArgument(format!(
                    "edge {} -> {} references a state outside 0..{states}",
                    e.from, e.to
                )));
            }
            if !e.duration.is_finite() || e.duration <= 0.0 {
                return Err(InfoError::InvalidArgument(format!(
                    "edge duration must be positive, got {}",
                    e.duration
                )));
            }
        }
        Ok(FsmChannel { states, edges })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Borrow the transitions.
    pub fn edges(&self) -> &[FsmEdge] {
        &self.edges
    }

    /// The connection matrix `D(c)` with entries
    /// `Σ_{edges i→j} 2^{-c·t}`.
    fn connection_matrix(&self, c: f64) -> Matrix {
        let mut m = Matrix::zeros(self.states, self.states).expect("states > 0");
        for e in &self.edges {
            m[(e.from, e.to)] += (-c * e.duration).exp2();
        }
        m
    }

    /// Spectral radius of `D(c)`.
    fn rho(&self, c: f64) -> Result<f64, InfoError> {
        self.connection_matrix(c).spectral_radius(1e-13, 200_000)
    }

    /// Capacity in bits per unit time: the `C ≥ 0` at which
    /// `ρ(D(C)) = 1`, or zero when even `ρ(D(0)) ≤ 1` (the channel
    /// cannot sustain more than one message).
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::NoConvergence`] if the spectral radius or
    /// the bisection fail to converge.
    pub fn capacity(&self) -> Result<f64, InfoError> {
        let rho0 = self.rho(0.0)?;
        if rho0 <= 1.0 + 1e-12 {
            return Ok(0.0);
        }
        // ρ(D(c)) is continuous and strictly decreasing in c (all
        // durations positive), so bracket and bisect on ρ(c) − 1.
        let mut hi = 1.0;
        while self.rho(hi)? > 1.0 {
            hi *= 2.0;
            if hi > 1e6 {
                return Err(InfoError::NoConvergence {
                    iterations: 0,
                    residual: hi,
                });
            }
        }
        let opts = RootOptions {
            x_tol: 1e-11,
            f_tol: 1e-11,
            max_iter: 400,
        };
        bisect(
            |c| self.rho(c).map(|r| r - 1.0).unwrap_or(f64::NAN),
            0.0,
            hi,
            &opts,
        )
    }

    /// Capacity for the special case where every transition takes unit
    /// time: `log2 ρ(A)` of the adjacency-count matrix. Exposed
    /// separately because it is the formula usually quoted for
    /// Millen's model and serves as a cross-check of [`Self::capacity`].
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::NoConvergence`] if the spectral radius
    /// computation fails.
    pub fn unit_time_capacity(&self) -> Result<f64, InfoError> {
        let mut a = Matrix::zeros(self.states, self.states).expect("states > 0");
        for e in &self.edges {
            a[(e.from, e.to)] += 1.0;
        }
        let rho = a.spectral_radius(1e-13, 200_000)?;
        Ok(if rho <= 1.0 { 0.0 } else { rho.log2() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::noiseless_timing_capacity;

    fn edge(from: usize, to: usize, duration: f64) -> FsmEdge {
        FsmEdge {
            from,
            to,
            duration,
            label: format!("{from}->{to}@{duration}"),
        }
    }

    #[test]
    fn validation() {
        assert!(FsmChannel::new(0, vec![edge(0, 0, 1.0)]).is_err());
        assert!(FsmChannel::new(1, vec![]).is_err());
        assert!(FsmChannel::new(1, vec![edge(0, 1, 1.0)]).is_err());
        assert!(FsmChannel::new(1, vec![edge(0, 0, 0.0)]).is_err());
        assert!(FsmChannel::new(1, vec![edge(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn two_unit_self_loops_give_one_bit() {
        let fsm = FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 1.0)]).unwrap();
        assert!((fsm.capacity().unwrap() - 1.0).abs() < 1e-8);
        assert!((fsm.unit_time_capacity().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_edge_has_zero_capacity() {
        let fsm = FsmChannel::new(1, vec![edge(0, 0, 1.0)]).unwrap();
        assert_eq!(fsm.capacity().unwrap(), 0.0);
        assert_eq!(fsm.unit_time_capacity().unwrap(), 0.0);
    }

    #[test]
    fn single_state_matches_shannon_root() {
        // Single state with self-loop durations {1, 2, 3}: capacity
        // must agree with the characteristic-equation solver.
        let fsm =
            FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 2.0), edge(0, 0, 3.0)]).unwrap();
        let c_fsm = fsm.capacity().unwrap();
        let c_shannon = noiseless_timing_capacity(&[1.0, 2.0, 3.0]).unwrap();
        assert!(
            (c_fsm - c_shannon).abs() < 1e-7,
            "fsm={c_fsm} shannon={c_shannon}"
        );
    }

    #[test]
    fn telegraph_durations_give_golden_ratio() {
        let fsm = FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 2.0)]).unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((fsm.capacity().unwrap() - phi.log2()).abs() < 1e-7);
    }

    #[test]
    fn two_state_alternating_machine() {
        // Two states, two parallel unit edges each way: per unit time
        // the machine emits one of two choices every step.
        let fsm = FsmChannel::new(
            2,
            vec![
                edge(0, 1, 1.0),
                edge(0, 1, 1.0),
                edge(1, 0, 1.0),
                edge(1, 0, 1.0),
            ],
        )
        .unwrap();
        assert!((fsm.capacity().unwrap() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn longer_durations_reduce_capacity() {
        let fast = FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 1.0)]).unwrap();
        let slow = FsmChannel::new(1, vec![edge(0, 0, 2.0), edge(0, 0, 2.0)]).unwrap();
        assert!(fast.capacity().unwrap() > slow.capacity().unwrap());
        assert!((slow.capacity().unwrap() - 0.5).abs() < 1e-7);
    }

    #[test]
    fn unit_time_capacity_agrees_with_general_solver() {
        let fsm =
            FsmChannel::new(2, vec![edge(0, 0, 1.0), edge(0, 1, 1.0), edge(1, 0, 1.0)]).unwrap();
        let general = fsm.capacity().unwrap();
        let unit = fsm.unit_time_capacity().unwrap();
        // Fibonacci graph: capacity log2(phi).
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((unit - phi.log2()).abs() < 1e-9);
        assert!((general - unit).abs() < 1e-6);
    }
}
