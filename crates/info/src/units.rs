//! Newtypes distinguishing the two rate units used in the paper.
//!
//! Capacity results in Wang & Lee are stated in two incompatible
//! units. Theorems 1–5 give capacities in **bits per channel use**
//! (here, [`BitsPerSymbol`]), while the practical estimation recipe of
//! §4.3 converts a *physical* information rate measured in **bits per
//! unit time** (here, [`BitsPerTick`], since our substrates are
//! discrete-time simulators). Mixing the two silently is a classic
//! estimation bug; the newtypes force an explicit conversion through a
//! symbol duration.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

macro_rules! rate_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the underlying `f64` value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of two rates.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two rates.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the rate is finite and non-negative —
            /// the sanity requirement for any capacity value.
            pub fn is_valid_capacity(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.6} ", $unit), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

rate_newtype!(
    /// An information rate in bits per channel use (per transmitted
    /// symbol), the unit of Theorems 1–5.
    BitsPerSymbol,
    "bits/symbol"
);

rate_newtype!(
    /// An information rate in bits per simulator tick — the physical
    /// rate of §4.3, where wasted waiting time counts against the
    /// channel.
    BitsPerTick,
    "bits/tick"
);

impl BitsPerSymbol {
    /// Converts a per-symbol rate to a physical per-tick rate, given
    /// the mean number of ticks consumed per channel use.
    ///
    /// # Errors
    ///
    /// Returns `None` when `ticks_per_use` is not strictly positive or
    /// not finite.
    pub fn per_tick(self, ticks_per_use: f64) -> Option<BitsPerTick> {
        if ticks_per_use.is_finite() && ticks_per_use > 0.0 {
            Some(BitsPerTick(self.0 / ticks_per_use))
        } else {
            None
        }
    }
}

impl BitsPerTick {
    /// Converts a physical per-tick rate back to a per-symbol rate,
    /// given the mean number of ticks consumed per channel use.
    ///
    /// # Errors
    ///
    /// Returns `None` when `ticks_per_use` is not strictly positive or
    /// not finite.
    pub fn per_symbol(self, ticks_per_use: f64) -> Option<BitsPerSymbol> {
        if ticks_per_use.is_finite() && ticks_per_use > 0.0 {
            Some(BitsPerSymbol(self.0 * ticks_per_use))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = BitsPerSymbol(1.5);
        let b = BitsPerSymbol(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn unit_conversion_round_trips() {
        let per_symbol = BitsPerSymbol(2.0);
        let per_tick = per_symbol.per_tick(4.0).unwrap();
        assert_eq!(per_tick.value(), 0.5);
        let back = per_tick.per_symbol(4.0).unwrap();
        assert!((back.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conversion_rejects_bad_durations() {
        assert!(BitsPerSymbol(1.0).per_tick(0.0).is_none());
        assert!(BitsPerSymbol(1.0).per_tick(-1.0).is_none());
        assert!(BitsPerSymbol(1.0).per_tick(f64::NAN).is_none());
        assert!(BitsPerTick(1.0).per_symbol(f64::INFINITY).is_none());
    }

    #[test]
    fn validity_check() {
        assert!(BitsPerSymbol(0.0).is_valid_capacity());
        assert!(!BitsPerSymbol(-0.1).is_valid_capacity());
        assert!(!BitsPerSymbol(f64::NAN).is_valid_capacity());
    }

    #[test]
    fn display_includes_units() {
        assert!(BitsPerSymbol(1.0).to_string().contains("bits/symbol"));
        assert!(BitsPerTick(1.0).to_string().contains("bits/tick"));
    }

    #[test]
    fn sum_of_rates() {
        let total: BitsPerTick = [BitsPerTick(0.25); 4].into_iter().sum();
        assert!((total.value() - 1.0).abs() < 1e-12);
    }
}
