//! Entropy, divergence, and mutual-information functionals.
//!
//! All quantities are in **bits** (base-2 logarithms), matching the
//! paper's equation (5): `H(p) = -p·log2(p) - (1-p)·log2(1-p)`.
//!
//! The convention `0·log2(0) = 0` is applied throughout, so all
//! functions are total on valid probability vectors.

use crate::error::InfoError;

/// `x · log2(x)` with the continuous extension `0 · log2(0) = 0`.
#[inline]
pub fn xlog2x(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

/// The binary entropy function `H(p)` of the paper's equation (5), in
/// bits.
///
/// # Example
///
/// ```
/// use nsc_info::entropy::binary_entropy;
/// assert_eq!(binary_entropy(0.5), 1.0);
/// assert_eq!(binary_entropy(0.0), 0.0);
/// assert_eq!(binary_entropy(1.0), 0.0);
/// ```
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "binary_entropy domain is [0,1]");
    -xlog2x(p) - xlog2x(1.0 - p)
}

/// Shannon entropy of a probability vector, in bits. Entries are
/// assumed non-negative; normalization is the caller's concern (use
/// [`crate::Distribution`] for validated inputs).
pub fn entropy(probs: &[f64]) -> f64 {
    -probs.iter().copied().map(xlog2x).sum::<f64>()
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits.
///
/// # Errors
///
/// Returns [`InfoError::DimensionMismatch`] when the vectors differ in
/// length, and [`InfoError::InvalidArgument`] when `p` places mass
/// where `q` does not (the divergence would be infinite).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, InfoError> {
    if p.len() != q.len() {
        return Err(InfoError::DimensionMismatch {
            got: (q.len(), 1),
            expected: (p.len(), 1),
        });
    }
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return Err(InfoError::InvalidArgument(
                    "KL divergence infinite: p has mass where q does not".to_owned(),
                ));
            }
            d += pi * (pi / qi).log2();
        }
    }
    Ok(d)
}

/// Entropy of a joint distribution given as a matrix `joint[x][y]`,
/// in bits.
pub fn joint_entropy(joint: &[Vec<f64>]) -> f64 {
    -joint
        .iter()
        .flat_map(|row| row.iter().copied())
        .map(xlog2x)
        .sum::<f64>()
}

/// Marginal over the first index of a joint matrix `joint[x][y]`.
pub fn marginal_x(joint: &[Vec<f64>]) -> Vec<f64> {
    joint.iter().map(|row| row.iter().sum()).collect()
}

/// Marginal over the second index of a joint matrix `joint[x][y]`.
pub fn marginal_y(joint: &[Vec<f64>]) -> Vec<f64> {
    if joint.is_empty() {
        return Vec::new();
    }
    let cols = joint[0].len();
    let mut m = vec![0.0; cols];
    for row in joint {
        for (j, &v) in row.iter().enumerate() {
            m[j] += v;
        }
    }
    m
}

/// Conditional entropy `H(Y | X)` from a joint matrix `joint[x][y]`,
/// in bits.
pub fn conditional_entropy_y_given_x(joint: &[Vec<f64>]) -> f64 {
    joint_entropy(joint) - entropy(&marginal_x(joint))
}

/// Mutual information `I(X; Y)` from a joint matrix `joint[x][y]`, in
/// bits. Computed as `H(X) + H(Y) - H(X, Y)`.
pub fn mutual_information_joint(joint: &[Vec<f64>]) -> f64 {
    let hx = entropy(&marginal_x(joint));
    let hy = entropy(&marginal_y(joint));
    // Guard against tiny negative values from floating-point
    // cancellation; mutual information is non-negative.
    (hx + hy - joint_entropy(joint)).max(0.0)
}

/// Mutual information `I(X; Y)` of an input distribution `px` pushed
/// through a channel transition matrix `w[x][y] = P(Y = y | X = x)`,
/// in bits.
///
/// # Errors
///
/// Returns [`InfoError::DimensionMismatch`] when `px` and `w` disagree
/// on the input alphabet size or `w` is ragged.
pub fn mutual_information_channel(px: &[f64], w: &[Vec<f64>]) -> Result<f64, InfoError> {
    if px.len() != w.len() || w.is_empty() {
        return Err(InfoError::DimensionMismatch {
            got: (w.len(), 0),
            expected: (px.len(), 0),
        });
    }
    let cols = w[0].len();
    let mut joint = Vec::with_capacity(px.len());
    for (&p, row) in px.iter().zip(w) {
        if row.len() != cols {
            return Err(InfoError::DimensionMismatch {
                got: (1, row.len()),
                expected: (1, cols),
            });
        }
        joint.push(row.iter().map(|&wxy| p * wxy).collect::<Vec<f64>>());
    }
    Ok(mutual_information_joint(&joint))
}

/// Inverse of the binary entropy function on `[0, 1/2]`: returns the
/// unique `p ∈ [0, 1/2]` with `H(p) = h`.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when `h` is outside
/// `[0, 1]`.
pub fn binary_entropy_inverse(h: f64) -> Result<f64, InfoError> {
    if !(0.0..=1.0).contains(&h) || !h.is_finite() {
        return Err(InfoError::InvalidArgument(format!(
            "binary entropy inverse domain is [0,1], got {h}"
        )));
    }
    // H is strictly increasing on [0, 1/2]; bisect.
    let (mut lo, mut hi) = (0.0_f64, 0.5_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if binary_entropy(mid) < h {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn binary_entropy_known_values() {
        assert!((binary_entropy(0.5) - 1.0).abs() < EPS);
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        // H(0.11) ≈ 0.499916 — the classic "BSC capacity one half" point.
        assert!((binary_entropy(0.11) - 0.499_915_958_164_528_46).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_symmetry() {
        for &p in &[0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < EPS);
        }
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let u = vec![0.125; 8];
        assert!((entropy(&u) - 3.0).abs() < EPS);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.5, 0.5];
        let q = [0.25, 0.75];
        let d = kl_divergence(&p, &q).unwrap();
        assert!(d > 0.0);
        assert_eq!(kl_divergence(&p, &p).unwrap(), 0.0);
        assert!(kl_divergence(&p, &[1.0, 0.0]).is_err());
        assert!(kl_divergence(&p, &[1.0]).is_err());
    }

    #[test]
    fn mutual_information_of_identity_channel() {
        let w = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let i = mutual_information_channel(&[0.5, 0.5], &w).unwrap();
        assert!((i - 1.0).abs() < EPS);
    }

    #[test]
    fn mutual_information_of_useless_channel_is_zero() {
        let w = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        let i = mutual_information_channel(&[0.3, 0.7], &w).unwrap();
        assert!(i.abs() < EPS);
    }

    #[test]
    fn mutual_information_of_bsc_closed_form() {
        let p = 0.2;
        let w = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
        let i = mutual_information_channel(&[0.5, 0.5], &w).unwrap();
        assert!((i - (1.0 - binary_entropy(p))).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_rejects_ragged_input() {
        let w = vec![vec![1.0, 0.0], vec![1.0]];
        assert!(mutual_information_channel(&[0.5, 0.5], &w).is_err());
        assert!(mutual_information_channel(&[1.0], &w).is_err());
    }

    #[test]
    fn joint_marginals_and_conditional() {
        // X uniform bit, Y = X with prob 1 (deterministic).
        let joint = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        assert!((entropy(&marginal_x(&joint)) - 1.0).abs() < EPS);
        assert!((entropy(&marginal_y(&joint)) - 1.0).abs() < EPS);
        assert!(conditional_entropy_y_given_x(&joint).abs() < EPS);
        assert!((mutual_information_joint(&joint) - 1.0).abs() < EPS);
    }

    #[test]
    fn binary_entropy_inverse_round_trip() {
        for &p in &[0.01, 0.1, 0.25, 0.49] {
            let h = binary_entropy(p);
            let back = binary_entropy_inverse(h).unwrap();
            assert!((back - p).abs() < 1e-9, "p={p} back={back}");
        }
        assert!(binary_entropy_inverse(-0.1).is_err());
        assert!(binary_entropy_inverse(1.1).is_err());
    }

    #[test]
    fn marginal_y_of_empty() {
        assert!(marginal_y(&[]).is_empty());
    }
}
