//! Scalar root finding: bisection and Brent's method.
//!
//! Used by the Shannon/Millen finite-state capacity computation (root
//! of a characteristic equation in the rate) and the capacity-per-
//! unit-time solver (Dinkelbach iterations on a fractional objective).

use crate::error::InfoError;

/// Options controlling an iterative root finder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the function value.
    pub f_tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`InfoError::InvalidArgument`] when `lo >= hi` or an endpoint is
///   not finite.
/// * [`InfoError::NoBracket`] when `f(lo)` and `f(hi)` have the same
///   (nonzero) sign.
/// * [`InfoError::NoConvergence`] when the tolerance is not met within
///   the iteration budget.
///
/// # Example
///
/// ```
/// use nsc_info::roots::{bisect, RootOptions};
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default())?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    opts: &RootOptions,
) -> Result<f64, InfoError> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(InfoError::InvalidArgument(format!(
            "bad bracket [{lo}, {hi}]"
        )));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(InfoError::NoBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..opts.max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.abs() <= opts.f_tol || (b - a) * 0.5 <= opts.x_tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(InfoError::NoConvergence {
        iterations: opts.max_iter,
        residual: b - a,
    })
}

/// Finds a root of `f` in `[lo, hi]` using Brent's method (inverse
/// quadratic interpolation with bisection fallback). Typically an
/// order of magnitude fewer function evaluations than [`bisect`].
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    opts: &RootOptions,
) -> Result<f64, InfoError> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(InfoError::InvalidArgument(format!(
            "bad bracket [{lo}, {hi}]"
        )));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(InfoError::NoBracket { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..opts.max_iter {
        if fb.abs() <= opts.f_tol {
            return Ok(b);
        }
        if (b - a).abs() <= opts.x_tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let between = {
            let lo_b = (3.0 * a + b) / 4.0;
            let (x, y) = if lo_b < b { (lo_b, b) } else { (b, lo_b) };
            s > x && s < y
        };
        let cond = !between
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < opts.x_tol)
            || (!mflag && (c - d).abs() < opts.x_tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(InfoError::NoConvergence {
        iterations: opts.max_iter,
        residual: (b - a).abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default()).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(r, 0.0);
        let r = bisect(|x| x - 1.0, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default()),
            Err(InfoError::NoBracket { .. })
        ));
        assert!(bisect(|x| x, 1.0, 0.0, &RootOptions::default()).is_err());
        assert!(bisect(|x| x, f64::NAN, 1.0, &RootOptions::default()).is_err());
    }

    #[test]
    fn brent_sqrt2() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default()).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_transcendental() {
        // cos(x) = x has root ~ 0.7390851332.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn brent_matches_bisect_on_steep_function() {
        let f = |x: f64| (x - 0.123).powi(3);
        let opts = RootOptions {
            f_tol: 1e-15,
            ..RootOptions::default()
        };
        let rb = bisect(f, 0.0, 1.0, &opts).unwrap();
        let rr = brent(f, 0.0, 1.0, &opts).unwrap();
        assert!((rb - 0.123).abs() < 1e-4);
        assert!((rr - 0.123).abs() < 1e-4);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default()),
            Err(InfoError::NoBracket { .. })
        ));
    }
}
