//! Estimation statistics for measured channel parameters.
//!
//! The paper's practical recipe (§4.3) requires *measuring* the
//! deletion probability `P_d` of a real system. Measurements are
//! finite samples, so the estimator pipeline reports confidence
//! intervals (Wilson score) and the experiment harness checks
//! empirical event frequencies against configured ones with a
//! chi-square statistic.

use crate::error::InfoError;
use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use nsc_info::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert_eq!(acc.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero when fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (zero when fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_std() / (self.n as f64).sqrt()
        }
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionInterval {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
}

impl ProportionInterval {
    /// Returns `true` when `p` lies inside the interval (inclusive).
    pub fn contains(&self, p: f64) -> bool {
        (self.lower..=self.upper).contains(&p)
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Wilson score interval for a binomial proportion at normal quantile
/// `z` (use `z = 1.96` for 95%).
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when `trials == 0`,
/// `successes > trials`, or `z` is not positive and finite.
pub fn wilson_interval(
    successes: u64,
    trials: u64,
    z: f64,
) -> Result<ProportionInterval, InfoError> {
    if trials == 0 {
        return Err(InfoError::InvalidArgument(
            "wilson interval needs at least one trial".to_owned(),
        ));
    }
    if successes > trials {
        return Err(InfoError::InvalidArgument(format!(
            "successes {successes} exceed trials {trials}"
        )));
    }
    if !z.is_finite() || z <= 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "normal quantile must be positive, got {z}"
        )));
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    Ok(ProportionInterval {
        estimate: p,
        lower: (center - half).max(0.0),
        upper: (center + half).min(1.0),
    })
}

/// Pearson chi-square statistic for observed counts against expected
/// probabilities. Categories with zero expected probability must have
/// zero observed count.
///
/// # Errors
///
/// Returns [`InfoError::DimensionMismatch`] when lengths differ and
/// [`InfoError::InvalidArgument`] when an impossible category was
/// observed or no observations were supplied.
pub fn chi_square_statistic(observed: &[u64], expected_probs: &[f64]) -> Result<f64, InfoError> {
    if observed.len() != expected_probs.len() {
        return Err(InfoError::DimensionMismatch {
            got: (observed.len(), 1),
            expected: (expected_probs.len(), 1),
        });
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return Err(InfoError::InvalidArgument(
            "chi-square needs at least one observation".to_owned(),
        ));
    }
    let mut stat = 0.0;
    for (&obs, &p) in observed.iter().zip(expected_probs) {
        let expect = total as f64 * p;
        if expect == 0.0 {
            if obs > 0 {
                return Err(InfoError::InvalidArgument(
                    "observed an event with expected probability zero".to_owned(),
                ));
            }
            continue;
        }
        let d = obs as f64 - expect;
        stat += d * d / expect;
    }
    Ok(stat)
}

/// A conservative chi-square acceptance threshold: mean + `k` standard
/// deviations of the chi-square distribution with `dof` degrees of
/// freedom (`mean = dof`, `variance = 2·dof`). Good enough for the
/// harness's sanity checks without a full inverse-CDF.
pub fn chi_square_threshold(dof: usize, k: f64) -> f64 {
    let d = dof as f64;
    d + k * (2.0 * d).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_matches_textbook_example() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.population_variance(), 4.0);
        assert!((acc.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(acc.standard_error() > 0.0);
    }

    #[test]
    fn accumulator_empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        let one: Accumulator = [3.0].into_iter().collect();
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.sample_variance(), 0.0);
    }

    #[test]
    fn wilson_interval_contains_truth_for_exact_proportion() {
        let iv = wilson_interval(500, 1000, 1.96).unwrap();
        assert!(iv.contains(0.5));
        assert!((iv.estimate - 0.5).abs() < 1e-12);
        assert!(iv.width() < 0.07);
    }

    #[test]
    fn wilson_interval_is_clamped_to_unit_range() {
        let iv0 = wilson_interval(0, 10, 1.96).unwrap();
        assert_eq!(iv0.lower, 0.0);
        assert!(iv0.upper > 0.0);
        let iv1 = wilson_interval(10, 10, 1.96).unwrap();
        assert_eq!(iv1.upper, 1.0);
        assert!(iv1.lower < 1.0);
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let small = wilson_interval(5, 10, 1.96).unwrap();
        let large = wilson_interval(5_000, 10_000, 1.96).unwrap();
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson_interval_rejects_bad_input() {
        assert!(wilson_interval(1, 0, 1.96).is_err());
        assert!(wilson_interval(11, 10, 1.96).is_err());
        assert!(wilson_interval(5, 10, 0.0).is_err());
        assert!(wilson_interval(5, 10, f64::NAN).is_err());
    }

    #[test]
    fn chi_square_zero_for_perfect_fit() {
        let stat = chi_square_statistic(&[25, 25, 25, 25], &[0.25; 4]).unwrap();
        assert_eq!(stat, 0.0);
    }

    #[test]
    fn chi_square_grows_with_misfit() {
        let ok = chi_square_statistic(&[26, 24, 25, 25], &[0.25; 4]).unwrap();
        let bad = chi_square_statistic(&[70, 10, 10, 10], &[0.25; 4]).unwrap();
        assert!(bad > ok);
        assert!(bad > chi_square_threshold(3, 5.0));
        assert!(ok < chi_square_threshold(3, 5.0));
    }

    #[test]
    fn chi_square_impossible_category() {
        assert!(chi_square_statistic(&[1, 1], &[1.0, 0.0]).is_err());
        let ok = chi_square_statistic(&[2, 0], &[1.0, 0.0]).unwrap();
        assert_eq!(ok, 0.0);
        assert!(chi_square_statistic(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(chi_square_statistic(&[1], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn chi_square_threshold_monotone_in_dof() {
        assert!(chi_square_threshold(10, 3.0) > chi_square_threshold(3, 3.0));
    }
}
