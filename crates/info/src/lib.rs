//! Information-theory and numerical-optimization substrate.
//!
//! This crate provides the mathematical machinery used throughout the
//! non-synchronous covert-channel workspace:
//!
//! * validated probability types ([`Probability`], [`Distribution`]),
//! * entropy and mutual-information functionals ([`entropy`]),
//! * the Blahut–Arimoto algorithm for the capacity of an arbitrary
//!   discrete memoryless channel ([`blahut`]),
//! * capacity *per unit time* for channels whose symbols have unequal
//!   durations ([`timing`]), as used by Millen's finite-state covert
//!   channel model,
//! * Shannon/Millen noiseless finite-state channel capacity ([`fsm`]),
//! * dense matrices and spectral-radius computation ([`matrix`]),
//! * scalar root finding and maximization ([`roots`], [`optimize`]),
//! * Markov-chain utilities ([`markov`]) and
//! * basic estimation statistics ([`stats`]).
//!
//! Everything is implemented from first principles on `f64`; there are
//! no external numeric dependencies. All iterative routines take
//! explicit tolerances and iteration limits and return [`InfoError`]
//! on failure instead of panicking.
//!
//! # Example
//!
//! Computing the capacity of a binary symmetric channel with the
//! generic Blahut–Arimoto solver and checking it against the closed
//! form `1 - H(p)`:
//!
//! ```
//! use nsc_info::blahut::{blahut_arimoto, BlahutOptions};
//! use nsc_info::entropy::binary_entropy;
//!
//! let p = 0.11;
//! let transition = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
//! let result = blahut_arimoto(&transition, &BlahutOptions::default()).unwrap();
//! let closed_form = 1.0 - binary_entropy(p);
//! assert!((result.capacity - closed_form).abs() < 1e-9);
//! ```

pub mod blahut;
pub mod dist;
pub mod entropy;
pub mod error;
pub mod fano;
pub mod fsm;
pub mod gamma;
pub mod markov;
pub mod matrix;
pub mod optimize;
pub mod roots;
pub mod stats;
pub mod timing;
pub mod units;

pub use dist::{Distribution, Probability};
pub use error::InfoError;
pub use units::{BitsPerSymbol, BitsPerTick};
