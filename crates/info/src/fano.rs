//! Fano's inequality and rate/error conversions.
//!
//! Experiment E9 measures bit error rates of codes over the
//! deletion-insertion channel. Fano's inequality converts an error
//! probability into an upper bound on the extractable information,
//! letting the harness report *information-theoretically honest*
//! effective rates instead of raw goodput:
//!
//! * for a uniform `M`-ary message decoded with error probability
//!   `P_e`, the residual equivocation satisfies
//!   `H(W | Ŵ) ≤ H(P_e) + P_e·log2(M − 1)`;
//! * for a binary stream with bit error rate `ber`, each decoded bit
//!   carries at most `1 − H(ber)` bits of information.

use crate::entropy::binary_entropy;
use crate::error::InfoError;

/// Fano upper bound on the conditional entropy `H(W | Ŵ)` for a
/// uniform message over `m` alternatives decoded with error
/// probability `p_e`, in bits.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when `m < 2` or `p_e` is
/// not a probability.
pub fn fano_equivocation(p_e: f64, m: u64) -> Result<f64, InfoError> {
    if m < 2 {
        return Err(InfoError::InvalidArgument(format!(
            "need at least two alternatives, got {m}"
        )));
    }
    if !p_e.is_finite() || !(0.0..=1.0).contains(&p_e) {
        return Err(InfoError::InvalidProbability(p_e));
    }
    Ok(binary_entropy(p_e) + p_e * ((m - 1) as f64).log2())
}

/// Information delivered per decoded *bit* at bit error rate `ber`:
/// `1 − H(ber)` (clamped at zero) — the binary symmetric converse.
///
/// # Errors
///
/// Returns [`InfoError::InvalidProbability`] when `ber` is not a
/// probability.
pub fn information_per_bit(ber: f64) -> Result<f64, InfoError> {
    if !ber.is_finite() || !(0.0..=1.0).contains(&ber) {
        return Err(InfoError::InvalidProbability(ber));
    }
    Ok((1.0 - binary_entropy(ber)).max(0.0))
}

/// Honest effective rate of a code: nominal `rate` (data bits per
/// channel use) discounted by the per-bit information at the measured
/// `ber` — `rate · (1 − H(ber))`.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] for a negative or
/// non-finite rate, and propagates [`information_per_bit`] errors.
pub fn effective_information_rate(rate: f64, ber: f64) -> Result<f64, InfoError> {
    if !rate.is_finite() || rate < 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "rate {rate} must be non-negative and finite"
        )));
    }
    Ok(rate * information_per_bit(ber)?)
}

/// The converse direction: the minimum error probability compatible
/// with trying to push `rate` bits per use through a channel of
/// capacity `capacity` (both per use), from Fano's inequality applied
/// to long blocks: `H(P_e) + P_e ≥ 1 − capacity/rate` per bit, solved
/// for the smallest `P_e` with `H(P_e) + P_e` increasing on
/// `[0, 1/2]`. Returns 0 when `rate ≤ capacity`.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when either argument is
/// negative, non-finite, or `rate` is zero.
pub fn minimum_error_rate(rate: f64, capacity: f64) -> Result<f64, InfoError> {
    if !rate.is_finite() || rate <= 0.0 || !capacity.is_finite() || capacity < 0.0 {
        return Err(InfoError::InvalidArgument(format!(
            "need positive rate and non-negative capacity, got {rate}, {capacity}"
        )));
    }
    if rate <= capacity {
        return Ok(0.0);
    }
    let target = 1.0 - capacity / rate;
    // g(p) = H(p) + p is strictly increasing on [0, 1/2] from 0 to
    // 1.5; bisect (clamp the target into the attainable range).
    let target = target.min(1.5);
    let (mut lo, mut hi) = (0.0f64, 0.5f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if binary_entropy(mid) + mid < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivocation_endpoints() {
        assert_eq!(fano_equivocation(0.0, 16).unwrap(), 0.0);
        // At p_e = 1 the bound is log2(M-1).
        assert!((fano_equivocation(1.0, 16).unwrap() - 15f64.log2()).abs() < 1e-12);
        assert!(fano_equivocation(0.5, 1).is_err());
        assert!(fano_equivocation(1.5, 4).is_err());
    }

    #[test]
    fn equivocation_below_log_m() {
        for &p in &[0.1, 0.3, 0.5, 0.9] {
            let h = fano_equivocation(p, 256).unwrap();
            assert!(h <= 8.0 + 1e-12, "p={p} h={h}");
        }
    }

    #[test]
    fn information_per_bit_endpoints() {
        assert_eq!(information_per_bit(0.0).unwrap(), 1.0);
        assert_eq!(information_per_bit(0.5).unwrap(), 0.0);
        // A fully inverted channel still carries full information in
        // principle, but the Fano-style discount treats it as zero —
        // by design, since a decoder that is wrong all the time has
        // not "decoded" anything the auditor can credit.
        assert_eq!(information_per_bit(1.0).unwrap(), 1.0);
        assert!(information_per_bit(-0.1).is_err());
    }

    #[test]
    fn effective_rate_discounts() {
        let clean = effective_information_rate(0.2, 0.0).unwrap();
        let noisy = effective_information_rate(0.2, 0.1).unwrap();
        assert_eq!(clean, 0.2);
        assert!(noisy < clean && noisy > 0.0);
        assert!(effective_information_rate(-1.0, 0.0).is_err());
    }

    #[test]
    fn minimum_error_zero_below_capacity() {
        assert_eq!(minimum_error_rate(0.5, 0.5).unwrap(), 0.0);
        assert_eq!(minimum_error_rate(0.3, 0.5).unwrap(), 0.0);
    }

    #[test]
    fn minimum_error_positive_above_capacity() {
        let p = minimum_error_rate(1.0, 0.5).unwrap();
        assert!(p > 0.0 && p < 0.5);
        // Satisfies the defining equation.
        let g = crate::entropy::binary_entropy(p) + p;
        assert!((g - 0.5).abs() < 1e-9);
        // Monotone in the gap.
        let p2 = minimum_error_rate(1.0, 0.2).unwrap();
        assert!(p2 > p);
    }

    #[test]
    fn minimum_error_validation() {
        assert!(minimum_error_rate(0.0, 0.5).is_err());
        assert!(minimum_error_rate(1.0, -0.1).is_err());
        assert!(minimum_error_rate(f64::NAN, 0.1).is_err());
    }
}
