//! Small dense matrices and spectral-radius computation.
//!
//! Millen's noiseless finite-state channel capacity is `log2(λ)` where
//! `λ` is the spectral radius of a non-negative connection matrix;
//! this module provides exactly the dense-matrix support that
//! computation needs (and that Markov-chain analysis reuses).

use crate::error::InfoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use nsc_info::matrix::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 1.0]])?;
/// // Fibonacci matrix: spectral radius is the golden ratio.
/// let rho = m.spectral_radius(1e-12, 10_000)?;
/// assert!((rho - 1.618_033_988_749_895).abs() < 1e-9);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when either dimension is
    /// zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, InfoError> {
        if rows == 0 || cols == 0 {
            return Err(InfoError::InvalidArgument(
                "matrix dimensions must be positive".to_owned(),
            ));
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when `n == 0`.
    pub fn identity(n: usize) -> Result<Self, InfoError> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] on empty input and
    /// [`InfoError::DimensionMismatch`] on ragged rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, InfoError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(InfoError::InvalidArgument(
                "matrix needs at least one row and one column".to_owned(),
            ));
        }
        let cols = rows[0].len();
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * cols);
        for row in &rows {
            if row.len() != cols {
                return Err(InfoError::DimensionMismatch {
                    got: (1, row.len()),
                    expected: (1, cols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::DimensionMismatch`] when `v.len()` differs
    /// from the number of columns.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, InfoError> {
        if v.len() != self.cols {
            return Err(InfoError::DimensionMismatch {
                got: (v.len(), 1),
                expected: (self.cols, 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::DimensionMismatch`] when the inner
    /// dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, InfoError> {
        if self.cols != other.rows {
            return Err(InfoError::DimensionMismatch {
                got: (other.rows, other.cols),
                expected: (self.cols, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows).expect("dims positive");
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns `true` when every entry is non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&x| x >= 0.0)
    }

    /// Spectral radius of a square non-negative matrix via power
    /// iteration with an added shift to guarantee convergence on
    /// periodic matrices.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidArgument`] when the matrix is not
    /// square or has negative entries, and
    /// [`InfoError::NoConvergence`] when power iteration does not
    /// settle within `max_iter` steps.
    pub fn spectral_radius(&self, tol: f64, max_iter: usize) -> Result<f64, InfoError> {
        if !self.is_square() {
            return Err(InfoError::InvalidArgument(
                "spectral radius requires a square matrix".to_owned(),
            ));
        }
        if !self.is_nonnegative() {
            return Err(InfoError::InvalidArgument(
                "power iteration implemented for non-negative matrices only".to_owned(),
            ));
        }
        let n = self.rows;
        // Shifted iteration on A + I: spectral radius of a
        // non-negative matrix satisfies rho(A + I) = rho(A) + 1 and
        // A + I is aperiodic whenever A is irreducible, so the power
        // method converges.
        let shift = 1.0;
        let mut v = vec![1.0 / (n as f64).sqrt(); n];
        let mut lambda = 0.0_f64;
        for it in 0..max_iter {
            let mut w = self.mul_vec(&v)?;
            for (wi, vi) in w.iter_mut().zip(&v) {
                *wi += shift * vi;
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                // Nilpotent-like behaviour: all mass vanished, so the
                // only eigenvalue of A + I reachable is the shift.
                return Ok(0.0);
            }
            for wi in &mut w {
                *wi /= norm;
            }
            let new_lambda = norm;
            let delta = (new_lambda - lambda).abs();
            v = w;
            lambda = new_lambda;
            if it > 4 && delta < tol {
                return Ok((lambda - shift).max(0.0));
            }
        }
        Err(InfoError::NoConvergence {
            iterations: max_iter,
            residual: tol,
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3).unwrap();
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
        assert!(Matrix::zeros(0, 1).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn mat_vec_product() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mat_mat_product_and_identity() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2).unwrap();
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
        let bad = Matrix::zeros(3, 2).unwrap();
        assert!(m.mul(&bad).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let rho = m.spectral_radius(1e-12, 10_000).unwrap();
        assert!((rho - 3.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_radius_of_fibonacci_matrix_is_golden_ratio() {
        let m = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let rho = m.spectral_radius(1e-13, 100_000).unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((rho - phi).abs() < 1e-9);
    }

    #[test]
    fn spectral_radius_of_permutation_matrix() {
        // Periodic matrix: plain power iteration would oscillate; the
        // shift makes it converge to 1.
        let m = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let rho = m.spectral_radius(1e-12, 100_000).unwrap();
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_radius_of_nilpotent_is_zero() {
        // Defective eigenvalue: power iteration converges like 1/k,
        // so use a loose tolerance and accept a small residual.
        let m = Matrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap();
        let rho = m.spectral_radius(1e-9, 200_000).unwrap();
        assert!(rho.abs() < 1e-3, "rho = {rho}");
    }

    #[test]
    fn spectral_radius_rejects_bad_inputs() {
        let m = Matrix::zeros(2, 3).unwrap();
        assert!(m.spectral_radius(1e-9, 100).is_err());
        let neg = Matrix::from_rows(vec![vec![-1.0]]).unwrap();
        assert!(neg.spectral_radius(1e-9, 100).is_err());
    }
}
