//! One-dimensional maximization routines.
//!
//! Capacity expressions such as the timed Z-channel's rate or the
//! mutual information of a two-input channel as a function of the
//! input bias are unimodal in one scalar; golden-section search is the
//! derivative-free tool of choice.

use crate::error::InfoError;

/// Options controlling a one-dimensional maximizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeOptions {
    /// Absolute tolerance on the argument.
    pub x_tol: f64,
    /// Maximum number of function evaluations.
    pub max_iter: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            x_tol: 1e-10,
            max_iter: 500,
        }
    }
}

/// Result of a one-dimensional maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Argument attaining the maximum.
    pub argmax: f64,
    /// Value of the objective at [`Maximum::argmax`].
    pub value: f64,
}

/// Maximizes a unimodal function on `[lo, hi]` by golden-section
/// search.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when the interval is empty
/// or not finite, and [`InfoError::NoConvergence`] when the interval
/// does not shrink below `x_tol` within the evaluation budget.
///
/// # Example
///
/// ```
/// use nsc_info::optimize::{golden_section_max, OptimizeOptions};
/// let m = golden_section_max(|x| -(x - 0.3) * (x - 0.3), 0.0, 1.0,
///                            &OptimizeOptions::default())?;
/// assert!((m.argmax - 0.3).abs() < 1e-6);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn golden_section_max<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    opts: &OptimizeOptions,
) -> Result<Maximum, InfoError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(InfoError::InvalidArgument(format!(
            "bad interval [{lo}, {hi}]"
        )));
    }
    if lo == hi {
        return Ok(Maximum {
            argmax: lo,
            value: f(lo),
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9; // 1/phi
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..opts.max_iter {
        if (b - a).abs() <= opts.x_tol {
            let x = 0.5 * (a + b);
            return Ok(Maximum {
                argmax: x,
                value: f(x),
            });
        }
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    Err(InfoError::NoConvergence {
        iterations: opts.max_iter,
        residual: (b - a).abs(),
    })
}

/// Maximizes `f` on a uniform grid of `n + 1` points over `[lo, hi]`,
/// returning the best grid point. Robust for multimodal objectives;
/// often used to bracket before refining with
/// [`golden_section_max`].
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`] when the interval is
/// invalid or `n == 0`.
pub fn grid_max<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, n: usize) -> Result<Maximum, InfoError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi || n == 0 {
        return Err(InfoError::InvalidArgument(format!(
            "bad grid [{lo}, {hi}] with {n} cells"
        )));
    }
    let mut best = Maximum {
        argmax: lo,
        value: f(lo),
    };
    for i in 1..=n {
        let x = lo + (hi - lo) * i as f64 / n as f64;
        let v = f(x);
        if v > best.value {
            best = Maximum {
                argmax: x,
                value: v,
            };
        }
    }
    Ok(best)
}

/// Maximizes a unimodal function by a coarse grid pass followed by
/// golden-section refinement around the best grid cell. A pragmatic
/// default for capacity curves that are unimodal but whose peak
/// location is unknown.
///
/// # Errors
///
/// Propagates errors from [`grid_max`] and [`golden_section_max`].
pub fn refine_max<F: Fn(f64) -> f64 + Copy>(
    f: F,
    lo: f64,
    hi: f64,
    grid: usize,
    opts: &OptimizeOptions,
) -> Result<Maximum, InfoError> {
    let coarse = grid_max(f, lo, hi, grid)?;
    let cell = (hi - lo) / grid as f64;
    let a = (coarse.argmax - cell).max(lo);
    let b = (coarse.argmax + cell).min(hi);
    golden_section_max(f, a, b, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_peak() {
        let m = golden_section_max(
            |x| -(x - 0.42) * (x - 0.42) + 7.0,
            0.0,
            1.0,
            &OptimizeOptions::default(),
        )
        .unwrap();
        assert!((m.argmax - 0.42).abs() < 1e-6);
        assert!((m.value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let m = golden_section_max(|x| x, 2.0, 2.0, &OptimizeOptions::default()).unwrap();
        assert_eq!(m.argmax, 2.0);
        assert_eq!(m.value, 2.0);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section_max(|x| x, 1.0, 0.0, &OptimizeOptions::default()).is_err());
        assert!(golden_section_max(|x| x, f64::NAN, 1.0, &OptimizeOptions::default()).is_err());
    }

    #[test]
    fn golden_section_on_entropy() {
        // H(p) is maximized at p = 1/2.
        let m = golden_section_max(
            crate::entropy::binary_entropy,
            0.0,
            1.0,
            &OptimizeOptions::default(),
        )
        .unwrap();
        assert!((m.argmax - 0.5).abs() < 1e-6);
        assert!((m.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_max_basics() {
        let m = grid_max(|x| -(x - 0.3) * (x - 0.3), 0.0, 1.0, 10).unwrap();
        assert!((m.argmax - 0.3).abs() <= 0.05 + 1e-12);
        assert!(grid_max(|x| x, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn refine_max_beats_grid_alone() {
        let f = |x: f64| -(x - 0.123_456).powi(2);
        let refined = refine_max(f, 0.0, 1.0, 10, &OptimizeOptions::default()).unwrap();
        assert!((refined.argmax - 0.123_456).abs() < 1e-6);
    }

    #[test]
    fn boundary_maximum_found() {
        // Monotone function: max is at the right endpoint.
        let m = golden_section_max(|x| x, 0.0, 1.0, &OptimizeOptions::default()).unwrap();
        assert!((m.argmax - 1.0).abs() < 1e-6);
    }
}
