//! The Blahut–Arimoto algorithm for discrete memoryless channel
//! capacity.
//!
//! The paper compares the deletion-insertion channel against several
//! discrete memoryless comparators (erasure channels, the M-ary
//! symmetric "converted" channel of Theorem 5, the Z-channel of the
//! related work). All of those have closed forms, but a general DMC
//! solver lets the test suite and experiment harness cross-validate
//! every closed form independently — and lets downstream users
//! estimate the capacity of an arbitrary measured covert channel.
//!
//! The implementation follows the classic alternating maximization
//! with the standard per-iteration capacity bracket: at input
//! distribution `p`, with `D_x = D(W(·|x) ‖ r)` for output marginal
//! `r`, the capacity satisfies `Σ_x p_x D_x ≤ C ≤ max_x D_x`, and the
//! multiplicative update `p'_x ∝ p_x · 2^{D_x}` converges to the
//! maximizer.

use crate::dist::Distribution;
use crate::error::InfoError;

/// Options controlling the Blahut–Arimoto iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlahutOptions {
    /// Stop when the capacity bracket `max_x D_x − Σ_x p_x D_x`
    /// shrinks below this many bits.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for BlahutOptions {
    fn default() -> Self {
        BlahutOptions {
            tolerance: 1e-12,
            max_iter: 20_000,
        }
    }
}

/// Result of a Blahut–Arimoto run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlahutResult {
    /// Channel capacity in bits per channel use.
    pub capacity: f64,
    /// The capacity-achieving input distribution found.
    pub input: Distribution,
    /// Iterations performed.
    pub iterations: usize,
    /// Final width of the capacity bracket (certified accuracy).
    pub gap: f64,
}

/// Validates that `w` is a well-formed transition matrix: non-empty,
/// rectangular, rows summing to one.
///
/// # Errors
///
/// Returns [`InfoError::InvalidArgument`],
/// [`InfoError::DimensionMismatch`], [`InfoError::InvalidProbability`]
/// or [`InfoError::InvalidDistribution`] describing the defect.
pub fn validate_transition_matrix(w: &[Vec<f64>]) -> Result<(), InfoError> {
    if w.is_empty() || w[0].is_empty() {
        return Err(InfoError::InvalidArgument(
            "transition matrix must be non-empty".to_owned(),
        ));
    }
    let cols = w[0].len();
    for row in w {
        if row.len() != cols {
            return Err(InfoError::DimensionMismatch {
                got: (1, row.len()),
                expected: (1, cols),
            });
        }
        let mut sum = 0.0;
        for &p in row {
            if !p.is_finite() || p < 0.0 {
                return Err(InfoError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > crate::dist::SUM_TOLERANCE * 10.0 {
            return Err(InfoError::InvalidDistribution(sum));
        }
    }
    Ok(())
}

/// Computes the capacity of the discrete memoryless channel with
/// transition matrix `w[x][y] = P(Y = y | X = x)`.
///
/// # Errors
///
/// Returns a validation error for malformed `w` (see
/// [`validate_transition_matrix`]) and [`InfoError::NoConvergence`]
/// when the bracket does not close within the iteration budget.
///
/// # Example
///
/// Binary erasure channel with erasure probability `e` has capacity
/// `1 − e`:
///
/// ```
/// use nsc_info::blahut::{blahut_arimoto, BlahutOptions};
/// let e = 0.3;
/// let w = vec![vec![1.0 - e, 0.0, e], vec![0.0, 1.0 - e, e]];
/// let r = blahut_arimoto(&w, &BlahutOptions::default())?;
/// assert!((r.capacity - 0.7).abs() < 1e-9);
/// # Ok::<(), nsc_info::InfoError>(())
/// ```
pub fn blahut_arimoto(w: &[Vec<f64>], opts: &BlahutOptions) -> Result<BlahutResult, InfoError> {
    validate_transition_matrix(w)?;
    let nx = w.len();
    let ny = w[0].len();
    let mut p = vec![1.0 / nx as f64; nx];
    let mut d = vec![0.0_f64; nx];
    let mut last_gap = f64::INFINITY;
    for it in 1..=opts.max_iter {
        // Output marginal r_y = sum_x p_x w_xy.
        let mut r = vec![0.0_f64; ny];
        for (px, row) in p.iter().zip(w) {
            if *px == 0.0 {
                continue;
            }
            for (ry, &wxy) in r.iter_mut().zip(row) {
                *ry += px * wxy;
            }
        }
        // D_x = KL(W(.|x) || r) in bits.
        for (dx, row) in d.iter_mut().zip(w) {
            let mut acc = 0.0;
            for (&wxy, &ry) in row.iter().zip(&r) {
                if wxy > 0.0 {
                    // ry >= p_x * wxy > 0 whenever p_x > 0; for rows
                    // with p_x == 0 the marginal may miss an output,
                    // making D_x infinite — handled via f64 infinity.
                    acc += wxy * (wxy / ry).log2();
                }
            }
            *dx = acc;
        }
        let lower: f64 = p.iter().zip(&d).map(|(px, dx)| px * dx).sum();
        let upper = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        last_gap = upper - lower;
        if last_gap <= opts.tolerance {
            return Ok(BlahutResult {
                capacity: lower.max(0.0),
                input: Distribution::from_weights(&p)?,
                iterations: it,
                gap: last_gap,
            });
        }
        // Multiplicative update p'_x ∝ p_x 2^{D_x}, computed stably by
        // subtracting the max exponent.
        let dmax = upper;
        let mut z = 0.0;
        for (px, dx) in p.iter_mut().zip(&d) {
            *px *= (dx - dmax).exp2();
            z += *px;
        }
        if z <= 0.0 || !z.is_finite() {
            return Err(InfoError::NoConvergence {
                iterations: it,
                residual: z,
            });
        }
        for px in &mut p {
            *px /= z;
        }
    }
    Err(InfoError::NoConvergence {
        iterations: opts.max_iter,
        residual: last_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::binary_entropy;

    fn capacity(w: &[Vec<f64>]) -> f64 {
        blahut_arimoto(w, &BlahutOptions::default())
            .unwrap()
            .capacity
    }

    #[test]
    fn bsc_capacity_matches_closed_form() {
        for &p in &[0.0, 0.05, 0.11, 0.25, 0.5] {
            let w = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
            let c = capacity(&w);
            assert!((c - (1.0 - binary_entropy(p))).abs() < 1e-9, "p={p} c={c}");
        }
    }

    #[test]
    fn erasure_capacity_matches_closed_form() {
        for &e in &[0.0, 0.1, 0.5, 0.9] {
            let w = vec![vec![1.0 - e, 0.0, e], vec![0.0, 1.0 - e, e]];
            assert!((capacity(&w) - (1.0 - e)).abs() < 1e-9);
        }
    }

    #[test]
    fn z_channel_capacity_matches_closed_form() {
        // Z-channel with crossover p from input 1:
        // C = log2(1 + (1-p) p^{p/(1-p)}).
        for &p in &[0.1_f64, 0.3, 0.5] {
            let w = vec![vec![1.0, 0.0], vec![p, 1.0 - p]];
            let closed = (1.0 + (1.0 - p) * p.powf(p / (1.0 - p))).log2();
            assert!(
                (capacity(&w) - closed).abs() < 1e-8,
                "p={p}: {} vs {closed}",
                capacity(&w)
            );
        }
    }

    #[test]
    fn noiseless_mary_channel_capacity_is_log_m() {
        for m in [2usize, 4, 8] {
            let mut w = vec![vec![0.0; m]; m];
            for (i, row) in w.iter_mut().enumerate() {
                row[i] = 1.0;
            }
            assert!((capacity(&w) - (m as f64).log2()).abs() < 1e-9);
        }
    }

    #[test]
    fn useless_channel_capacity_is_zero() {
        let w = vec![vec![0.4, 0.6], vec![0.4, 0.6]];
        assert!(capacity(&w).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_channel_input_distribution_is_skewed() {
        // Z-channel capacity-achieving input is not uniform.
        let p = 0.5;
        let w = vec![vec![1.0, 0.0], vec![p, 1.0 - p]];
        let r = blahut_arimoto(&w, &BlahutOptions::default()).unwrap();
        assert!(r.input[0] > 0.5, "input = {:?}", r.input);
        assert!(r.gap <= 1e-12);
    }

    #[test]
    fn mary_symmetric_channel_closed_form() {
        // M-ary symmetric: error e spread uniformly over M-1 wrong
        // symbols. C = log2 M - H(e) - e log2(M-1).
        let m = 4usize;
        let e = 0.2;
        let mut w = vec![vec![e / (m as f64 - 1.0); m]; m];
        for (i, row) in w.iter_mut().enumerate() {
            row[i] = 1.0 - e;
        }
        let closed = (m as f64).log2() - binary_entropy(e) - e * (m as f64 - 1.0).log2();
        assert!((capacity(&w) - closed).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_matrices() {
        assert!(blahut_arimoto(&[], &BlahutOptions::default()).is_err());
        assert!(blahut_arimoto(&[vec![]], &BlahutOptions::default()).is_err());
        assert!(blahut_arimoto(&[vec![0.5, 0.5], vec![1.0]], &BlahutOptions::default()).is_err());
        assert!(blahut_arimoto(&[vec![0.5, 0.4]], &BlahutOptions::default()).is_err());
        assert!(blahut_arimoto(&[vec![1.5, -0.5]], &BlahutOptions::default()).is_err());
    }

    #[test]
    fn iteration_budget_is_respected() {
        let w = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let r = blahut_arimoto(
            &w,
            &BlahutOptions {
                tolerance: 0.0,
                max_iter: 3,
            },
        );
        assert!(matches!(r, Err(InfoError::NoConvergence { .. })));
    }
}
