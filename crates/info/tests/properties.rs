//! Property-based tests of the information-theory substrate.

use nsc_info::blahut::{blahut_arimoto, BlahutOptions};
use nsc_info::entropy::{binary_entropy, entropy, kl_divergence, mutual_information_channel};
use nsc_info::stats::wilson_interval;
use nsc_info::timing::noiseless_timing_capacity;
use nsc_info::Distribution;
use proptest::prelude::*;

/// Strategy: a probability vector of 2..=6 entries.
fn distribution() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..1.0, 2..=6).prop_map(|w| {
        let s: f64 = w.iter().sum();
        w.into_iter().map(|x| x / s).collect()
    })
}

/// Strategy: a row-stochastic matrix (nx × ny).
fn channel_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..=4, 2usize..=4).prop_flat_map(|(nx, ny)| {
        prop::collection::vec(
            prop::collection::vec(0.001f64..1.0, ny..=ny).prop_map(|row| {
                let s: f64 = row.iter().sum();
                row.into_iter().map(|x| x / s).collect::<Vec<f64>>()
            }),
            nx..=nx,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn entropy_within_bounds(p in distribution()) {
        let h = entropy(&p);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (p.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn binary_entropy_concave_symmetric(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn kl_divergence_nonnegative_and_zero_iff_equal(p in distribution()) {
        prop_assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
        let u = vec![1.0 / p.len() as f64; p.len()];
        prop_assert!(kl_divergence(&p, &u).unwrap() >= -1e-12);
    }

    #[test]
    fn mutual_information_bounded(px in distribution(), w in channel_matrix()) {
        // Align dimensions: truncate/normalize px to w's input count.
        let nx = w.len();
        let mut p: Vec<f64> = px.into_iter().cycle().take(nx).collect();
        let s: f64 = p.iter().sum();
        for v in &mut p { *v /= s; }
        let i = mutual_information_channel(&p, &w).unwrap();
        let hx = entropy(&p);
        prop_assert!(i >= -1e-12);
        prop_assert!(i <= hx + 1e-9, "I = {i} > H(X) = {hx}");
        prop_assert!(i <= (w[0].len() as f64).log2() + 1e-9);
    }

    #[test]
    fn capacity_at_least_any_input_mi(w in channel_matrix(), px in distribution()) {
        let nx = w.len();
        let mut p: Vec<f64> = px.into_iter().cycle().take(nx).collect();
        let s: f64 = p.iter().sum();
        for v in &mut p { *v /= s; }
        // Random channels can be near-degenerate; a looser tolerance
        // with a larger budget keeps Blahut–Arimoto convergent.
        let opts = BlahutOptions { tolerance: 1e-8, max_iter: 500_000 };
        let c = blahut_arimoto(&w, &opts).unwrap().capacity;
        let i = mutual_information_channel(&p, &w).unwrap();
        prop_assert!(c + 1e-6 >= i, "capacity {c} below MI {i}");
        prop_assert!(c <= (w.len().min(w[0].len()) as f64).log2() + 1e-9);
    }

    #[test]
    fn distribution_type_invariants(p in distribution()) {
        let d = Distribution::new(p.clone()).unwrap();
        prop_assert_eq!(d.len(), p.len());
        // Sampling at any u lands in support.
        for &u in &[0.0, 0.3, 0.99] {
            prop_assert!(d.sample_with(u) < d.len());
        }
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_contains_mle(successes in 0u64..1000, extra in 1u64..1000) {
        let trials = successes + extra;
        let iv = wilson_interval(successes, trials, 1.96).unwrap();
        prop_assert!(iv.lower <= iv.estimate && iv.estimate <= iv.upper);
        prop_assert!(iv.lower >= 0.0 && iv.upper <= 1.0);
    }

    #[test]
    fn shannon_capacity_monotone_in_alphabet(
        t1 in 0.5f64..4.0, t2 in 0.5f64..4.0, t3 in 0.5f64..4.0,
    ) {
        let c2 = noiseless_timing_capacity(&[t1, t2]).unwrap();
        let c3 = noiseless_timing_capacity(&[t1, t2, t3]).unwrap();
        // Adding a symbol never reduces capacity.
        prop_assert!(c3 + 1e-9 >= c2, "c2 = {c2}, c3 = {c3}");
    }

    #[test]
    fn shannon_capacity_scales_inversely_with_time(
        t1 in 0.5f64..4.0, t2 in 0.5f64..4.0, k in 1.1f64..3.0,
    ) {
        let base = noiseless_timing_capacity(&[t1, t2]).unwrap();
        let slow = noiseless_timing_capacity(&[k * t1, k * t2]).unwrap();
        prop_assert!((slow - base / k).abs() < 1e-6);
    }
}
