//! Online streaming estimation service for non-synchronous
//! covert-channel traces.
//!
//! `nsc estimate` is batch-only: it replays a finished
//! `nsc-trace/v1` file. This crate is the long-running counterpart —
//! the ROADMAP's "monitor heavy traffic from millions of users"
//! direction: a server that accepts live `nsc-trace/v1` event
//! streams over TCP and Unix-domain sockets and maintains, per
//! stream, the paper's full estimation pipeline *online*:
//!
//! * incremental maximum-likelihood `(P_d, P_i)` with Wilson and
//!   likelihood-ratio 95% intervals,
//! * the Bonferroni windowed change-point scan in **bounded memory**
//!   (the [`InferenceBuilder`] compacts its per-block tallies once
//!   they would exceed [`DEFAULT_MAX_BLOCKS`], so a stream of any
//!   length occupies `O(max_blocks)` space),
//! * live Theorem 1/4 upper and Theorem 5 lower capacity bounds,
//!   recomputed on every status snapshot.
//!
//! # The batch path stays the oracle
//!
//! The server does not re-implement inference. Each stream owns the
//! same [`InferenceBuilder`] that `nsc estimate` drives, fed through
//! the same [`TraceReader`] — so streaming a recorded trace through
//! the server reproduces the batch estimates **bit for bit**, no
//! matter how the bytes were chunked across socket writes or how
//! many connections streamed concurrently. The integration suite and
//! a CI job replay a golden trace at several connection counts and
//! diff the `--status` snapshot against `nsc estimate` output.
//!
//! # Wire protocol
//!
//! One connection carries either:
//!
//! * a **status query** — the literal line `status`; the server
//!   replies with one `nsc-serve/v1` JSON document (per-stream
//!   counts, estimates, alarm state, throughput counters) and closes;
//! * a **trace stream** — an `nsc-trace/v1` header line followed by
//!   event lines, exactly the on-disk format. On end of stream (the
//!   client half-closes its write side) the server replies with one
//!   ack line `{"schema":"nsc-serve/v1","stream":ID,"events":N}`.
//!
//! A final event line without a trailing newline is accepted, since
//! socket streams routinely end mid-buffer.
//!
//! # Modules
//!
//! * [`server`] — [`Server`]: listeners, the sharded stream
//!   registry, the status endpoint, [`query_status`].
//! * [`stream`] — [`OnlineStream`], one connection's estimator
//!   state and its JSON snapshot.
//! * [`loadgen`] — [`replay_trace`]: replays a recorded trace at a
//!   configurable rate and connection fan-out to measure sustained
//!   events/sec.
//!
//! [`InferenceBuilder`]: nsc_trace::InferenceBuilder
//! [`DEFAULT_MAX_BLOCKS`]: nsc_trace::DEFAULT_MAX_BLOCKS
//! [`TraceReader`]: nsc_trace::TraceReader

pub mod loadgen;
pub mod server;
pub mod stream;

pub use loadgen::{replay_trace, LoadgenConfig, LoadgenReport};
pub use server::{query_status, Endpoint, ServeConfig, Server, SERVE_SCHEMA};
pub use stream::OnlineStream;
