//! Trace replay load generator: `nsc loadgen`'s engine.
//!
//! Replays a recorded `nsc-trace/v1` file against a running server
//! at a configurable event rate and connection fan-out, and reports
//! the sustained throughput. Every connection streams the **whole**
//! trace (`repeat` times, tick-shifted so timestamps stay
//! non-decreasing), so with the replay-oracle property each
//! resulting server stream must report estimates byte-identical to
//! `nsc estimate` on the file — which is exactly what the CI serve
//! job diffs.
//!
//! The event lines are pre-rendered once with
//! [`render_event_line`] (the canonical byte shape the reader
//! fast-paths) and shared across connections, so the generator
//! measures the server, not its own formatting.

use crate::server::Endpoint;
use nsc_trace::format::render_event_line;
use nsc_trace::{read_trace, TraceEvent, TraceHeader};
use serde_json::{json, Value};
use std::io::{BufReader, Read};
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Events per write/pacing chunk.
const CHUNK_EVENTS: usize = 1024;

/// Load generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Concurrent connections, each streaming the whole trace.
    pub connections: usize,
    /// Target events/sec across all connections; `0` = unthrottled.
    pub rate: f64,
    /// Whole-trace repetitions per connection (tick-shifted).
    pub repeat: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 1,
            rate: 0.0,
            repeat: 1,
        }
    }
}

/// What a replay run achieved.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections opened.
    pub connections: usize,
    /// Events streamed per connection.
    pub events_per_connection: u64,
    /// Events streamed in total.
    pub events_sent: u64,
    /// Wall-clock of the whole replay (connect through final ack).
    pub wall_secs: f64,
    /// `events_sent / wall_secs` (0 when the clock saw no time).
    pub events_per_sec: f64,
    /// The server's per-connection ack lines, in connection order.
    pub acks: Vec<Value>,
}

impl LoadgenReport {
    /// The report as a JSON object (the `results` body of
    /// `nsc loadgen --format json`).
    #[must_use]
    pub fn json(&self) -> Value {
        json!({
            "connections": self.connections,
            "events_per_connection": self.events_per_connection,
            "events_sent": self.events_sent,
            "wall_secs": self.wall_secs,
            "events_per_sec": self.events_per_sec,
            "acks": self.acks,
        })
    }
}

/// Pre-rendered replay payload: the header line plus every
/// (tick-shifted) event line, with chunk boundaries for pacing.
struct Payload {
    bytes: Vec<u8>,
    /// Byte offset and cumulative event count at each chunk end.
    chunks: Vec<(usize, u64)>,
    events: u64,
}

fn render_payload(header: &TraceHeader, events: &[TraceEvent], repeat: u64) -> Payload {
    let mut bytes = serde_json::to_vec(header).expect("trace headers serialize");
    bytes.push(b'\n');
    let mut chunks = Vec::new();
    let mut line = Vec::with_capacity(48);
    let mut rendered: u64 = 0;
    let span = events.last().map_or(1, |e| e.tick + 1);
    for r in 0..repeat {
        let shift = span * r;
        for event in events {
            let shifted = TraceEvent::new(event.tick + shift, event.kind);
            render_event_line(&mut line, &shifted);
            bytes.extend_from_slice(&line);
            bytes.push(b'\n');
            rendered += 1;
            if rendered % (CHUNK_EVENTS as u64) == 0 {
                chunks.push((bytes.len(), rendered));
            }
        }
    }
    if chunks.last().map_or(true, |&(end, _)| end != bytes.len()) {
        chunks.push((bytes.len(), rendered));
    }
    Payload {
        bytes,
        chunks,
        events: rendered,
    }
}

/// Streams `payload` over one connection, paced to `rate` events/sec
/// (0 = unthrottled), half-closes, and returns the server's ack.
fn stream_connection(endpoint: &Endpoint, payload: &Payload, rate: f64) -> Result<Value, String> {
    let mut conn = endpoint
        .connect()
        .map_err(|e| format!("cannot connect: {e}"))?;
    // nsc-lint: allow(wall-clock, reason = "loadgen pacing and throughput measurement are observational by definition")
    let started = Instant::now();
    let mut from = 0usize;
    for &(to, events_done) in &payload.chunks {
        conn.write_all(&payload.bytes[from..to])
            .map_err(|e| format!("cannot stream trace: {e}"))?;
        from = to;
        if rate > 0.0 {
            let target = events_done as f64 / rate;
            let elapsed = started.elapsed().as_secs_f64();
            if elapsed < target {
                thread::sleep(Duration::from_secs_f64(target - elapsed));
            }
        }
    }
    conn.flush()
        .map_err(|e| format!("cannot flush trace: {e}"))?;
    conn.shutdown_write()
        .map_err(|e| format!("cannot half-close: {e}"))?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)
        .map_err(|e| format!("cannot read ack: {e}"))?;
    let line = reply
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| "server closed without an ack line".to_owned())?;
    serde_json::from_str(line).map_err(|e| format!("ack is not valid JSON: {e} (got {line:?})"))
}

/// Replays `trace` against `endpoint` per `config` and reports the
/// sustained throughput.
///
/// # Errors
///
/// A human-readable message for invalid knobs (zero connections or
/// repetitions, a non-finite or negative rate), an unreadable or
/// invalid trace file, or any connection failure.
pub fn replay_trace(
    endpoint: &Endpoint,
    trace: &Path,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, String> {
    if config.connections == 0 {
        return Err("loadgen needs at least one connection".to_owned());
    }
    if config.repeat == 0 {
        return Err("loadgen needs at least one repetition".to_owned());
    }
    if !config.rate.is_finite() || config.rate < 0.0 {
        return Err(format!(
            "loadgen rate must be a finite non-negative number, got {}",
            config.rate
        ));
    }
    let file = std::fs::File::open(trace)
        .map_err(|e| format!("cannot open trace file {}: {e}", trace.display()))?;
    let (header, events) =
        read_trace(BufReader::new(file)).map_err(|e| format!("{}: {e}", trace.display()))?;
    if events.is_empty() {
        return Err(format!(
            "{}: trace has no events to replay",
            trace.display()
        ));
    }
    let payload = Arc::new(render_payload(&header, &events, config.repeat));
    let per_conn_rate = if config.rate > 0.0 {
        config.rate / config.connections as f64
    } else {
        0.0
    };
    // nsc-lint: allow(wall-clock, reason = "loadgen pacing and throughput measurement are observational by definition")
    let started = Instant::now();
    let workers: Vec<_> = (0..config.connections)
        .map(|_| {
            let endpoint = endpoint.clone();
            let payload = Arc::clone(&payload);
            thread::spawn(move || stream_connection(&endpoint, &payload, per_conn_rate))
        })
        .collect();
    let mut acks = Vec::with_capacity(workers.len());
    for worker in workers {
        acks.push(worker.join().map_err(|_| "connection thread panicked")??);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let events_sent = payload.events * config.connections as u64;
    Ok(LoadgenReport {
        connections: config.connections,
        events_per_connection: payload.events,
        events_sent,
        wall_secs,
        events_per_sec: if wall_secs > 0.0 {
            events_sent as f64 / wall_secs
        } else {
            0.0
        },
        acks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{query_status, ServeConfig, Server};
    use nsc_trace::{write_trace, TraceEvent, TraceEventKind};

    fn temp_trace(events: &[TraceEvent]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "nsc-loadgen-test-{}-{:p}.jsonl",
            std::process::id(),
            events.as_ptr()
        ));
        let file = std::fs::File::create(&path).unwrap();
        write_trace(file, &TraceHeader::new(1), events.to_vec()).unwrap();
        path
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(0, TraceEventKind::Send(1)),
            TraceEvent::new(1, TraceEventKind::Recv(1)),
            TraceEvent::new(2, TraceEventKind::Send(0)),
            TraceEvent::new(3, TraceEventKind::Delete(0)),
            TraceEvent::new(4, TraceEventKind::Insert(1)),
        ]
    }

    #[test]
    fn replay_fans_out_and_acks_every_connection() {
        let server = Server::bind(
            &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
            ServeConfig {
                shards: 4,
                windows: 4,
                threads: 1,
            },
        )
        .unwrap();
        let endpoint = Endpoint::Tcp(server.tcp_addr().unwrap().to_string());
        let path = temp_trace(&sample_events());
        let report = replay_trace(
            &endpoint,
            &path,
            &LoadgenConfig {
                connections: 3,
                rate: 0.0,
                repeat: 4,
            },
        )
        .unwrap();
        assert_eq!(report.events_per_connection, 20);
        assert_eq!(report.events_sent, 60);
        assert_eq!(report.acks.len(), 3);
        for ack in &report.acks {
            assert_eq!(ack["events"], serde_json::json!(20));
            assert!(ack.get("error").is_none());
        }
        let status = query_status(&endpoint).unwrap();
        assert_eq!(status["totals"]["events"], serde_json::json!(60));
        assert_eq!(status["totals"]["streams"], serde_json::json!(3));
        server.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        let endpoint = Endpoint::Tcp("127.0.0.1:1".to_owned());
        let path = temp_trace(&sample_events());
        let zero_conns = LoadgenConfig {
            connections: 0,
            ..LoadgenConfig::default()
        };
        assert!(replay_trace(&endpoint, &path, &zero_conns)
            .unwrap_err()
            .contains("connection"));
        let zero_repeat = LoadgenConfig {
            repeat: 0,
            ..LoadgenConfig::default()
        };
        assert!(replay_trace(&endpoint, &path, &zero_repeat)
            .unwrap_err()
            .contains("repetition"));
        let nan_rate = LoadgenConfig {
            rate: f64::NAN,
            ..LoadgenConfig::default()
        };
        assert!(replay_trace(&endpoint, &path, &nan_rate)
            .unwrap_err()
            .contains("finite"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_shifts_ticks_across_repetitions() {
        let events = sample_events();
        let payload = render_payload(&TraceHeader::new(1), &events, 3);
        assert_eq!(payload.events, 15);
        let text = String::from_utf8(payload.bytes.clone()).unwrap();
        // Repetition 1 starts at tick span = 5, repetition 2 at 10:
        // ticks never decrease, so the reader accepts the replay.
        assert!(text.contains("{\"t\":5,\"ev\":\"send\",\"sym\":1}"));
        assert!(text.contains("{\"t\":14,\"ev\":\"ins\",\"sym\":1}"));
        let parsed = nsc_trace::read_trace(payload.bytes.as_slice()).unwrap();
        assert_eq!(parsed.1.len(), 15);
    }
}
