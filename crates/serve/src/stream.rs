//! Per-stream online estimator state.

use nsc_trace::{capacity_bounds_with_ci, check_finite_json, InferenceBuilder, TraceEvent};
use serde_json::{json, Map, Value};

/// One connection's online estimator: the same [`InferenceBuilder`]
/// the batch `nsc estimate` path drives, plus stream identity and
/// error state.
///
/// Because the builder's state is a pure function of the event
/// sequence, a stream that replays a recorded trace ends up —
/// regardless of socket chunking — in exactly the state the batch
/// path reaches on the same file, which is what makes the server's
/// snapshots bit-identical to `nsc estimate` output.
#[derive(Debug, Clone)]
pub struct OnlineStream {
    id: u64,
    alphabet_bits: u32,
    builder: InferenceBuilder,
    error: Option<String>,
}

impl OnlineStream {
    /// A fresh stream with the default (batch-identical) estimator
    /// limits.
    #[must_use]
    pub fn new(id: u64, alphabet_bits: u32) -> Self {
        OnlineStream {
            id,
            alphabet_bits,
            builder: InferenceBuilder::new(),
            error: None,
        }
    }

    /// The server-assigned stream id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Events observed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.builder.events()
    }

    /// Tallies one validated event.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.builder.observe(event);
    }

    /// Records a terminal stream error (a malformed line, an I/O
    /// failure); the tallies up to the error remain visible.
    pub fn set_error(&mut self, message: String) {
        self.error = Some(message);
    }

    /// The per-stream status object: identity and counters always;
    /// the full estimate block (`counts`/`p_d`/`p_i`/`stationarity`/
    /// `bounds`, field-for-field the `results` object of
    /// `nsc estimate --format json`) when the stream supports
    /// inference, or `status: "insufficient"` with a reason when it
    /// is degenerate (no sends, no deliveries). Every float is
    /// guarded finite before rendering — a `NaN` can only surface as
    /// a typed error, never as a silent JSON `null`.
    #[must_use]
    pub fn snapshot(&self, windows: usize, threads: usize) -> Value {
        let mut obj = Map::new();
        obj.insert("stream".to_owned(), json!(self.id));
        obj.insert("alphabet_bits".to_owned(), json!(self.alphabet_bits));
        obj.insert("events".to_owned(), json!(self.builder.events()));
        obj.insert("blocks_held".to_owned(), json!(self.builder.blocks_held()));
        if let Some(error) = &self.error {
            obj.insert("error".to_owned(), json!(error));
        }
        let estimate = self.builder.infer(windows, threads).and_then(|inf| {
            capacity_bounds_with_ci(self.alphabet_bits, &inf).map(|bounds| (inf, bounds))
        });
        match estimate {
            Ok((inf, bounds)) => {
                // The finite guard must run on the source structs:
                // `json!` already converts NaN to null.
                let guarded = check_finite_json(&inf).and_then(|()| check_finite_json(&bounds));
                match guarded {
                    Ok(()) => {
                        obj.insert("status".to_owned(), json!("ok"));
                        obj.insert("counts".to_owned(), json!(inf.counts));
                        obj.insert("p_d".to_owned(), json!(inf.p_d));
                        obj.insert("p_i".to_owned(), json!(inf.p_i));
                        obj.insert("stationarity".to_owned(), json!(inf.stationarity));
                        obj.insert("bounds".to_owned(), json!(bounds));
                    }
                    Err(e) => {
                        obj.insert("status".to_owned(), json!("non-finite"));
                        obj.insert("reason".to_owned(), json!(e.to_string()));
                    }
                }
            }
            Err(e) => {
                obj.insert("status".to_owned(), json!("insufficient"));
                obj.insert("reason".to_owned(), json!(e.to_string()));
            }
        }
        Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_trace::{infer_events, TraceEventKind};

    fn ev(tick: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent::new(tick, kind)
    }

    fn feed(stream: &mut OnlineStream, events: &[TraceEvent]) {
        for e in events {
            stream.observe(e);
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(0, TraceEventKind::Send(1)),
            ev(1, TraceEventKind::Delete(1)),
            ev(2, TraceEventKind::Send(0)),
            ev(3, TraceEventKind::Recv(0)),
            ev(4, TraceEventKind::Send(1)),
            ev(5, TraceEventKind::Recv(1)),
            ev(6, TraceEventKind::Insert(1)),
            ev(7, TraceEventKind::Send(0)),
            ev(8, TraceEventKind::Recv(0)),
        ]
    }

    #[test]
    fn snapshot_matches_batch_inference() {
        let events = sample();
        let mut stream = OnlineStream::new(7, 1);
        feed(&mut stream, &events);
        let snap = stream.snapshot(4, 1);
        assert_eq!(snap["stream"], json!(7));
        assert_eq!(snap["status"], json!("ok"));
        let batch = infer_events(events.into_iter().map(Ok), 4, 1).unwrap();
        assert_eq!(snap["counts"], json!(batch.counts));
        assert_eq!(snap["p_d"], json!(batch.p_d));
        assert_eq!(snap["p_i"], json!(batch.p_i));
        assert_eq!(snap["stationarity"], json!(batch.stationarity));
        let bounds = capacity_bounds_with_ci(1, &batch).unwrap();
        assert_eq!(snap["bounds"], json!(bounds));
    }

    #[test]
    fn degenerate_stream_reports_insufficient_not_null() {
        let mut stream = OnlineStream::new(1, 2);
        let snap = stream.snapshot(4, 1);
        assert_eq!(snap["status"], json!("insufficient"));
        assert!(snap.get("p_d").is_none());
        // Only acks: still no P_d evidence.
        feed(&mut stream, &[ev(0, TraceEventKind::Ack)]);
        let snap = stream.snapshot(4, 1);
        assert_eq!(snap["status"], json!("insufficient"));
        assert!(snap["reason"].as_str().unwrap().contains("P_d"));
        // Sends but no deliveries: no P_i evidence.
        feed(&mut stream, &[ev(1, TraceEventKind::Send(1))]);
        let snap = stream.snapshot(4, 1);
        assert_eq!(snap["status"], json!("insufficient"));
        assert!(snap["reason"].as_str().unwrap().contains("P_i"));
        // No null anywhere in the snapshot (serde_json's NaN decay).
        assert!(!serde_json::to_string(&snap).unwrap().contains("null"));
    }

    #[test]
    fn stream_error_is_recorded_alongside_partial_tallies() {
        let mut stream = OnlineStream::new(3, 1);
        feed(
            &mut stream,
            &[
                ev(0, TraceEventKind::Send(1)),
                ev(1, TraceEventKind::Recv(1)),
            ],
        );
        stream.set_error("trace line 4, column 1: blank line".to_owned());
        let snap = stream.snapshot(4, 1);
        assert_eq!(snap["events"], json!(2));
        assert!(snap["error"].as_str().unwrap().contains("line 4"));
        assert_eq!(snap["status"], json!("ok"));
    }
}
