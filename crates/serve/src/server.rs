//! The streaming estimation server: listeners, the sharded stream
//! registry, and the status endpoint.
//!
//! # Sharding
//!
//! Connections are sharded by stream id across a fixed vector of
//! shards, echoing the engine runner's slot-vector pool discipline:
//! every stream has exactly **one writer** (its connection's handler
//! thread), state lives in a fixed slot vector indexed by
//! `id % shards`, and readers (the status endpoint) walk the shards
//! in index order and the streams in id order — so a status snapshot
//! is ordered deterministically no matter how the connections
//! interleaved. Shard maps are `BTreeMap`, never `HashMap`, for the
//! same reason.
//!
//! # Bounded memory
//!
//! A stream's estimator is an [`OnlineStream`] wrapping the batch
//! [`InferenceBuilder`](nsc_trace::InferenceBuilder), whose
//! change-point blocks compact once they would exceed
//! [`DEFAULT_MAX_BLOCKS`](nsc_trace::DEFAULT_MAX_BLOCKS) — per-stream
//! memory is `O(max_blocks)` regardless of stream length, which the
//! `--status` document reports per stream as `blocks_held`.

use crate::stream::OnlineStream;
use nsc_trace::{check_finite_json, TraceReader};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Schema identifier of every JSON document the server emits.
pub const SERVE_SCHEMA: &str = "nsc-serve/v1";

/// Events a handler thread applies per registry-lock acquisition:
/// large enough that lock traffic never dominates the parse loop,
/// small enough that status snapshots stay live.
const EVENT_BATCH: usize = 256;

/// Poll interval of the non-blocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Sentinel for "no event seen yet" in the ingest-window atomics.
const NO_EVENT: u64 = u64::MAX;

/// Where a server listens or a client connects.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7070`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A connected client socket: read + write plus a write half-close,
/// which is how a streaming client says "end of trace" and then
/// waits for the server's ack line.
pub trait Conn: Read + Write + Send {
    /// Closes the write half so the server sees end of stream.
    ///
    /// # Errors
    ///
    /// Propagates the socket shutdown failure.
    fn shutdown_write(&mut self) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }
}

impl Endpoint {
    /// Connects a client socket to this endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect failure.
    pub fn connect(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Endpoint::Tcp(addr) => Ok(Box::new(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Registry shards (stream id modulo `shards` picks the slot).
    pub shards: usize,
    /// Change-point scan windows per status snapshot.
    pub windows: usize,
    /// Worker threads for the per-snapshot scan (`0` = all cores).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            windows: nsc_trace::DEFAULT_WINDOWS,
            threads: 0,
        }
    }
}

/// Shared server state: configuration, counters, and the sharded
/// stream registry.
struct SharedState {
    config: ServeConfig,
    shutdown: AtomicBool,
    next_stream: AtomicU64,
    connections: AtomicU64,
    events: AtomicU64,
    /// Microseconds (since server start) of the first/last event
    /// applied — the ingest window the throughput counters cover.
    first_event_us: AtomicU64,
    last_event_us: AtomicU64,
    started: Instant,
    /// Slot vector: shard `id % shards` owns stream `id`. One writer
    /// per stream (its handler thread); the shard mutex guards only
    /// the map structure.
    shards: Vec<Mutex<BTreeMap<u64, Arc<Mutex<OnlineStream>>>>>,
}

impl SharedState {
    fn new(config: ServeConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| Mutex::new(BTreeMap::new()))
            .collect();
        SharedState {
            config,
            shutdown: AtomicBool::new(false),
            next_stream: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            events: AtomicU64::new(0),
            first_event_us: AtomicU64::new(NO_EVENT),
            last_event_us: AtomicU64::new(NO_EVENT),
            // nsc-lint: allow(wall-clock, reason = "uptime/throughput counters are observational, reported under status.throughput which determinism diffs strip")
            started: Instant::now(),
            shards,
        }
    }

    fn register(&self, stream: OnlineStream) -> (u64, Arc<Mutex<OnlineStream>>) {
        let id = stream.id();
        let slot = Arc::new(Mutex::new(stream));
        let shard = &self.shards[(id as usize) % self.shards.len()];
        shard
            .lock()
            .expect("shard mutex poisoned")
            .insert(id, Arc::clone(&slot));
        (id, slot)
    }

    fn note_events(&self, n: usize) {
        self.events.fetch_add(n as u64, Ordering::Relaxed);
        let now_us = self.started.elapsed().as_micros() as u64;
        self.first_event_us.fetch_min(now_us, Ordering::Relaxed);
        // NO_EVENT is u64::MAX: fetch_min absorbs it naturally above,
        // but fetch_max would keep it forever — swap it out first.
        let _ = self.last_event_us.compare_exchange(
            NO_EVENT,
            now_us,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.last_event_us.fetch_max(now_us, Ordering::Relaxed);
    }

    /// Assembles the `nsc-serve/v1` status document. Streams are
    /// reported in id order; every float is finite by construction
    /// and re-checked by the caller before hitting a socket.
    fn status_json(&self) -> Value {
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let events = self.events.load(Ordering::Relaxed);
        let first = self.first_event_us.load(Ordering::Relaxed);
        let last = self.last_event_us.load(Ordering::Relaxed);
        let ingest_secs = if first == NO_EVENT || last == NO_EVENT || last < first {
            0.0
        } else {
            // Floor at 1µs so a burst faster than the clock's
            // resolution reports a finite rate, never +inf.
            ((last - first).max(1)) as f64 / 1e6
        };
        let events_per_sec = if ingest_secs > 0.0 {
            events as f64 / ingest_secs
        } else {
            0.0
        };
        let mut ordered: BTreeMap<u64, Arc<Mutex<OnlineStream>>> = BTreeMap::new();
        for shard in &self.shards {
            for (id, slot) in shard.lock().expect("shard mutex poisoned").iter() {
                ordered.insert(*id, Arc::clone(slot));
            }
        }
        let streams: Vec<Value> = ordered
            .values()
            .map(|slot| {
                slot.lock()
                    .expect("stream mutex poisoned")
                    .snapshot(self.config.windows, self.config.threads)
            })
            .collect();
        json!({
            "schema": SERVE_SCHEMA,
            "command": "status",
            "config": {
                "shards": self.shards.len(),
                "windows": self.config.windows,
                "threads": self.config.threads,
            },
            "totals": {
                "connections": self.connections.load(Ordering::Relaxed),
                "streams": streams.len(),
                "events": events,
            },
            "throughput": {
                "uptime_secs": uptime_secs,
                "ingest_secs": ingest_secs,
                "events_per_sec": events_per_sec,
            },
            "streams": streams,
        })
    }
}

/// One line of `nsc-serve/v1` JSON plus newline, flushed.
fn write_json_line<W: Write>(writer: &mut W, doc: &Value) -> io::Result<()> {
    let mut line = serde_json::to_vec(doc).map_err(io::Error::other)?;
    line.push(b'\n');
    writer.write_all(&line)?;
    writer.flush()
}

/// Handles one accepted connection: a `status` query or a trace
/// stream (see the crate docs for the wire protocol).
fn handle_connection<R: Read, W: Write>(state: &Arc<SharedState>, read: R, mut write: W) {
    state.connections.fetch_add(1, Ordering::Relaxed);
    let mut source = BufReader::new(read);
    let mut first = String::new();
    match source.read_line(&mut first) {
        Ok(0) | Err(_) => return,
        Ok(_) => {}
    }
    if first.trim() == "status" {
        let status = state.status_json();
        let doc = match check_finite_json(&status) {
            Ok(()) => status,
            Err(e) => json!({"schema": SERVE_SCHEMA, "error": e.to_string()}),
        };
        let _ = write_json_line(&mut write, &doc);
        return;
    }
    // A trace stream: re-attach the already-consumed header line in
    // front of the socket and hand the whole thing to the strict
    // reader — chunk boundaries, CRLF, and a missing final newline
    // are all its problem, handled identically to the batch path.
    let chained = Cursor::new(first.into_bytes()).chain(source);
    let mut reader = match TraceReader::new(chained) {
        Ok(reader) => reader,
        Err(e) => {
            let _ = write_json_line(
                &mut write,
                &json!({"schema": SERVE_SCHEMA, "error": e.to_string()}),
            );
            return;
        }
    };
    let id = state.next_stream.fetch_add(1, Ordering::Relaxed) + 1;
    let (_, slot) = state.register(OnlineStream::new(id, reader.header().alphabet_bits));
    let mut batch = Vec::with_capacity(EVENT_BATCH);
    let mut failure: Option<String> = None;
    loop {
        batch.clear();
        let mut eof = false;
        while batch.len() < EVENT_BATCH {
            match reader.read_event() {
                Ok(Some(event)) => batch.push(event),
                Ok(None) => {
                    eof = true;
                    break;
                }
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        if !batch.is_empty() {
            let mut stream = slot.lock().expect("stream mutex poisoned");
            for event in &batch {
                stream.observe(event);
            }
            drop(stream);
            state.note_events(batch.len());
        }
        if eof || failure.is_some() {
            break;
        }
    }
    let events = reader.events_read();
    let ack = match failure {
        None => json!({"schema": SERVE_SCHEMA, "stream": id, "events": events}),
        Some(message) => {
            slot.lock()
                .expect("stream mutex poisoned")
                .set_error(message.clone());
            json!({"schema": SERVE_SCHEMA, "stream": id, "events": events, "error": message})
        }
    };
    let _ = write_json_line(&mut write, &ack);
}

/// The running server: bound listeners, acceptor threads, and the
/// shared registry. Dropping without [`shutdown`](Server::shutdown)
/// detaches the threads (the process-exit path of the CLI).
pub struct Server {
    state: Arc<SharedState>,
    acceptors: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds every endpoint and starts accepting connections.
    ///
    /// TCP endpoints may use port `0`; the chosen port is available
    /// from [`tcp_addr`](Server::tcp_addr). A stale Unix socket file
    /// at the requested path is removed before binding.
    ///
    /// # Errors
    ///
    /// Propagates the first bind failure; no endpoints means
    /// [`io::ErrorKind::InvalidInput`].
    pub fn bind(endpoints: &[Endpoint], config: ServeConfig) -> io::Result<Server> {
        if endpoints.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "nsc serve needs at least one listen endpoint",
            ));
        }
        let state = Arc::new(SharedState::new(config));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut acceptors = Vec::new();
        let mut tcp_addr = None;
        #[cfg(unix)]
        let mut unix_path = None;
        for endpoint in endpoints {
            match endpoint {
                Endpoint::Tcp(addr) => {
                    let listener = TcpListener::bind(addr.as_str())?;
                    listener.set_nonblocking(true)?;
                    tcp_addr = Some(listener.local_addr()?);
                    acceptors.push(spawn_tcp_acceptor(
                        listener,
                        Arc::clone(&state),
                        Arc::clone(&handlers),
                    ));
                }
                #[cfg(unix)]
                Endpoint::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    listener.set_nonblocking(true)?;
                    unix_path = Some(path.clone());
                    acceptors.push(spawn_unix_acceptor(
                        listener,
                        Arc::clone(&state),
                        Arc::clone(&handlers),
                    ));
                }
            }
        }
        Ok(Server {
            state,
            acceptors,
            handlers,
            tcp_addr,
            #[cfg(unix)]
            unix_path,
        })
    }

    /// The bound TCP address, when a TCP endpoint was requested.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The current status document (the same one the `status` wire
    /// query returns).
    #[must_use]
    pub fn status(&self) -> Value {
        self.state.status_json()
    }

    /// Blocks until [`shutdown`](Server::shutdown) is called from
    /// another thread (or forever, for the CLI's run-until-killed
    /// mode).
    pub fn wait(&self) {
        while !self.state.shutdown.load(Ordering::Relaxed) {
            thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stops accepting, joins every acceptor and every finished
    /// handler thread, and removes the Unix socket file. Handler
    /// threads still blocked on a live client connection are joined
    /// too — callers should close their clients first.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for handler in handlers {
            let _ = handler.join();
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn spawn_tcp_acceptor(
    listener: TcpListener,
    state: Arc<SharedState>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((sock, _)) => {
                if sock.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(writer) = sock.try_clone() else {
                    continue;
                };
                let conn_state = Arc::clone(&state);
                let handle = thread::spawn(move || handle_connection(&conn_state, sock, writer));
                handlers.lock().expect("handler list poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    })
}

#[cfg(unix)]
fn spawn_unix_acceptor(
    listener: UnixListener,
    state: Arc<SharedState>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((sock, _)) => {
                if sock.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(writer) = sock.try_clone() else {
                    continue;
                };
                let conn_state = Arc::clone(&state);
                let handle = thread::spawn(move || handle_connection(&conn_state, sock, writer));
                handlers.lock().expect("handler list poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    })
}

/// Queries a running server's status endpoint: connects, sends the
/// literal `status` line, and parses the one-line JSON reply.
///
/// # Errors
///
/// A human-readable message on connect/write/read failure or a
/// non-JSON reply.
pub fn query_status(endpoint: &Endpoint) -> Result<Value, String> {
    let mut conn = endpoint
        .connect()
        .map_err(|e| format!("cannot connect to status endpoint: {e}"))?;
    conn.write_all(b"status\n")
        .and_then(|()| conn.flush())
        .map_err(|e| format!("cannot send status query: {e}"))?;
    conn.shutdown_write()
        .map_err(|e| format!("cannot half-close status query: {e}"))?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)
        .map_err(|e| format!("cannot read status reply: {e}"))?;
    serde_json::from_str(reply.trim())
        .map_err(|e| format!("status reply is not valid JSON: {e} (got {reply:?})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_trace::TRACE_SCHEMA;

    fn tcp_server() -> (Server, Endpoint) {
        let server = Server::bind(
            &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
            ServeConfig {
                shards: 4,
                windows: 4,
                threads: 1,
            },
        )
        .unwrap();
        let endpoint = Endpoint::Tcp(server.tcp_addr().unwrap().to_string());
        (server, endpoint)
    }

    fn stream_text(endpoint: &Endpoint, text: &str) -> Value {
        let mut conn = endpoint.connect().unwrap();
        conn.write_all(text.as_bytes()).unwrap();
        conn.flush().unwrap();
        conn.shutdown_write().unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        serde_json::from_str(reply.trim()).unwrap()
    }

    #[test]
    fn streams_ack_and_appear_in_status() {
        let (server, endpoint) = tcp_server();
        let trace = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"alphabet_bits\":1}}\n\
             {{\"t\":0,\"ev\":\"send\",\"sym\":1}}\n\
             {{\"t\":1,\"ev\":\"recv\",\"sym\":1}}\n\
             {{\"t\":2,\"ev\":\"send\",\"sym\":0}}\n\
             {{\"t\":3,\"ev\":\"del\",\"sym\":0}}"
        );
        // No trailing newline on the last line: socket streams end
        // mid-buffer and every event must still count.
        let ack = stream_text(&endpoint, &trace);
        assert_eq!(ack["schema"], json!(SERVE_SCHEMA));
        assert_eq!(ack["events"], json!(4));
        assert!(ack.get("error").is_none());
        let status = query_status(&endpoint).unwrap();
        assert_eq!(status["schema"], json!(SERVE_SCHEMA));
        assert_eq!(status["totals"]["events"], json!(4));
        assert_eq!(status["streams"][0]["events"], json!(4));
        assert_eq!(status["streams"][0]["status"], json!("ok"));
        assert!(status["throughput"]["events_per_sec"].as_f64().unwrap() >= 0.0);
        server.shutdown();
    }

    #[test]
    fn malformed_stream_reports_error_but_keeps_partial_counts() {
        let (server, endpoint) = tcp_server();
        let trace = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"alphabet_bits\":1}}\n\
             {{\"t\":0,\"ev\":\"send\",\"sym\":1}}\n\
             {{\"t\":1,\"ev\":\"warp\"}}\n"
        );
        let ack = stream_text(&endpoint, &trace);
        assert_eq!(ack["events"], json!(1));
        assert!(ack["error"].as_str().unwrap().contains("warp"));
        let status = query_status(&endpoint).unwrap();
        assert_eq!(status["streams"][0]["events"], json!(1));
        assert!(status["streams"][0]["error"]
            .as_str()
            .unwrap()
            .contains("warp"));
        server.shutdown();
    }

    #[test]
    fn bad_header_is_rejected_with_an_error_line() {
        let (server, endpoint) = tcp_server();
        let reply = stream_text(
            &endpoint,
            "{\"schema\":\"nsc-trace/v9\",\"alphabet_bits\":1}\n",
        );
        assert!(reply["error"].as_str().unwrap().contains("nsc-trace/v9"));
        server.shutdown();
    }

    #[test]
    fn empty_status_document_is_finite_and_wellformed() {
        let (server, endpoint) = tcp_server();
        let status = query_status(&endpoint).unwrap();
        assert_eq!(status["totals"]["streams"], json!(0));
        assert_eq!(status["throughput"]["events_per_sec"], json!(0.0));
        check_finite_json(&status).unwrap();
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_endpoint_round_trips() {
        let dir = std::env::temp_dir().join(format!("nsc-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let server = Server::bind(
            &[Endpoint::Unix(path.clone())],
            ServeConfig {
                shards: 2,
                windows: 4,
                threads: 1,
            },
        )
        .unwrap();
        let endpoint = Endpoint::Unix(path.clone());
        let trace = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"alphabet_bits\":1}}\n\
             {{\"t\":0,\"ev\":\"send\",\"sym\":1}}\n\
             {{\"t\":1,\"ev\":\"recv\",\"sym\":1}}\n"
        );
        let ack = stream_text(&endpoint, &trace);
        assert_eq!(ack["events"], json!(2));
        let status = query_status(&endpoint).unwrap();
        assert_eq!(status["totals"]["events"], json!(2));
        server.shutdown();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
