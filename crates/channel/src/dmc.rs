//! Discrete memoryless channels: sampler, capacity, and the classic
//! closed-form families the paper compares against.

use crate::alphabet::Symbol;
use crate::error::ChannelError;
use nsc_info::blahut::{blahut_arimoto, validate_transition_matrix, BlahutOptions};
use nsc_info::entropy::binary_entropy;
use nsc_info::Distribution;
use rand::Rng;

/// A discrete memoryless channel given by its transition matrix
/// `w[x][y] = P(Y = y | X = x)`.
///
/// # Example
///
/// ```
/// use nsc_channel::dmc::Dmc;
///
/// let bsc = Dmc::binary_symmetric(0.11)?;
/// let c = bsc.capacity()?;
/// assert!((c - 0.5).abs() < 1e-3); // H(0.11) ≈ 0.4999
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dmc {
    w: Vec<Vec<f64>>,
    // Per-row sampling distributions (redundant with `w`, cached for
    // speed). Rebuilt by `Dmc::new`, which is the only constructor —
    // hence no serde derive on this type; serialize the transition
    // matrix instead.
    rows: Vec<Distribution>,
}

impl Dmc {
    /// Creates a DMC from a transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Numeric`] when the matrix is empty,
    /// ragged, or has rows that are not probability distributions.
    pub fn new(w: Vec<Vec<f64>>) -> Result<Self, ChannelError> {
        validate_transition_matrix(&w)?;
        let rows = w
            .iter()
            .map(|row| Distribution::from_weights(row))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dmc { w, rows })
    }

    /// Binary symmetric channel with crossover probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `p` is not a
    /// probability.
    pub fn binary_symmetric(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        Dmc::new(vec![vec![1.0 - p, p], vec![p, 1.0 - p]])
    }

    /// Binary erasure channel with erasure probability `e`. Output 2
    /// is the erasure flag.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `e` is not a
    /// probability.
    pub fn binary_erasure(e: f64) -> Result<Self, ChannelError> {
        check_prob("e", e)?;
        Dmc::new(vec![vec![1.0 - e, 0.0, e], vec![0.0, 1.0 - e, e]])
    }

    /// Z-channel: input 0 is noiseless, input 1 flips to 0 with
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `p` is not a
    /// probability.
    pub fn z_channel(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        Dmc::new(vec![vec![1.0, 0.0], vec![p, 1.0 - p]])
    }

    /// M-ary symmetric channel over `2^bits` symbols: total error
    /// probability `e` spread uniformly over the `M − 1` wrong
    /// symbols. This is the "converted channel" of the paper's
    /// Theorem 5 / Figure 5.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `e` is not a
    /// probability or [`ChannelError::BadSymbolWidth`] for an
    /// unsupported width.
    pub fn mary_symmetric(bits: u32, e: f64) -> Result<Self, ChannelError> {
        check_prob("e", e)?;
        let m = crate::alphabet::Alphabet::new(bits)?.size();
        let off = if m > 1 { e / (m as f64 - 1.0) } else { 0.0 };
        let mut w = vec![vec![off; m]; m];
        for (i, row) in w.iter_mut().enumerate() {
            row[i] = 1.0 - e;
        }
        Dmc::new(w)
    }

    /// Number of input symbols.
    pub fn inputs(&self) -> usize {
        self.w.len()
    }

    /// Number of output symbols.
    pub fn outputs(&self) -> usize {
        self.w[0].len()
    }

    /// Borrow the transition matrix.
    pub fn transition_matrix(&self) -> &[Vec<f64>] {
        &self.w
    }

    /// Capacity in bits per use, via Blahut–Arimoto at the default
    /// (tight) tolerance. Near-degenerate channels (e.g. a Z-channel
    /// with crossover close to 1) converge sublinearly — use
    /// [`Self::capacity_with`] with a looser tolerance for those.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Numeric`] if the solver fails to
    /// converge within the default budget.
    pub fn capacity(&self) -> Result<f64, ChannelError> {
        Ok(blahut_arimoto(&self.w, &BlahutOptions::default())?.capacity)
    }

    /// Capacity with explicit solver options (tolerance certifies the
    /// returned gap; see [`nsc_info::blahut::BlahutResult::gap`]).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Numeric`] if the solver fails to
    /// converge within the given budget.
    pub fn capacity_with(&self, opts: &BlahutOptions) -> Result<f64, ChannelError> {
        Ok(blahut_arimoto(&self.w, opts)?.capacity)
    }

    /// Samples the channel for a single input symbol.
    ///
    /// # Panics
    ///
    /// Panics when `input` is outside the input alphabet.
    pub fn sample<R: Rng + ?Sized>(&self, input: Symbol, rng: &mut R) -> Symbol {
        let row = &self.rows[input.index() as usize];
        Symbol::from_index(row.sample_with(rng.gen::<f64>()) as u32)
    }

    /// Pushes a sequence through the channel (synchronously: one
    /// output per input).
    pub fn transmit<R: Rng + ?Sized>(&self, input: &[Symbol], rng: &mut R) -> Vec<Symbol> {
        input.iter().map(|&s| self.sample(s, rng)).collect()
    }
}

fn check_prob(name: &str, v: f64) -> Result<(), ChannelError> {
    if v.is_finite() && (0.0..=1.0).contains(&v) {
        Ok(())
    } else {
        Err(ChannelError::BadParameters(format!(
            "{name} = {v} is not a probability"
        )))
    }
}

/// Closed-form capacities for the classic families, used to
/// cross-validate the Blahut–Arimoto solver in tests and experiment
/// E10.
pub mod closed_form {
    use super::binary_entropy;

    /// Capacity of the binary symmetric channel: `1 − H(p)`.
    pub fn bsc(p: f64) -> f64 {
        1.0 - binary_entropy(p)
    }

    /// Capacity of an `N`-bit erasure channel: `N · (1 − e)` — the
    /// paper's equation (1) with erasure probability `e`.
    pub fn erasure(bits: u32, e: f64) -> f64 {
        bits as f64 * (1.0 - e)
    }

    /// Capacity of the Z-channel with 1→0 crossover `p`:
    /// `log2(1 + (1 − p) · p^{p/(1−p)})`.
    pub fn z_channel(p: f64) -> f64 {
        if p >= 1.0 {
            return 0.0;
        }
        if p <= 0.0 {
            return 1.0;
        }
        (1.0 + (1.0 - p) * p.powf(p / (1.0 - p))).log2()
    }

    /// Capacity of the M-ary symmetric channel over `2^bits` symbols
    /// with total error probability `e`:
    /// `N − H(e) − e·log2(M − 1)`.
    pub fn mary_symmetric(bits: u32, e: f64) -> f64 {
        let m = (1u64 << bits) as f64;
        (bits as f64 - binary_entropy(e) - e * (m - 1.0).log2()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        assert!(Dmc::binary_symmetric(1.5).is_err());
        assert!(Dmc::binary_erasure(-0.1).is_err());
        assert!(Dmc::z_channel(f64::NAN).is_err());
        assert!(Dmc::mary_symmetric(0, 0.1).is_err());
        assert!(Dmc::new(vec![vec![0.6, 0.6]]).is_err());
    }

    #[test]
    fn capacities_match_closed_forms() {
        for &p in &[0.05, 0.2, 0.45] {
            assert!(
                (Dmc::binary_symmetric(p).unwrap().capacity().unwrap() - closed_form::bsc(p)).abs()
                    < 1e-8
            );
            assert!(
                (Dmc::binary_erasure(p).unwrap().capacity().unwrap() - closed_form::erasure(1, p))
                    .abs()
                    < 1e-8
            );
            assert!(
                (Dmc::z_channel(p).unwrap().capacity().unwrap() - closed_form::z_channel(p)).abs()
                    < 1e-7
            );
        }
        for bits in [1u32, 2, 3] {
            let e = 0.15;
            assert!(
                (Dmc::mary_symmetric(bits, e).unwrap().capacity().unwrap()
                    - closed_form::mary_symmetric(bits, e))
                .abs()
                    < 1e-7
            );
        }
    }

    #[test]
    fn z_channel_closed_form_endpoints() {
        assert_eq!(closed_form::z_channel(0.0), 1.0);
        assert_eq!(closed_form::z_channel(1.0), 0.0);
    }

    #[test]
    fn sampling_respects_transition_probabilities() {
        let dmc = Dmc::binary_symmetric(0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let input = vec![Symbol::from_index(0); 50_000];
        let out = dmc.transmit(&input, &mut rng);
        let flips = out.iter().filter(|s| s.index() == 1).count();
        let rate = flips as f64 / input.len() as f64;
        assert!((rate - 0.2).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn erasure_channel_emits_erasure_symbol() {
        let dmc = Dmc::binary_erasure(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let out = dmc.transmit(&vec![Symbol::from_index(1); 10_000], &mut rng);
        let erased = out.iter().filter(|s| s.index() == 2).count();
        assert!((erased as f64 / 10_000.0 - 0.5).abs() < 0.02);
        // Never flips 1 to 0.
        assert!(out.iter().all(|s| s.index() != 0));
    }

    #[test]
    fn dimensions() {
        let dmc = Dmc::binary_erasure(0.3).unwrap();
        assert_eq!(dmc.inputs(), 2);
        assert_eq!(dmc.outputs(), 3);
        assert_eq!(dmc.transition_matrix().len(), 2);
    }
}
