//! Bursty (Gilbert–Elliott) deletion-insertion channels.
//!
//! Definition 1 makes the channel memoryless, but real schedulers
//! misbehave in *bursts*: a long-running background task starves the
//! receiver for many consecutive operations, producing runs of
//! deletions. This module modulates the Definition 1 parameters with
//! a two-state Markov chain (a Gilbert–Elliott model): a *good* state
//! with mild parameters and a *bad* state with harsh ones.
//!
//! The stationary average of the two parameter sets gives a matched
//! memoryless comparator, which experiment E11 uses to test how
//! robust the paper's `C·(1 − P_d)` recipe is to the i.i.d.
//! assumption.

use crate::alphabet::{Alphabet, Symbol};
use crate::di::{DiParams, Transmission};
use crate::error::ChannelError;
use crate::event::{ChannelEvent, EventLog};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hidden modulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstState {
    /// Mild parameters.
    Good,
    /// Harsh parameters.
    Bad,
}

/// A two-state Markov-modulated deletion-insertion channel.
///
/// # Example
///
/// ```
/// use nsc_channel::alphabet::Alphabet;
/// use nsc_channel::burst::GilbertElliottChannel;
/// use nsc_channel::di::DiParams;
///
/// let ch = GilbertElliottChannel::new(
///     Alphabet::binary(),
///     DiParams::deletion_only(0.01)?,   // good state
///     DiParams::deletion_only(0.6)?,    // bad state
///     0.05,                             // P(good -> bad)
///     0.25,                             // P(bad -> good)
/// )?;
/// // Stationary bad-state occupancy = 0.05 / (0.05 + 0.25).
/// assert!((ch.stationary_bad() - 1.0 / 6.0).abs() < 1e-12);
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliottChannel {
    alphabet: Alphabet,
    good: DiParams,
    bad: DiParams,
    /// Transition probability good → bad, per channel use.
    p_gb: f64,
    /// Transition probability bad → good, per channel use.
    p_bg: f64,
}

impl GilbertElliottChannel {
    /// Creates a bursty channel with per-use state transition
    /// probabilities `p_gb` (good→bad) and `p_bg` (bad→good).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when a transition
    /// probability is outside `[0, 1]` or both are zero (the state
    /// would never mix, making "stationary average" meaningless).
    pub fn new(
        alphabet: Alphabet,
        good: DiParams,
        bad: DiParams,
        p_gb: f64,
        p_bg: f64,
    ) -> Result<Self, ChannelError> {
        for (name, v) in [("p_gb", p_gb), ("p_bg", p_bg)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ChannelError::BadParameters(format!(
                    "{name} = {v} is not a probability"
                )));
            }
        }
        if p_gb + p_bg == 0.0 {
            return Err(ChannelError::BadParameters(
                "at least one transition probability must be positive".to_owned(),
            ));
        }
        Ok(GilbertElliottChannel {
            alphabet,
            good,
            bad,
            p_gb,
            p_bg,
        })
    }

    /// The channel's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Parameters of the given state.
    pub fn params(&self, state: BurstState) -> &DiParams {
        match state {
            BurstState::Good => &self.good,
            BurstState::Bad => &self.bad,
        }
    }

    /// Stationary probability of the bad state:
    /// `p_gb / (p_gb + p_bg)`.
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Mean burst (bad-state sojourn) length in channel uses:
    /// `1 / p_bg` (infinite if `p_bg = 0`).
    pub fn mean_burst_len(&self) -> f64 {
        if self.p_bg == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_bg
        }
    }

    /// The time-averaged (stationary) event probabilities — the
    /// matched memoryless comparator for this bursty channel.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] if the average lands
    /// outside the valid simplex (cannot happen for valid state
    /// parameters, but checked defensively).
    pub fn average_params(&self) -> Result<DiParams, ChannelError> {
        let w_bad = self.stationary_bad();
        let w_good = 1.0 - w_bad;
        let avg = |f: fn(&DiParams) -> f64| w_good * f(&self.good) + w_bad * f(&self.bad);
        // The average substitution rate must be weighted by each
        // state's transmission share, not its time share.
        let t_good = w_good * self.good.p_t();
        let t_bad = w_bad * self.bad.p_t();
        let p_s = if t_good + t_bad > 0.0 {
            (t_good * self.good.p_s() + t_bad * self.bad.p_s()) / (t_good + t_bad)
        } else {
            0.0
        };
        DiParams::new(avg(DiParams::p_d), avg(DiParams::p_i), p_s)
    }

    /// Pushes a sequence through the bursty channel. Semantics match
    /// [`crate::di::DeletionInsertionChannel::transmit`], with the
    /// hidden state advancing one step per channel use.
    pub fn transmit<R: Rng + ?Sized>(&self, input: &[Symbol], rng: &mut R) -> Transmission {
        let mut events = EventLog::new();
        let mut received = Vec::with_capacity(input.len());
        // Start from the stationary distribution so finite runs are
        // unbiased.
        let mut state = if rng.gen::<f64>() < self.stationary_bad() {
            BurstState::Bad
        } else {
            BurstState::Good
        };
        let mut queue = input.iter().copied();
        let mut head = queue.next();
        while let Some(sym) = head {
            let p = self.params(state);
            let u: f64 = rng.gen();
            if u < p.p_d() {
                events.push(ChannelEvent::Deletion { symbol: sym });
                head = queue.next();
            } else if u < p.p_d() + p.p_i() {
                let ins = self.alphabet.random(rng);
                events.push(ChannelEvent::Insertion { symbol: ins });
                received.push(ins);
            } else {
                let substituted = p.p_s() > 0.0 && rng.gen::<f64>() < p.p_s();
                let out = if substituted {
                    self.alphabet.random_other(rng, sym)
                } else {
                    sym
                };
                events.push(ChannelEvent::Transmission {
                    sent: sym,
                    received: out,
                });
                received.push(out);
                head = queue.next();
            }
            // Advance the hidden state.
            let flip = rng.gen::<f64>();
            state = match state {
                BurstState::Good if flip < self.p_gb => BurstState::Bad,
                BurstState::Bad if flip < self.p_bg => BurstState::Good,
                s => s,
            };
        }
        Transmission { received, events }
    }

    /// Opens a stateful per-use session, for protocols that drive
    /// the channel one use at a time (e.g. resend with feedback in
    /// the E11 ablation). The hidden state starts from the stationary
    /// distribution.
    pub fn session<R: Rng + ?Sized>(&self, rng: &mut R) -> GeSession {
        let state = if rng.gen::<f64>() < self.stationary_bad() {
            BurstState::Bad
        } else {
            BurstState::Good
        };
        GeSession {
            channel: *self,
            state,
        }
    }

    /// Longest run of consecutive deletions in an event log — the
    /// burstiness statistic experiment E11 reports.
    pub fn longest_deletion_run(events: &EventLog) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for e in events.events() {
            if matches!(e, ChannelEvent::Deletion { .. }) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }
}

/// A stateful per-use handle on a [`GilbertElliottChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeSession {
    channel: GilbertElliottChannel,
    state: BurstState,
}

impl GeSession {
    /// The current hidden state (exposed for diagnostics; a receiver
    /// must not peek).
    pub fn state(&self) -> BurstState {
        self.state
    }

    /// Performs one channel use with the given queued symbol,
    /// advancing the hidden state. Semantics per state match
    /// [`crate::di::DeletionInsertionChannel::use_once`].
    pub fn use_once<R: Rng + ?Sized>(
        &mut self,
        queued: Option<Symbol>,
        rng: &mut R,
    ) -> crate::di::UseOutcome {
        use crate::di::UseOutcome;
        let p = *self.channel.params(self.state);
        let u: f64 = rng.gen();
        let outcome = if u < p.p_d() {
            match queued {
                Some(_) => UseOutcome::Deleted,
                None => UseOutcome::Idle,
            }
        } else if u < p.p_d() + p.p_i() {
            UseOutcome::Inserted(self.channel.alphabet.random(rng))
        } else {
            match queued {
                Some(sym) => {
                    let substituted = p.p_s() > 0.0 && rng.gen::<f64>() < p.p_s();
                    let received = if substituted {
                        self.channel.alphabet.random_other(rng, sym)
                    } else {
                        sym
                    };
                    UseOutcome::Transmitted {
                        received,
                        substituted,
                    }
                }
                None => UseOutcome::Idle,
            }
        };
        let flip = rng.gen::<f64>();
        self.state = match self.state {
            BurstState::Good if flip < self.channel.p_gb => BurstState::Bad,
            BurstState::Bad if flip < self.channel.p_bg => BurstState::Good,
            s => s,
        };
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bursty(p_gb: f64, p_bg: f64) -> GilbertElliottChannel {
        GilbertElliottChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.02).unwrap(),
            DiParams::deletion_only(0.7).unwrap(),
            p_gb,
            p_bg,
        )
        .unwrap()
    }

    fn input(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index(i as u32 % 2)).collect()
    }

    #[test]
    fn validation() {
        let a = Alphabet::binary();
        let g = DiParams::noiseless();
        let b = DiParams::deletion_only(0.5).unwrap();
        assert!(GilbertElliottChannel::new(a, g, b, 1.5, 0.1).is_err());
        assert!(GilbertElliottChannel::new(a, g, b, 0.1, -0.1).is_err());
        assert!(GilbertElliottChannel::new(a, g, b, 0.0, 0.0).is_err());
        assert!(GilbertElliottChannel::new(a, g, b, 0.1, 0.1).is_ok());
    }

    #[test]
    fn stationary_and_burst_length() {
        let ch = bursty(0.1, 0.3);
        assert!((ch.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ch.mean_burst_len() - 1.0 / 0.3).abs() < 1e-12);
        let absorbing = GilbertElliottChannel::new(
            Alphabet::binary(),
            DiParams::noiseless(),
            DiParams::deletion_only(0.5).unwrap(),
            0.1,
            0.0,
        )
        .unwrap();
        assert_eq!(absorbing.mean_burst_len(), f64::INFINITY);
    }

    #[test]
    fn average_params_interpolate() {
        let ch = bursty(0.1, 0.1); // half good, half bad
        let avg = ch.average_params().unwrap();
        assert!((avg.p_d() - (0.02 + 0.7) / 2.0).abs() < 1e-12);
        assert_eq!(avg.p_i(), 0.0);
    }

    #[test]
    fn empirical_deletion_rate_matches_stationary_average() {
        let ch = bursty(0.02, 0.06);
        let mut rng = StdRng::seed_from_u64(1);
        let out = ch.transmit(&input(200_000), &mut rng);
        let expected = ch.average_params().unwrap().p_d();
        let got = out.events.empirical_deletion_rate();
        assert!(
            (got - expected).abs() < 0.02,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn bursty_channel_has_longer_deletion_runs_than_memoryless() {
        let ch = bursty(0.01, 0.05);
        let mut rng = StdRng::seed_from_u64(2);
        let bursty_out = ch.transmit(&input(100_000), &mut rng);
        // Matched memoryless channel with the same average p_d.
        let avg = ch.average_params().unwrap();
        let flat = crate::di::DeletionInsertionChannel::new(Alphabet::binary(), avg);
        let flat_out = flat.transmit(&input(100_000), &mut rng);
        let run_bursty = GilbertElliottChannel::longest_deletion_run(&bursty_out.events);
        let run_flat = GilbertElliottChannel::longest_deletion_run(&flat_out.events);
        assert!(
            run_bursty > 2 * run_flat,
            "bursty {run_bursty} vs flat {run_flat}"
        );
    }

    #[test]
    fn conservation_laws_still_hold() {
        let ch = bursty(0.05, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let inp = input(20_000);
        let out = ch.transmit(&inp, &mut rng);
        assert_eq!(
            inp.len(),
            out.events.transmissions() + out.events.deletions()
        );
        assert_eq!(
            out.received.len(),
            out.events.transmissions() + out.events.insertions()
        );
    }

    #[test]
    fn session_use_once_matches_transmit_statistics() {
        let ch = bursty(0.05, 0.2);
        let mut rng = StdRng::seed_from_u64(10);
        let mut session = ch.session(&mut rng);
        let mut deletions = 0usize;
        let mut uses = 0usize;
        let sym = Symbol::from_index(1);
        for _ in 0..100_000 {
            uses += 1;
            if matches!(
                session.use_once(Some(sym), &mut rng),
                crate::di::UseOutcome::Deleted
            ) {
                deletions += 1;
            }
        }
        let expected = ch.average_params().unwrap().p_d();
        let got = deletions as f64 / uses as f64;
        assert!(
            (got - expected).abs() < 0.02,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn session_idles_without_queue_in_deletion_only_channel() {
        let ch = bursty(0.1, 0.1);
        let mut rng = StdRng::seed_from_u64(11);
        let mut session = ch.session(&mut rng);
        for _ in 0..100 {
            assert!(matches!(
                session.use_once(None, &mut rng),
                crate::di::UseOutcome::Idle
            ));
        }
    }

    #[test]
    fn substitution_weighting_in_average() {
        // Good state transmits often with p_s = 0; bad state rarely
        // transmits but always substitutes. The average p_s must be
        // transmission-weighted, i.e. far below the time-average.
        let ch = GilbertElliottChannel::new(
            Alphabet::new(2).unwrap(),
            DiParams::new(0.0, 0.0, 0.0).unwrap(),
            DiParams::new(0.9, 0.0, 1.0).unwrap(),
            0.5,
            0.5,
        )
        .unwrap();
        let avg = ch.average_params().unwrap();
        // Transmission shares: good 0.5*1.0 = 0.5, bad 0.5*0.1 = 0.05.
        let expected = 0.05 / 0.55;
        assert!((avg.p_s() - expected).abs() < 1e-12);
    }
}
