//! Empirical estimation of deletion-insertion parameters.
//!
//! §4.3 of the paper prescribes: estimate the traditional capacity
//! `C`, *measure* `P_d`, report `C · (1 − P_d)`. This module turns
//! event logs (ground truth from simulators, or instrumented traces
//! from the scheduler substrate) into parameter estimates with
//! confidence intervals, and offers a blind length-based estimator for
//! when only input/output counts are observable.

use crate::di::DiParams;
use crate::error::ChannelError;
use crate::event::EventLog;
use nsc_info::stats::{chi_square_statistic, wilson_interval, ProportionInterval};
use serde::{Deserialize, Serialize};

/// Point estimates and 95% Wilson intervals for the four Definition 1
/// parameters, measured from an event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiEstimate {
    /// Deletion rate `P_d` (per channel use).
    pub p_d: ProportionInterval,
    /// Insertion rate `P_i` (per channel use).
    pub p_i: ProportionInterval,
    /// Transmission rate `P_t` (per channel use).
    pub p_t: ProportionInterval,
    /// Substitution rate `P_s` (per transmission); `None` when the
    /// log contains no transmissions.
    pub p_s: Option<ProportionInterval>,
    /// Number of channel uses observed.
    pub uses: usize,
}

/// The default normal quantile used for intervals (95% two-sided).
pub const DEFAULT_Z: f64 = 1.959_963_984_540_054;

/// Estimates Definition 1 parameters from a ground-truth event log.
///
/// # Errors
///
/// Returns [`ChannelError::BadParameters`] when the log is empty.
///
/// # Example
///
/// ```
/// use nsc_channel::{Alphabet, DeletionInsertionChannel, DiParams, Symbol};
/// use nsc_channel::stats::estimate_from_log;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let ch = DeletionInsertionChannel::new(
///     Alphabet::binary(), DiParams::new(0.2, 0.1, 0.0)?);
/// let mut rng = StdRng::seed_from_u64(5);
/// let input = vec![Symbol::from_index(0); 50_000];
/// let out = ch.transmit(&input, &mut rng);
/// let est = estimate_from_log(&out.events)?;
/// assert!(est.p_d.contains(0.2));
/// assert!(est.p_i.contains(0.1));
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
pub fn estimate_from_log(log: &EventLog) -> Result<DiEstimate, ChannelError> {
    let uses = log.uses();
    if uses == 0 {
        return Err(ChannelError::BadParameters(
            "cannot estimate parameters from an empty event log".to_owned(),
        ));
    }
    let n = uses as u64;
    let p_d = wilson_interval(log.deletions() as u64, n, DEFAULT_Z)?;
    let p_i = wilson_interval(log.insertions() as u64, n, DEFAULT_Z)?;
    let p_t = wilson_interval(log.transmissions() as u64, n, DEFAULT_Z)?;
    let p_s = if log.transmissions() > 0 {
        Some(wilson_interval(
            log.substitutions() as u64,
            log.transmissions() as u64,
            DEFAULT_Z,
        )?)
    } else {
        None
    };
    Ok(DiEstimate {
        p_d,
        p_i,
        p_t,
        p_s,
        uses,
    })
}

/// Pearson chi-square statistic of an observed event log against
/// configured parameters, over the four outcome categories of
/// Figure 2. Used by experiment E1 to certify that the simulator
/// realizes Definition 1.
///
/// # Errors
///
/// Returns [`ChannelError::Numeric`] when the log is empty or an
/// impossible category was observed.
pub fn goodness_of_fit(log: &EventLog, params: &DiParams) -> Result<f64, ChannelError> {
    Ok(chi_square_statistic(
        &log.category_counts(),
        &params.category_probs(),
    )?)
}

/// Blind estimate of the deletion probability of a *deletion-only*
/// channel from input/output lengths alone: `1 − received / sent`.
/// This is what an attacker or auditor can measure without ground
/// truth, using a pilot sequence of known length.
///
/// # Errors
///
/// Returns [`ChannelError::BadParameters`] when `sent == 0` or
/// `received > sent`.
pub fn blind_deletion_estimate(sent: usize, received: usize) -> Result<f64, ChannelError> {
    if sent == 0 {
        return Err(ChannelError::BadParameters(
            "pilot sequence must be non-empty".to_owned(),
        ));
    }
    if received > sent {
        return Err(ChannelError::BadParameters(format!(
            "received {received} exceeds sent {sent} on a deletion-only channel"
        )));
    }
    Ok(1.0 - received as f64 / sent as f64)
}

/// Blind estimate of `(P_d, P_i)` for a deletion-insertion channel
/// from pilot statistics: the sender transmits `sent` symbols, the
/// receiver counts `received` symbols of which `foreign` are
/// identifiably spurious (e.g. out-of-pilot-alphabet markers). The
/// method equates `received − foreign·size_correction ≈ transmitted`.
/// With fully identifiable insertions (`foreign` exact), the
/// per-use rates follow from the Definition 1 flow balance:
/// `uses = sent + foreign` (each use either consumes a queued symbol
/// or inserts), `P_i = foreign / uses`,
/// `P_d = (sent − (received − foreign)) / uses`.
///
/// # Errors
///
/// Returns [`ChannelError::BadParameters`] on inconsistent counts.
pub fn blind_di_estimate(
    sent: usize,
    received: usize,
    foreign: usize,
) -> Result<(f64, f64), ChannelError> {
    if sent == 0 {
        return Err(ChannelError::BadParameters(
            "pilot sequence must be non-empty".to_owned(),
        ));
    }
    if foreign > received {
        return Err(ChannelError::BadParameters(format!(
            "foreign {foreign} exceeds received {received}"
        )));
    }
    let genuine = received - foreign;
    if genuine > sent {
        return Err(ChannelError::BadParameters(format!(
            "genuine receptions {genuine} exceed sent {sent}"
        )));
    }
    let uses = (sent + foreign) as f64;
    Ok(((sent - genuine) as f64 / uses, foreign as f64 / uses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::di::DeletionInsertionChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_channel(p_d: f64, p_i: f64, p_s: f64, n: usize, seed: u64) -> EventLog {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(2).unwrap(),
            DiParams::new(p_d, p_i, p_s).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<Symbol> = (0..n).map(|i| Symbol::from_index(i as u32 % 4)).collect();
        ch.transmit(&input, &mut rng).events
    }

    #[test]
    fn estimates_cover_true_parameters() {
        let log = run_channel(0.15, 0.1, 0.2, 80_000, 42);
        let est = estimate_from_log(&log).unwrap();
        assert!(est.p_d.contains(0.15), "{:?}", est.p_d);
        assert!(est.p_i.contains(0.1), "{:?}", est.p_i);
        assert!(est.p_t.contains(0.75), "{:?}", est.p_t);
        assert!(est.p_s.unwrap().contains(0.2));
        assert!(est.uses > 80_000);
    }

    #[test]
    fn estimate_from_empty_log_fails() {
        assert!(estimate_from_log(&EventLog::new()).is_err());
    }

    #[test]
    fn no_transmissions_means_no_substitution_estimate() {
        // Deletion-only channel with p_d = 1 never transmits.
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(1.0, 0.0, 0.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = ch.transmit(&[Symbol::from_index(0); 100], &mut rng);
        let est = estimate_from_log(&out.events).unwrap();
        assert!(est.p_s.is_none());
        assert_eq!(est.p_d.estimate, 1.0);
    }

    #[test]
    fn goodness_of_fit_accepts_matched_parameters() {
        let params = DiParams::new(0.2, 0.1, 0.3).unwrap();
        let ch = DeletionInsertionChannel::new(Alphabet::new(2).unwrap(), params);
        let mut rng = StdRng::seed_from_u64(7);
        let input: Vec<Symbol> = (0..50_000).map(|i| Symbol::from_index(i % 4)).collect();
        let out = ch.transmit(&input, &mut rng);
        let stat = goodness_of_fit(&out.events, &params).unwrap();
        // 3 degrees of freedom; anything below mean + 5 sigma passes.
        assert!(stat < nsc_info::stats::chi_square_threshold(3, 5.0));
    }

    #[test]
    fn goodness_of_fit_rejects_mismatched_parameters() {
        let log = run_channel(0.4, 0.0, 0.0, 50_000, 3);
        let wrong = DiParams::new(0.1, 0.0, 0.0).unwrap();
        let stat = goodness_of_fit(&log, &wrong).unwrap();
        assert!(stat > nsc_info::stats::chi_square_threshold(3, 5.0));
    }

    #[test]
    fn blind_deletion_estimator() {
        assert!((blind_deletion_estimate(1000, 800).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(blind_deletion_estimate(10, 10).unwrap(), 0.0);
        assert!(blind_deletion_estimate(0, 0).is_err());
        assert!(blind_deletion_estimate(10, 11).is_err());
    }

    #[test]
    fn blind_di_estimator_consistency() {
        // 1000 sent, 700 genuine arrivals, 100 insertions:
        // uses = 1100, p_i = 100/1100, p_d = 300/1100.
        let (p_d, p_i) = blind_di_estimate(1000, 800, 100).unwrap();
        assert!((p_i - 100.0 / 1100.0).abs() < 1e-12);
        assert!((p_d - 300.0 / 1100.0).abs() < 1e-12);
        assert!(blind_di_estimate(0, 0, 0).is_err());
        assert!(blind_di_estimate(10, 5, 6).is_err());
        assert!(blind_di_estimate(10, 20, 2).is_err());
    }

    #[test]
    fn blind_di_estimator_matches_simulation() {
        let params = DiParams::new(0.25, 0.15, 0.0).unwrap();
        let ch = DeletionInsertionChannel::new(Alphabet::new(2).unwrap(), params);
        let mut rng = StdRng::seed_from_u64(9);
        let sent = 100_000usize;
        let input: Vec<Symbol> = (0..sent)
            .map(|i| Symbol::from_index(i as u32 % 4))
            .collect();
        let out = ch.transmit(&input, &mut rng);
        // Simulate perfect insertion identification via the log.
        let foreign = out.events.insertions();
        let (p_d_hat, p_i_hat) = blind_di_estimate(sent, out.received.len(), foreign).unwrap();
        assert!((p_d_hat - 0.25).abs() < 0.01, "p_d_hat = {p_d_hat}");
        assert!((p_i_hat - 0.15).abs() < 0.01, "p_i_hat = {p_i_hat}");
    }
}

/// First-order Markov fit of an event indicator sequence (e.g.
/// deletions): the observable burstiness model behind experiment
/// E11's Gilbert–Elliott ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovBurstFit {
    /// `P(event at use k+1 | event at use k)`.
    pub p_after_event: f64,
    /// `P(event at use k+1 | no event at use k)`.
    pub p_after_gap: f64,
    /// Stationary event rate implied by the fit,
    /// `p_after_gap / (p_after_gap + 1 − p_after_event)`.
    pub stationary_rate: f64,
    /// Burstiness index `p_after_event / stationary_rate`: 1 for a
    /// memoryless channel, larger when events cluster.
    pub burstiness: f64,
}

/// Fits a first-order Markov chain to the deletion indicator sequence
/// of an event log. Unlike the hidden Gilbert–Elliott parameters,
/// these transition probabilities are directly observable, so the fit
/// needs no EM: it is exact moment matching on transition counts.
///
/// # Errors
///
/// Returns [`ChannelError::BadParameters`] when the log has fewer
/// than two events (no transitions to count).
pub fn fit_deletion_bursts(log: &EventLog) -> Result<MarkovBurstFit, ChannelError> {
    let events = log.events();
    if events.len() < 2 {
        return Err(ChannelError::BadParameters(
            "need at least two channel uses to fit transitions".to_owned(),
        ));
    }
    let indicator: Vec<bool> = events
        .iter()
        .map(|e| matches!(e, crate::event::ChannelEvent::Deletion { .. }))
        .collect();
    let mut after_event = (0usize, 0usize); // (events, total)
    let mut after_gap = (0usize, 0usize);
    for w in indicator.windows(2) {
        let bucket = if w[0] {
            &mut after_event
        } else {
            &mut after_gap
        };
        bucket.1 += 1;
        if w[1] {
            bucket.0 += 1;
        }
    }
    let rate = |b: (usize, usize)| {
        if b.1 == 0 {
            0.0
        } else {
            b.0 as f64 / b.1 as f64
        }
    };
    let p_after_event = rate(after_event);
    let p_after_gap = rate(after_gap);
    let denom = p_after_gap + 1.0 - p_after_event;
    let stationary = if denom > 0.0 {
        p_after_gap / denom
    } else {
        // p_after_event = 1 and p_after_gap = 0: an absorbing event
        // state; report the empirical rate.
        log.empirical_deletion_rate()
    };
    Ok(MarkovBurstFit {
        p_after_event,
        p_after_gap,
        stationary_rate: stationary,
        burstiness: if stationary > 0.0 {
            p_after_event / stationary
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod burst_fit_tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::burst::GilbertElliottChannel;
    use crate::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index(i as u32 % 2)).collect()
    }

    #[test]
    fn memoryless_channel_fits_burstiness_one() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.3).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = ch.transmit(&input(200_000), &mut rng);
        let fit = fit_deletion_bursts(&out.events).unwrap();
        assert!((fit.burstiness - 1.0).abs() < 0.05, "{fit:?}");
        assert!((fit.stationary_rate - 0.3).abs() < 0.01, "{fit:?}");
    }

    #[test]
    fn bursty_channel_fits_burstiness_above_one() {
        let ch = GilbertElliottChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.05).unwrap(),
            DiParams::deletion_only(0.8).unwrap(),
            0.02,
            0.1,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out = ch.transmit(&input(200_000), &mut rng);
        let fit = fit_deletion_bursts(&out.events).unwrap();
        assert!(fit.burstiness > 1.5, "{fit:?}");
        assert!(fit.p_after_event > fit.p_after_gap);
        // Stationary rate still matches the time average.
        let avg = ch.average_params().unwrap().p_d();
        assert!((fit.stationary_rate - avg).abs() < 0.03, "{fit:?} vs {avg}");
    }

    #[test]
    fn tiny_logs_are_rejected() {
        assert!(fit_deletion_bursts(&EventLog::new()).is_err());
        let mut log = EventLog::new();
        log.push(crate::event::ChannelEvent::Deletion {
            symbol: Symbol::from_index(0),
        });
        assert!(fit_deletion_bursts(&log).is_err());
    }
}
