//! Ground-truth channel event logs.
//!
//! Every stochastic channel in this crate records what *actually*
//! happened on each channel use. The receiver of a deletion-insertion
//! channel never sees this log — that is the whole point of the model —
//! but tests, benchmarks, and the parameter-estimation pipeline use it
//! as ground truth.

use crate::alphabet::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One channel use of a deletion-insertion channel (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelEvent {
    /// The next queued symbol was silently dropped.
    Deletion {
        /// The symbol that was lost.
        symbol: Symbol,
    },
    /// A spurious symbol was delivered to the receiver; the queue was
    /// not consumed.
    Insertion {
        /// The symbol the receiver saw.
        symbol: Symbol,
    },
    /// The next queued symbol was delivered, possibly corrupted.
    Transmission {
        /// The symbol the sender queued.
        sent: Symbol,
        /// The symbol the receiver saw.
        received: Symbol,
    },
}

impl ChannelEvent {
    /// Returns `true` for a transmission whose received symbol
    /// differs from the sent one (a substitution error).
    pub fn is_substitution(&self) -> bool {
        matches!(self, ChannelEvent::Transmission { sent, received } if sent != received)
    }

    /// The symbol delivered to the receiver by this event, if any.
    pub fn delivered(&self) -> Option<Symbol> {
        match self {
            ChannelEvent::Deletion { .. } => None,
            ChannelEvent::Insertion { symbol } => Some(*symbol),
            ChannelEvent::Transmission { received, .. } => Some(*received),
        }
    }

    /// The symbol consumed from the sender's queue by this event, if
    /// any.
    pub fn consumed(&self) -> Option<Symbol> {
        match self {
            ChannelEvent::Deletion { symbol } => Some(*symbol),
            ChannelEvent::Insertion { .. } => None,
            ChannelEvent::Transmission { sent, .. } => Some(*sent),
        }
    }
}

impl fmt::Display for ChannelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelEvent::Deletion { symbol } => write!(f, "del({symbol})"),
            ChannelEvent::Insertion { symbol } => write!(f, "ins({symbol})"),
            ChannelEvent::Transmission { sent, received } if sent == received => {
                write!(f, "tx({sent})")
            }
            ChannelEvent::Transmission { sent, received } => {
                write!(f, "sub({sent}->{received})")
            }
        }
    }
}

/// An append-only log of channel events with cached counters.
///
/// # Example
///
/// ```
/// use nsc_channel::alphabet::Symbol;
/// use nsc_channel::event::{ChannelEvent, EventLog};
///
/// let mut log = EventLog::new();
/// log.push(ChannelEvent::Deletion { symbol: Symbol::from_index(0) });
/// log.push(ChannelEvent::Transmission {
///     sent: Symbol::from_index(1),
///     received: Symbol::from_index(1),
/// });
/// assert_eq!(log.deletions(), 1);
/// assert_eq!(log.transmissions(), 1);
/// assert_eq!(log.uses(), 2);
/// assert!((log.empirical_deletion_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<ChannelEvent>,
    deletions: usize,
    insertions: usize,
    transmissions: usize,
    substitutions: usize,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: ChannelEvent) {
        match event {
            ChannelEvent::Deletion { .. } => self.deletions += 1,
            ChannelEvent::Insertion { .. } => self.insertions += 1,
            ChannelEvent::Transmission { .. } => {
                self.transmissions += 1;
                if event.is_substitution() {
                    self.substitutions += 1;
                }
            }
        }
        self.events.push(event);
    }

    /// Borrow the raw event sequence.
    pub fn events(&self) -> &[ChannelEvent] {
        &self.events
    }

    /// Total channel uses recorded.
    pub fn uses(&self) -> usize {
        self.events.len()
    }

    /// Number of deletion events.
    pub fn deletions(&self) -> usize {
        self.deletions
    }

    /// Number of insertion events.
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Number of transmission events (including substituted ones).
    pub fn transmissions(&self) -> usize {
        self.transmissions
    }

    /// Number of transmissions that suffered a substitution error.
    pub fn substitutions(&self) -> usize {
        self.substitutions
    }

    /// Empirical `P_d`: deletions over channel uses (zero when the
    /// log is empty).
    pub fn empirical_deletion_rate(&self) -> f64 {
        self.rate(self.deletions)
    }

    /// Empirical `P_i`: insertions over channel uses.
    pub fn empirical_insertion_rate(&self) -> f64 {
        self.rate(self.insertions)
    }

    /// Empirical `P_t`: transmissions over channel uses.
    pub fn empirical_transmission_rate(&self) -> f64 {
        self.rate(self.transmissions)
    }

    /// Empirical `P_s`: substitutions over *transmissions* (the
    /// conditional substitution rate of Definition 1); zero when no
    /// transmissions occurred.
    pub fn empirical_substitution_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.substitutions as f64 / self.transmissions as f64
        }
    }

    /// Counts per category, ordered `(deletions, insertions,
    /// non-substituted transmissions, substituted transmissions)` —
    /// the four outcomes of Figure 2, as inputs for a chi-square
    /// goodness-of-fit check.
    pub fn category_counts(&self) -> [u64; 4] {
        [
            self.deletions as u64,
            self.insertions as u64,
            (self.transmissions - self.substitutions) as u64,
            self.substitutions as u64,
        ]
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: &EventLog) {
        for e in &other.events {
            self.push(*e);
        }
    }

    fn rate(&self, count: usize) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            count as f64 / self.events.len() as f64
        }
    }
}

impl Extend<ChannelEvent> for EventLog {
    fn extend<T: IntoIterator<Item = ChannelEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<ChannelEvent> for EventLog {
    fn from_iter<T: IntoIterator<Item = ChannelEvent>>(iter: T) -> Self {
        let mut log = EventLog::new();
        log.extend(iter);
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Symbol {
        Symbol::from_index(i)
    }

    #[test]
    fn counters_track_events() {
        let mut log = EventLog::new();
        log.push(ChannelEvent::Deletion { symbol: s(0) });
        log.push(ChannelEvent::Insertion { symbol: s(1) });
        log.push(ChannelEvent::Transmission {
            sent: s(1),
            received: s(1),
        });
        log.push(ChannelEvent::Transmission {
            sent: s(0),
            received: s(1),
        });
        assert_eq!(log.uses(), 4);
        assert_eq!(log.deletions(), 1);
        assert_eq!(log.insertions(), 1);
        assert_eq!(log.transmissions(), 2);
        assert_eq!(log.substitutions(), 1);
        assert_eq!(log.category_counts(), [1, 1, 1, 1]);
        assert!((log.empirical_substitution_rate() - 0.5).abs() < 1e-12);
        assert!((log.empirical_transmission_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_log_rates_are_zero() {
        let log = EventLog::new();
        assert_eq!(log.empirical_deletion_rate(), 0.0);
        assert_eq!(log.empirical_substitution_rate(), 0.0);
        assert_eq!(log.uses(), 0);
    }

    #[test]
    fn event_accessors() {
        let d = ChannelEvent::Deletion { symbol: s(3) };
        assert_eq!(d.consumed(), Some(s(3)));
        assert_eq!(d.delivered(), None);
        assert!(!d.is_substitution());

        let i = ChannelEvent::Insertion { symbol: s(2) };
        assert_eq!(i.consumed(), None);
        assert_eq!(i.delivered(), Some(s(2)));

        let t = ChannelEvent::Transmission {
            sent: s(1),
            received: s(0),
        };
        assert!(t.is_substitution());
        assert_eq!(t.consumed(), Some(s(1)));
        assert_eq!(t.delivered(), Some(s(0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ChannelEvent::Deletion { symbol: s(1) }.to_string(),
            "del(s1)"
        );
        assert_eq!(
            ChannelEvent::Transmission {
                sent: s(1),
                received: s(1)
            }
            .to_string(),
            "tx(s1)"
        );
        assert_eq!(
            ChannelEvent::Transmission {
                sent: s(1),
                received: s(2)
            }
            .to_string(),
            "sub(s1->s2)"
        );
    }

    #[test]
    fn merge_and_collect() {
        let a: EventLog = vec![ChannelEvent::Deletion { symbol: s(0) }]
            .into_iter()
            .collect();
        let mut b: EventLog = vec![ChannelEvent::Insertion { symbol: s(1) }]
            .into_iter()
            .collect();
        b.merge(&a);
        assert_eq!(b.uses(), 2);
        assert_eq!(b.deletions(), 1);
        assert_eq!(b.insertions(), 1);
    }
}
