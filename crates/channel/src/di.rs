//! The deletion-insertion channel of Wang & Lee, Definition 1.
//!
//! > *A binary deletion-insertion channel is a channel with four
//! > parameters: `P_d`, `P_i`, `P_t` and `P_s`, which denote the rates
//! > of deletions, insertions, transmissions and substitutions,
//! > respectively. The symbols to be transmitted are imagined entering
//! > a queue, waiting to be transmitted by the channel. Each time the
//! > channel is used, one of four events occurs: with probability
//! > `P_d` the next queued bit is deleted; with probability `P_i` an
//! > extra bit is inserted; with probability `P_t` the next queued bit
//! > is transmitted, i.e., is received by the receiver, with
//! > probability `P_s` of suffering a substitution error.*
//!
//! We generalize from bits to `N`-bit symbols (the paper's formulas
//! are already stated for `N` bits per symbol) and expose both a
//! whole-sequence API ([`DeletionInsertionChannel::transmit`]) and a
//! per-use API ([`DeletionInsertionChannel::use_once`]) that the
//! synchronization protocols in `nsc-core` drive step by step.

use crate::alphabet::{Alphabet, Symbol};
use crate::error::ChannelError;
use crate::event::{ChannelEvent, EventLog};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The event-probability parameters of Definition 1.
///
/// `P_t` is not stored: it is derived as `1 − P_d − P_i`. The
/// substitution probability `P_s` is conditional on a transmission
/// event, exactly as in the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiParams {
    p_d: f64,
    p_i: f64,
    p_s: f64,
}

impl DiParams {
    /// Creates a validated parameter set from the deletion rate
    /// `p_d`, insertion rate `p_i` and conditional substitution rate
    /// `p_s`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when any rate is
    /// outside `[0, 1]`, when `p_d + p_i > 1`, or when `p_i = 1`
    /// (the queue would never drain: every use inserts).
    pub fn new(p_d: f64, p_i: f64, p_s: f64) -> Result<Self, ChannelError> {
        for (name, v) in [("p_d", p_d), ("p_i", p_i), ("p_s", p_s)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ChannelError::BadParameters(format!(
                    "{name} = {v} is not a probability"
                )));
            }
        }
        if p_d + p_i > 1.0 + 1e-12 {
            return Err(ChannelError::BadParameters(format!(
                "p_d + p_i = {} exceeds 1",
                p_d + p_i
            )));
        }
        if p_i >= 1.0 {
            return Err(ChannelError::BadParameters(
                "p_i = 1 means the queue never drains".to_owned(),
            ));
        }
        Ok(DiParams { p_d, p_i, p_s })
    }

    /// A noiseless synchronous channel: no deletions, insertions, or
    /// substitutions.
    pub fn noiseless() -> Self {
        DiParams {
            p_d: 0.0,
            p_i: 0.0,
            p_s: 0.0,
        }
    }

    /// A pure deletion channel with deletion rate `p_d`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `p_d` is not a
    /// probability.
    pub fn deletion_only(p_d: f64) -> Result<Self, ChannelError> {
        DiParams::new(p_d, 0.0, 0.0)
    }

    /// A pure insertion channel with insertion rate `p_i`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `p_i` is not a
    /// probability below one.
    pub fn insertion_only(p_i: f64) -> Result<Self, ChannelError> {
        DiParams::new(0.0, p_i, 0.0)
    }

    /// Deletion probability `P_d`.
    pub fn p_d(&self) -> f64 {
        self.p_d
    }

    /// Insertion probability `P_i`.
    pub fn p_i(&self) -> f64 {
        self.p_i
    }

    /// Transmission probability `P_t = 1 − P_d − P_i`.
    pub fn p_t(&self) -> f64 {
        (1.0 - self.p_d - self.p_i).max(0.0)
    }

    /// Conditional substitution probability `P_s`.
    pub fn p_s(&self) -> f64 {
        self.p_s
    }

    /// The four outcome probabilities in the order of
    /// [`EventLog::category_counts`]: deletion, insertion, clean
    /// transmission, substituted transmission.
    pub fn category_probs(&self) -> [f64; 4] {
        [
            self.p_d,
            self.p_i,
            self.p_t() * (1.0 - self.p_s),
            self.p_t() * self.p_s,
        ]
    }
}

/// Outcome of a single channel use (the per-use API driven by the
/// synchronization protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseOutcome {
    /// The queued symbol was consumed and lost.
    Deleted,
    /// A spurious symbol was delivered; the queued symbol (if any)
    /// remains queued.
    Inserted(Symbol),
    /// The queued symbol was consumed and delivered (possibly
    /// substituted).
    Transmitted {
        /// Symbol the receiver saw.
        received: Symbol,
        /// Whether a substitution occurred.
        substituted: bool,
    },
    /// Nothing was queued and no insertion fired: the receiver saw
    /// nothing this use.
    Idle,
}

/// Result of pushing a whole sequence through the channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmission {
    /// Symbols delivered to the receiver, in order.
    pub received: Vec<Symbol>,
    /// Ground-truth event log (not visible to the receiver).
    pub events: EventLog,
}

/// The deletion-insertion channel (Definition 1, Figure 2).
///
/// # Example
///
/// A pure deletion channel loses roughly `P_d` of its input:
///
/// ```
/// use nsc_channel::{Alphabet, DeletionInsertionChannel, DiParams, Symbol};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let ch = DeletionInsertionChannel::new(
///     Alphabet::binary(),
///     DiParams::deletion_only(0.25)?,
/// );
/// let mut rng = StdRng::seed_from_u64(42);
/// let input = vec![Symbol::from_index(1); 10_000];
/// let out = ch.transmit(&input, &mut rng);
/// let loss = 1.0 - out.received.len() as f64 / input.len() as f64;
/// assert!((loss - 0.25).abs() < 0.02);
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeletionInsertionChannel {
    alphabet: Alphabet,
    params: DiParams,
}

impl DeletionInsertionChannel {
    /// Creates a channel over the given alphabet with the given event
    /// probabilities.
    pub fn new(alphabet: Alphabet, params: DiParams) -> Self {
        DeletionInsertionChannel { alphabet, params }
    }

    /// The channel's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The channel's event probabilities.
    pub fn params(&self) -> &DiParams {
        &self.params
    }

    /// Performs one channel use with `queued` as the symbol at the
    /// head of the sender's queue (or `None` when the queue is
    /// empty).
    ///
    /// With a queued symbol, the outcome follows Definition 1
    /// exactly. With an empty queue only an insertion can deliver
    /// anything; deletion/transmission draws collapse to
    /// [`UseOutcome::Idle`].
    pub fn use_once<R: Rng + ?Sized>(&self, queued: Option<Symbol>, rng: &mut R) -> UseOutcome {
        let u: f64 = rng.gen();
        let p = &self.params;
        if u < p.p_d {
            match queued {
                Some(_) => UseOutcome::Deleted,
                None => UseOutcome::Idle,
            }
        } else if u < p.p_d + p.p_i {
            UseOutcome::Inserted(self.alphabet.random(rng))
        } else {
            match queued {
                Some(sym) => {
                    let substituted = p.p_s > 0.0 && rng.gen::<f64>() < p.p_s;
                    let received = if substituted {
                        self.alphabet.random_other(rng, sym)
                    } else {
                        sym
                    };
                    UseOutcome::Transmitted {
                        received,
                        substituted,
                    }
                }
                None => UseOutcome::Idle,
            }
        }
    }

    /// Pushes an entire symbol sequence through the channel,
    /// repeating channel uses until the queue drains, and returns the
    /// received sequence together with the ground-truth event log.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every input symbol belongs to the channel
    /// alphabet.
    pub fn transmit<R: Rng + ?Sized>(&self, input: &[Symbol], rng: &mut R) -> Transmission {
        debug_assert!(
            input.iter().all(|&s| self.alphabet.contains(s)),
            "input symbol outside channel alphabet"
        );
        let mut events = EventLog::new();
        let mut received = Vec::with_capacity(input.len());
        let mut queue = input.iter().copied();
        let mut head = queue.next();
        while let Some(sym) = head {
            match self.use_once(Some(sym), rng) {
                UseOutcome::Deleted => {
                    events.push(ChannelEvent::Deletion { symbol: sym });
                    head = queue.next();
                }
                UseOutcome::Inserted(ins) => {
                    events.push(ChannelEvent::Insertion { symbol: ins });
                    received.push(ins);
                }
                UseOutcome::Transmitted { received: r, .. } => {
                    events.push(ChannelEvent::Transmission {
                        sent: sym,
                        received: r,
                    });
                    received.push(r);
                    head = queue.next();
                }
                UseOutcome::Idle => unreachable!("queue head was Some"),
            }
        }
        Transmission { received, events }
    }

    /// Expected number of channel uses needed to drain a queue of
    /// `len` symbols: each symbol is consumed with probability
    /// `P_d + P_t = 1 − P_i` per use, so the mean is
    /// `len / (1 − P_i)`.
    pub fn expected_uses(&self, len: usize) -> f64 {
        len as f64 / (1.0 - self.params.p_i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn symbols(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index((i % 2) as u32)).collect()
    }

    #[test]
    fn params_validation() {
        assert!(DiParams::new(0.5, 0.5, 0.0).is_ok());
        assert!(DiParams::new(0.6, 0.5, 0.0).is_err());
        assert!(DiParams::new(-0.1, 0.0, 0.0).is_err());
        assert!(DiParams::new(0.0, 1.0, 0.0).is_err());
        assert!(DiParams::new(0.0, 0.0, 1.5).is_err());
        assert!(DiParams::new(f64::NAN, 0.0, 0.0).is_err());
        let p = DiParams::new(0.2, 0.3, 0.1).unwrap();
        assert!((p.p_t() - 0.5).abs() < 1e-12);
        let cats = p.category_probs();
        assert!((cats.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_channel_is_identity() {
        let ch = DeletionInsertionChannel::new(Alphabet::binary(), DiParams::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        let input = symbols(500);
        let out = ch.transmit(&input, &mut rng);
        assert_eq!(out.received, input);
        assert_eq!(out.events.uses(), 500);
        assert_eq!(out.events.transmissions(), 500);
        assert_eq!(out.events.substitutions(), 0);
    }

    #[test]
    fn conservation_laws_hold() {
        // received = transmissions + insertions,
        // consumed  = transmissions + deletions = input length.
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(4).unwrap(),
            DiParams::new(0.2, 0.15, 0.1).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let input: Vec<Symbol> = (0..2000).map(|i| Symbol::from_index(i % 16)).collect();
        let out = ch.transmit(&input, &mut rng);
        assert_eq!(
            out.received.len(),
            out.events.transmissions() + out.events.insertions()
        );
        assert_eq!(
            input.len(),
            out.events.transmissions() + out.events.deletions()
        );
    }

    #[test]
    fn empirical_rates_approach_parameters() {
        let params = DiParams::new(0.15, 0.25, 0.3).unwrap();
        let ch = DeletionInsertionChannel::new(Alphabet::new(2).unwrap(), params);
        let mut rng = StdRng::seed_from_u64(11);
        let input: Vec<Symbol> = (0..60_000).map(|i| Symbol::from_index(i % 4)).collect();
        let out = ch.transmit(&input, &mut rng);
        assert!((out.events.empirical_deletion_rate() - 0.15).abs() < 0.01);
        assert!((out.events.empirical_insertion_rate() - 0.25).abs() < 0.01);
        assert!((out.events.empirical_transmission_rate() - 0.60).abs() < 0.01);
        assert!((out.events.empirical_substitution_rate() - 0.30).abs() < 0.01);
    }

    #[test]
    fn substitution_always_changes_symbol() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(3).unwrap(),
            DiParams::new(0.0, 0.0, 1.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let input: Vec<Symbol> = (0..100).map(|i| Symbol::from_index(i % 8)).collect();
        let out = ch.transmit(&input, &mut rng);
        assert_eq!(out.events.substitutions(), 100);
        for (sent, got) in input.iter().zip(&out.received) {
            assert_ne!(sent, got);
        }
    }

    #[test]
    fn pure_insertion_channel_lengthens_output() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::insertion_only(0.5).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let input = symbols(5000);
        let out = ch.transmit(&input, &mut rng);
        assert!(out.received.len() > input.len());
        // Geometric(1/2) insertions per transmitted symbol: output is
        // about 2x input.
        let ratio = out.received.len() as f64 / input.len() as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
        assert_eq!(out.events.deletions(), 0);
    }

    #[test]
    fn use_once_with_empty_queue() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.3, 0.3, 0.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut idles = 0;
        let mut inserts = 0;
        for _ in 0..10_000 {
            match ch.use_once(None, &mut rng) {
                UseOutcome::Idle => idles += 1,
                UseOutcome::Inserted(_) => inserts += 1,
                other => panic!("impossible outcome without a queue: {other:?}"),
            }
        }
        let ins_rate = inserts as f64 / (idles + inserts) as f64;
        assert!((ins_rate - 0.3).abs() < 0.02);
    }

    #[test]
    fn expected_uses_accounts_for_insertions() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.1, 0.5, 0.0).unwrap(),
        );
        assert!((ch.expected_uses(100) - 200.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(21);
        let out = ch.transmit(&symbols(20_000), &mut rng);
        let uses = out.events.uses() as f64;
        assert!((uses / ch.expected_uses(20_000) - 1.0).abs() < 0.03);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.2, 0.2, 0.1).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = ch.transmit(&[], &mut rng);
        assert!(out.received.is_empty());
        assert_eq!(out.events.uses(), 0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(2).unwrap(),
            DiParams::new(0.2, 0.2, 0.2).unwrap(),
        );
        let input: Vec<Symbol> = (0..100).map(|i| Symbol::from_index(i % 4)).collect();
        let a = ch.transmit(&input, &mut StdRng::seed_from_u64(77));
        let b = ch.transmit(&input, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
    }
}
