//! Symbols and symbol alphabets.
//!
//! The paper's capacity formulas are parameterized by `N`, the number
//! of bits per symbol; the channel alphabet is then `{0, …, 2^N − 1}`.
//! [`Alphabet`] captures `N` (1..=16) and [`Symbol`] is an index into
//! the alphabet.

use crate::error::ChannelError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One channel symbol: an index into an [`Alphabet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates a symbol from a raw index. Range checking happens at
    /// the channel boundary via [`Alphabet::contains`].
    pub fn from_index(index: u32) -> Self {
        Symbol(index)
    }

    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The `bit`-th bit of the symbol (0 = least significant).
    pub fn bit(self, bit: u32) -> bool {
        (self.0 >> bit) & 1 == 1
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for Symbol {
    fn from(v: u32) -> Self {
        Symbol(v)
    }
}

impl From<Symbol> for u32 {
    fn from(s: Symbol) -> u32 {
        s.0
    }
}

/// A symbol alphabet of `2^N` symbols for `N` bits per symbol.
///
/// # Example
///
/// ```
/// use nsc_channel::alphabet::{Alphabet, Symbol};
///
/// let a = Alphabet::new(3)?;
/// assert_eq!(a.size(), 8);
/// assert_eq!(a.bits(), 3);
/// assert!(a.contains(Symbol::from_index(7)));
/// assert!(!a.contains(Symbol::from_index(8)));
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alphabet {
    bits: u32,
}

impl Alphabet {
    /// Creates an alphabet of `2^bits` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadSymbolWidth`] unless
    /// `1 <= bits <= 16`.
    pub fn new(bits: u32) -> Result<Self, ChannelError> {
        if (1..=16).contains(&bits) {
            Ok(Alphabet { bits })
        } else {
            Err(ChannelError::BadSymbolWidth(bits))
        }
    }

    /// The binary alphabet `{0, 1}`.
    pub fn binary() -> Self {
        Alphabet { bits: 1 }
    }

    /// Bits per symbol (`N` in the paper's formulas).
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of symbols, `2^N`.
    pub fn size(self) -> usize {
        1usize << self.bits
    }

    /// Returns `true` when `s` indexes into this alphabet.
    pub fn contains(self, s: Symbol) -> bool {
        (s.0 as usize) < self.size()
    }

    /// Validates a symbol against this alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::SymbolOutOfRange`] when `s` does not
    /// belong to the alphabet.
    pub fn check(self, s: Symbol) -> Result<Symbol, ChannelError> {
        if self.contains(s) {
            Ok(s)
        } else {
            Err(ChannelError::SymbolOutOfRange {
                symbol: s.0 as u64,
                alphabet: self.size() as u64,
            })
        }
    }

    /// Draws a uniformly random symbol.
    pub fn random<R: Rng + ?Sized>(self, rng: &mut R) -> Symbol {
        Symbol(rng.gen_range(0..self.size() as u32))
    }

    /// Fills `out` with `n` uniformly random symbols, drawing whole
    /// 64-bit words from the generator and slicing them into
    /// `⌊64 / N⌋` symbols each — exact (not just approximately)
    /// uniform because the alphabet size is a power of two.
    ///
    /// This is the bulk path behind message generation in the trial
    /// engine's hot loop: it performs **no allocation** once `out`
    /// has warmed up to capacity, and consumes 64× fewer generator
    /// words than per-symbol draws for the `N = 1` alphabet (each
    /// word is a bit-packed block of 64 binary symbols).
    ///
    /// Unlike [`Alphabet::random`], whose rejection sampling is
    /// implementation-defined by the `rand` crate, the word-slicing
    /// here is fully specified, so the symbol stream is a portable
    /// pure function of the generator stream.
    pub fn fill_random<R: Rng + ?Sized>(self, rng: &mut R, out: &mut Vec<Symbol>, n: usize) {
        out.clear();
        out.reserve(n);
        let per_word = (64 / self.bits) as usize;
        let mask = (self.size() - 1) as u64;
        let mut remaining = n;
        while remaining > 0 {
            let mut w = rng.next_u64();
            let take = remaining.min(per_word);
            for _ in 0..take {
                out.push(Symbol((w & mask) as u32));
                w >>= self.bits;
            }
            remaining -= take;
        }
    }

    /// Draws a uniformly random symbol *different from* `exclude` —
    /// the substitution-error model of Definition 1.
    ///
    /// # Panics
    ///
    /// Panics when the alphabet has a single symbol (binary and wider
    /// alphabets always have at least two).
    pub fn random_other<R: Rng + ?Sized>(self, rng: &mut R, exclude: Symbol) -> Symbol {
        assert!(self.size() >= 2, "alphabet too small for substitution");
        let raw = rng.gen_range(0..self.size() as u32 - 1);
        if raw >= exclude.0 {
            Symbol(raw + 1)
        } else {
            Symbol(raw)
        }
    }

    /// Iterates over every symbol in the alphabet.
    pub fn symbols(self) -> impl Iterator<Item = Symbol> {
        (0..self.size() as u32).map(Symbol)
    }

    /// Packs a bit slice (LSB first) into symbols of this alphabet,
    /// zero-padding the final symbol.
    pub fn pack_bits(self, bits: &[bool]) -> Vec<Symbol> {
        bits.chunks(self.bits as usize)
            .map(|chunk| {
                let mut v = 0u32;
                for (i, &b) in chunk.iter().enumerate() {
                    if b {
                        v |= 1 << i;
                    }
                }
                Symbol(v)
            })
            .collect()
    }

    /// Unpacks symbols into bits (LSB first), `bits()` bits per
    /// symbol.
    pub fn unpack_bits(self, symbols: &[Symbol]) -> Vec<bool> {
        let mut out = Vec::with_capacity(symbols.len() * self.bits as usize);
        for s in symbols {
            for i in 0..self.bits {
                out.push(s.bit(i));
            }
        }
        out
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit alphabet ({} symbols)", self.bits, self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_limits() {
        assert!(Alphabet::new(0).is_err());
        assert!(Alphabet::new(17).is_err());
        assert!(Alphabet::new(1).is_ok());
        assert!(Alphabet::new(16).is_ok());
        assert_eq!(Alphabet::binary().size(), 2);
    }

    #[test]
    fn membership_and_check() {
        let a = Alphabet::new(2).unwrap();
        assert!(a.contains(Symbol::from_index(3)));
        assert!(!a.contains(Symbol::from_index(4)));
        assert!(a.check(Symbol::from_index(3)).is_ok());
        assert!(matches!(
            a.check(Symbol::from_index(4)),
            Err(ChannelError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn random_symbols_stay_in_range() {
        let a = Alphabet::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(a.contains(a.random(&mut rng)));
        }
    }

    #[test]
    fn random_other_never_returns_excluded() {
        let a = Alphabet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let excl = Symbol::from_index(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let s = a.random_other(&mut rng, excl);
            assert_ne!(s, excl);
            assert!(a.contains(s));
            seen[s.index() as usize] = true;
        }
        // All three non-excluded symbols appear.
        assert!(seen[0] && seen[1] && seen[3] && !seen[2]);
    }

    #[test]
    fn fill_random_matches_manual_word_slicing() {
        use rand::RngCore;
        for bits in [1u32, 2, 3, 4, 16] {
            let a = Alphabet::new(bits).unwrap();
            let n = 131;
            let mut out = Vec::new();
            a.fill_random(&mut StdRng::seed_from_u64(77), &mut out, n);
            assert_eq!(out.len(), n);
            assert!(out.iter().all(|&s| a.contains(s)));
            // Replay the specified extraction by hand.
            let mut rng = StdRng::seed_from_u64(77);
            let per_word = (64 / bits) as usize;
            let mask = (a.size() - 1) as u64;
            let mut expect = Vec::new();
            while expect.len() < n {
                let mut w = rng.next_u64();
                for _ in 0..per_word.min(n - expect.len()) {
                    expect.push(Symbol((w & mask) as u32));
                    w >>= bits;
                }
            }
            assert_eq!(out, expect, "bits = {bits}");
        }
    }

    #[test]
    fn fill_random_binary_packs_64_symbols_per_word() {
        let a = Alphabet::binary();
        let mut out = Vec::new();
        // 64 symbols must consume exactly one generator word: a
        // second fill from a fresh generator of the same seed starts
        // from the same word.
        a.fill_random(&mut StdRng::seed_from_u64(3), &mut out, 64);
        let first: Vec<Symbol> = out.clone();
        a.fill_random(&mut StdRng::seed_from_u64(3), &mut out, 128);
        assert_eq!(&out[..64], &first[..]);
    }

    #[test]
    fn fill_random_reuses_capacity_and_is_roughly_uniform() {
        let a = Alphabet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut out = Vec::new();
        a.fill_random(&mut rng, &mut out, 4096);
        let cap = out.capacity();
        let mut counts = [0usize; 4];
        a.fill_random(&mut rng, &mut out, 4096);
        assert_eq!(out.capacity(), cap);
        for s in &out {
            counts[s.index() as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 1024.0).abs() < 200.0, "counts {counts:?}");
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let a = Alphabet::new(3).unwrap();
        let bits = vec![true, false, true, true, true, false, false, true];
        let symbols = a.pack_bits(&bits);
        assert_eq!(symbols.len(), 3); // 8 bits -> ceil(8/3) symbols
        let back = a.unpack_bits(&symbols);
        assert_eq!(&back[..bits.len()], &bits[..]);
        // Padding bits are zero.
        assert!(!back[8]);
    }

    #[test]
    fn bit_accessor() {
        let s = Symbol::from_index(0b101);
        assert!(s.bit(0));
        assert!(!s.bit(1));
        assert!(s.bit(2));
    }

    #[test]
    fn symbols_iterator_covers_alphabet() {
        let a = Alphabet::new(2).unwrap();
        let all: Vec<u32> = a.symbols().map(Symbol::index).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_mentions_size() {
        let a = Alphabet::new(4).unwrap();
        assert!(a.to_string().contains("16"));
        assert_eq!(Symbol::from_index(3).to_string(), "s3");
    }
}
