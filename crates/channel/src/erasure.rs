//! Erasure channels: the side-information comparators of Theorems 1–4.
//!
//! The paper bounds the deletion-insertion channel by comparing it to
//! an *erasure channel* that suffers the same drop-outs and insertions
//! but **knows their locations**:
//!
//! * [`ErasureChannel`] — the matched comparator for a pure deletion
//!   channel: each symbol is either delivered or marked erased
//!   (Theorem 1: capacity `N·(1 − P_d)`).
//! * [`ExtendedErasureChannel`] — Definition 2's comparator for the
//!   full deletion-insertion channel: drop-outs *and* insertions are
//!   both marked (Theorem 4).
//!
//! Knowing locations can only help, so the erasure capacities are
//! upper bounds on the deletion-insertion capacities — that is the
//! entire proof strategy of Theorems 1, 2 and 4.

use crate::alphabet::{Alphabet, Symbol};
use crate::di::DiParams;
use crate::error::ChannelError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A symbol-level erasure channel: with probability `e` a symbol is
/// replaced by an erasure mark whose *location is known* to the
/// receiver.
///
/// # Example
///
/// ```
/// use nsc_channel::alphabet::{Alphabet, Symbol};
/// use nsc_channel::erasure::ErasureChannel;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let ch = ErasureChannel::new(Alphabet::new(4)?, 0.5)?;
/// assert_eq!(ch.capacity(), 2.0); // 4 bits/symbol × (1 − 0.5)
/// let mut rng = StdRng::seed_from_u64(1);
/// let out = ch.transmit(&[Symbol::from_index(9); 4], &mut rng);
/// assert_eq!(out.len(), 4); // erased or not, every slot is visible
/// # Ok::<(), nsc_channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErasureChannel {
    alphabet: Alphabet,
    erasure_prob: f64,
}

impl ErasureChannel {
    /// Creates an erasure channel over `alphabet` with erasure
    /// probability `e`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `e` is not a
    /// probability.
    pub fn new(alphabet: Alphabet, e: f64) -> Result<Self, ChannelError> {
        if !e.is_finite() || !(0.0..=1.0).contains(&e) {
            return Err(ChannelError::BadParameters(format!(
                "erasure probability {e} is not a probability"
            )));
        }
        Ok(ErasureChannel {
            alphabet,
            erasure_prob: e,
        })
    }

    /// The channel's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The erasure probability.
    pub fn erasure_prob(&self) -> f64 {
        self.erasure_prob
    }

    /// Capacity in bits per channel use: `N · (1 − e)` — the paper's
    /// equation (1).
    pub fn capacity(&self) -> f64 {
        self.alphabet.bits() as f64 * (1.0 - self.erasure_prob)
    }

    /// Transmits a sequence; `None` marks an erased position.
    pub fn transmit<R: Rng + ?Sized>(&self, input: &[Symbol], rng: &mut R) -> Vec<Option<Symbol>> {
        input
            .iter()
            .map(|&s| {
                if rng.gen::<f64>() < self.erasure_prob {
                    None
                } else {
                    Some(s)
                }
            })
            .collect()
    }
}

/// One received slot of an [`ExtendedErasureChannel`]: the receiver
/// sees *what happened*, not just what arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtendedSlot {
    /// A genuine symbol arrived.
    Received(Symbol),
    /// A queued symbol was dropped here (location known!).
    DropOut,
    /// A spurious symbol was inserted here (location known!), so the
    /// receiver can discard it for free.
    Inserted(Symbol),
}

impl ExtendedSlot {
    /// The useful payload, if any.
    pub fn payload(&self) -> Option<Symbol> {
        match self {
            ExtendedSlot::Received(s) => Some(*s),
            _ => None,
        }
    }
}

/// Definition 2's *extended erasure channel*: symbols may be dropped
/// or inserted exactly as in the matched deletion-insertion channel,
/// but every drop-out and insertion location is flagged to the
/// receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedErasureChannel {
    alphabet: Alphabet,
    params: DiParams,
}

impl ExtendedErasureChannel {
    /// Creates the extended erasure comparator matched to the
    /// deletion-insertion parameters `params`.
    pub fn new(alphabet: Alphabet, params: DiParams) -> Self {
        ExtendedErasureChannel { alphabet, params }
    }

    /// The channel's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The matched deletion-insertion parameters.
    pub fn params(&self) -> &DiParams {
        &self.params
    }

    /// The paper's Theorem 4 upper bound, `N · (1 − P_d)`, in the
    /// paper's normalization: a *relative ratio* against the
    /// synchronous capacity (see §4.3 Remarks — wasted uses are
    /// charged, freely-discarded insertions are not).
    pub fn relative_capacity(&self) -> f64 {
        self.alphabet.bits() as f64 * (1.0 - self.params.p_d())
    }

    /// Capacity in bits per *channel use*: only transmission events
    /// (probability `P_t`) deliver payload, so `N · P_t`. This is the
    /// strictly-per-use accounting; it differs from
    /// [`Self::relative_capacity`] by the factor `(1 − P_i)` spent on
    /// freely-discarded insertions.
    pub fn per_use_capacity(&self) -> f64 {
        self.alphabet.bits() as f64 * self.params.p_t()
    }

    /// Transmits a sequence, producing one [`ExtendedSlot`] per
    /// channel use until the queue drains.
    pub fn transmit<R: Rng + ?Sized>(&self, input: &[Symbol], rng: &mut R) -> Vec<ExtendedSlot> {
        let mut out = Vec::with_capacity(input.len());
        let p = &self.params;
        let mut queue = input.iter().copied();
        let mut head = queue.next();
        while let Some(sym) = head {
            let u: f64 = rng.gen();
            if u < p.p_d() {
                out.push(ExtendedSlot::DropOut);
                head = queue.next();
            } else if u < p.p_d() + p.p_i() {
                out.push(ExtendedSlot::Inserted(self.alphabet.random(rng)));
            } else {
                out.push(ExtendedSlot::Received(sym));
                head = queue.next();
            }
        }
        out
    }

    /// Recovers the delivered payload with all marks stripped — what
    /// a receiver with perfect side information keeps.
    pub fn payload(slots: &[ExtendedSlot]) -> Vec<Symbol> {
        slots.iter().filter_map(ExtendedSlot::payload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erasure_channel_validation_and_capacity() {
        let a = Alphabet::new(3).unwrap();
        assert!(ErasureChannel::new(a, 1.1).is_err());
        assert!(ErasureChannel::new(a, f64::NAN).is_err());
        let ch = ErasureChannel::new(a, 0.25).unwrap();
        assert!((ch.capacity() - 2.25).abs() < 1e-12);
        assert_eq!(ErasureChannel::new(a, 1.0).unwrap().capacity(), 0.0);
    }

    #[test]
    fn erasure_preserves_length_and_marks_locations() {
        let ch = ErasureChannel::new(Alphabet::binary(), 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let input = vec![Symbol::from_index(1); 20_000];
        let out = ch.transmit(&input, &mut rng);
        assert_eq!(out.len(), input.len());
        let erased = out.iter().filter(|s| s.is_none()).count();
        assert!((erased as f64 / 20_000.0 - 0.4).abs() < 0.02);
        // Non-erased symbols are never corrupted.
        assert!(out.iter().flatten().all(|s| s.index() == 1));
    }

    #[test]
    fn extended_channel_marks_everything() {
        let params = DiParams::new(0.2, 0.2, 0.0).unwrap();
        let ch = ExtendedErasureChannel::new(Alphabet::binary(), params);
        let mut rng = StdRng::seed_from_u64(3);
        let input: Vec<Symbol> = (0..10_000).map(|i| Symbol::from_index(i % 2)).collect();
        let slots = ch.transmit(&input, &mut rng);
        let drops = slots
            .iter()
            .filter(|s| matches!(s, ExtendedSlot::DropOut))
            .count();
        let inserted = slots
            .iter()
            .filter(|s| matches!(s, ExtendedSlot::Inserted(_)))
            .count();
        let received = slots
            .iter()
            .filter(|s| matches!(s, ExtendedSlot::Received(_)))
            .count();
        // Every input symbol was either dropped or received.
        assert_eq!(drops + received, input.len());
        // Slot count = uses = received + drops + insertions.
        assert_eq!(slots.len(), drops + inserted + received);
        // Payload is a subsequence of the input (no substitutions).
        let payload = ExtendedErasureChannel::payload(&slots);
        assert_eq!(payload.len(), received);
    }

    #[test]
    fn extended_capacities() {
        let params = DiParams::new(0.3, 0.2, 0.0).unwrap();
        let ch = ExtendedErasureChannel::new(Alphabet::new(2).unwrap(), params);
        assert!((ch.relative_capacity() - 2.0 * 0.7).abs() < 1e-12);
        assert!((ch.per_use_capacity() - 2.0 * 0.5).abs() < 1e-12);
        // Per-use accounting never exceeds the relative one.
        assert!(ch.per_use_capacity() <= ch.relative_capacity());
    }

    #[test]
    fn extended_with_no_insertions_matches_plain_erasure() {
        let params = DiParams::deletion_only(0.35).unwrap();
        let ext = ExtendedErasureChannel::new(Alphabet::new(5).unwrap(), params);
        let plain = ErasureChannel::new(Alphabet::new(5).unwrap(), 0.35).unwrap();
        assert!((ext.relative_capacity() - plain.capacity()).abs() < 1e-12);
        assert!((ext.per_use_capacity() - plain.capacity()).abs() < 1e-12);
    }

    #[test]
    fn slot_payload_accessor() {
        assert_eq!(
            ExtendedSlot::Received(Symbol::from_index(5)).payload(),
            Some(Symbol::from_index(5))
        );
        assert_eq!(ExtendedSlot::DropOut.payload(), None);
        assert_eq!(
            ExtendedSlot::Inserted(Symbol::from_index(1)).payload(),
            None
        );
    }
}
