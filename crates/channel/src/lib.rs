//! Discrete channel models for covert-channel capacity estimation.
//!
//! The centrepiece is the **deletion-insertion channel** of Wang &
//! Lee's Definition 1 ([`di::DeletionInsertionChannel`]): each channel
//! use either *deletes* the next queued symbol (probability `P_d`),
//! *inserts* a spurious symbol (`P_i`), or *transmits* the queued
//! symbol (`P_t`), possibly with a *substitution* error (`P_s`).
//! Unlike an erasure channel, the receiver learns nothing about where
//! deletions and insertions occurred — which is exactly why covert
//! channels are hard to use without synchronization.
//!
//! The crate also provides the synchronous comparators the paper
//! reasons against:
//!
//! * generic discrete memoryless channels with samplers and
//!   closed-form constructors ([`dmc`]),
//! * erasure and *extended* erasure channels, where deletion and
//!   insertion locations are side information ([`erasure`]),
//! * the timed Z-channel of Moskowitz et al. ([`timed_z`]), a
//!   "traditional" covert timing channel baseline,
//! * empirical parameter estimation from event logs ([`stats`]).
//!
//! All randomness is injected by the caller (`rand::Rng`), keeping
//! every simulation reproducible.
//!
//! # Example
//!
//! ```
//! use nsc_channel::alphabet::{Alphabet, Symbol};
//! use nsc_channel::di::{DeletionInsertionChannel, DiParams};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let alphabet = Alphabet::new(1)?; // binary symbols
//! let params = DiParams::new(0.1, 0.05, 0.0)?; // P_d, P_i, P_s
//! let channel = DeletionInsertionChannel::new(alphabet, params);
//! let mut rng = StdRng::seed_from_u64(7);
//! let input: Vec<Symbol> = (0..100).map(|i| Symbol::from_index(i % 2)).collect();
//! let out = channel.transmit(&input, &mut rng);
//! // Every queued symbol was either transmitted or deleted…
//! assert_eq!(out.events.transmissions() + out.events.deletions(), 100);
//! // …and the receiver got the transmissions plus the insertions.
//! assert_eq!(out.received.len(), out.events.transmissions() + out.events.insertions());
//! # Ok::<(), nsc_channel::ChannelError>(())
//! ```

pub mod alphabet;
pub mod burst;
pub mod di;
pub mod dmc;
pub mod erasure;
pub mod error;
pub mod event;
pub mod stats;
pub mod timed_z;

pub use alphabet::{Alphabet, Symbol};
pub use di::{DeletionInsertionChannel, DiParams};
pub use error::ChannelError;
pub use event::{ChannelEvent, EventLog};
