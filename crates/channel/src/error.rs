//! Error type for channel construction and use.

use nsc_info::InfoError;
use std::fmt;

/// Errors produced when constructing or driving a channel model.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// The requested symbol width is outside the supported range.
    BadSymbolWidth(u32),
    /// A symbol index fell outside the channel's alphabet.
    SymbolOutOfRange {
        /// The offending symbol index.
        symbol: u64,
        /// The alphabet size it must be below.
        alphabet: u64,
    },
    /// The event probabilities were invalid (e.g. `P_d + P_i > 1`,
    /// or a value outside `[0, 1]`).
    BadParameters(String),
    /// An underlying numerical routine failed.
    Numeric(InfoError),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadSymbolWidth(bits) => {
                write!(f, "symbol width {bits} bits unsupported (need 1..=16)")
            }
            ChannelError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} out of range for alphabet of {alphabet}")
            }
            ChannelError::BadParameters(msg) => write!(f, "bad channel parameters: {msg}"),
            ChannelError::Numeric(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChannelError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InfoError> for ChannelError {
    fn from(e: InfoError) -> Self {
        ChannelError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            ChannelError::BadSymbolWidth(0),
            ChannelError::SymbolOutOfRange {
                symbol: 9,
                alphabet: 4,
            },
            ChannelError::BadParameters("p_d + p_i > 1".to_owned()),
            ChannelError::Numeric(InfoError::InvalidProbability(2.0)),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_to_info_error() {
        use std::error::Error;
        let e = ChannelError::Numeric(InfoError::InvalidProbability(2.0));
        assert!(e.source().is_some());
        assert!(ChannelError::BadSymbolWidth(0).source().is_none());
    }
}
