//! The timed Z-channel of Moskowitz, Greenwald & Kang (1996).
//!
//! A classic "traditional" covert timing channel baseline: the sender
//! chooses between a fast symbol (duration `t0`, always delivered
//! correctly) and a slow symbol (duration `t1`), and noise can turn
//! the slow symbol into the fast one with probability `p` — the
//! Z-channel crossover. Capacity is measured in bits per unit time.
//!
//! The paper's §2 cites this model as prior art whose estimates assume
//! synchrony; experiment E10 reproduces its capacity curve and E8
//! applies the paper's `(1 − P_d)` correction on top of it.

use crate::error::ChannelError;
use nsc_info::timing::{capacity_per_unit_time, TimingOptions};
use nsc_info::InfoError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A timed Z-channel.
///
/// # Example
///
/// ```
/// use nsc_channel::timed_z::TimedZChannel;
///
/// // Noiseless unit-time channel: one bit per tick.
/// let ch = TimedZChannel::new(0.0, 1.0, 1.0)?;
/// assert!((ch.capacity()? - 1.0).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedZChannel {
    /// Probability that the slow symbol (input 1) is received as the
    /// fast one (input 0).
    p: f64,
    /// Duration of symbol 0.
    t0: f64,
    /// Duration of symbol 1.
    t1: f64,
}

impl TimedZChannel {
    /// Creates a timed Z-channel with crossover probability `p` and
    /// symbol durations `t0`, `t1`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadParameters`] when `p` is not a
    /// probability or a duration is not positive and finite.
    pub fn new(p: f64, t0: f64, t1: f64) -> Result<Self, ChannelError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ChannelError::BadParameters(format!(
                "crossover {p} is not a probability"
            )));
        }
        for (name, t) in [("t0", t0), ("t1", t1)] {
            if !t.is_finite() || t <= 0.0 {
                return Err(ChannelError::BadParameters(format!(
                    "duration {name} = {t} must be positive"
                )));
            }
        }
        Ok(TimedZChannel { p, t0, t1 })
    }

    /// Crossover probability.
    pub fn crossover(&self) -> f64 {
        self.p
    }

    /// Durations `(t0, t1)`.
    pub fn durations(&self) -> (f64, f64) {
        (self.t0, self.t1)
    }

    /// The underlying Z transition matrix.
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        vec![vec![1.0, 0.0], vec![self.p, 1.0 - self.p]]
    }

    /// Capacity in bits per unit time:
    /// `max_q I(q; Z) / (q·t1 + (1−q)·t0)`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError`] when the fractional-capacity solver fails
    /// to converge.
    pub fn capacity(&self) -> Result<f64, InfoError> {
        let tc = capacity_per_unit_time(
            &self.transition_matrix(),
            &[self.t0, self.t1],
            &TimingOptions::default(),
        )?;
        Ok(tc.rate)
    }

    /// Capacity in bits per channel use (ignoring durations) — the
    /// plain Z-channel closed form, exposed for cross-checks.
    pub fn per_use_capacity(&self) -> f64 {
        crate::dmc::closed_form::z_channel(self.p)
    }

    /// Samples one transmission: returns `(received_bit, duration)`.
    /// Duration is the *sent* symbol's duration — time passes at the
    /// sender regardless of corruption.
    pub fn sample<R: Rng + ?Sized>(&self, input: bool, rng: &mut R) -> (bool, f64) {
        if input {
            let received = rng.gen::<f64>() >= self.p;
            (received, self.t1)
        } else {
            (false, self.t0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(TimedZChannel::new(1.1, 1.0, 1.0).is_err());
        assert!(TimedZChannel::new(0.1, 0.0, 1.0).is_err());
        assert!(TimedZChannel::new(0.1, 1.0, -2.0).is_err());
        assert!(TimedZChannel::new(0.1, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn noiseless_unit_time_is_one_bit_per_tick() {
        let ch = TimedZChannel::new(0.0, 1.0, 1.0).unwrap();
        assert!((ch.capacity().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn noiseless_unequal_times_match_shannon() {
        let ch = TimedZChannel::new(0.0, 1.0, 2.0).unwrap();
        let shannon = nsc_info::timing::noiseless_timing_capacity(&[1.0, 2.0]).unwrap();
        assert!((ch.capacity().unwrap() - shannon).abs() < 1e-6);
    }

    #[test]
    fn equal_durations_match_z_closed_form() {
        for &p in &[0.1, 0.4, 0.7] {
            let ch = TimedZChannel::new(p, 1.0, 1.0).unwrap();
            assert!(
                (ch.capacity().unwrap() - ch.per_use_capacity()).abs() < 1e-6,
                "p = {p}"
            );
        }
    }

    #[test]
    fn capacity_decreases_with_noise() {
        let c0 = TimedZChannel::new(0.0, 1.0, 3.0)
            .unwrap()
            .capacity()
            .unwrap();
        let c1 = TimedZChannel::new(0.3, 1.0, 3.0)
            .unwrap()
            .capacity()
            .unwrap();
        let c2 = TimedZChannel::new(0.8, 1.0, 3.0)
            .unwrap()
            .capacity()
            .unwrap();
        assert!(c0 > c1 && c1 > c2);
    }

    #[test]
    fn fully_noisy_channel_has_zero_capacity() {
        let ch = TimedZChannel::new(1.0, 1.0, 2.0).unwrap();
        assert!(ch.capacity().unwrap() < 1e-6);
    }

    #[test]
    fn sampling_statistics() {
        let ch = TimedZChannel::new(0.25, 1.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut flips = 0;
        for _ in 0..40_000 {
            let (r, d) = ch.sample(true, &mut rng);
            assert_eq!(d, 2.0);
            if !r {
                flips += 1;
            }
        }
        assert!((flips as f64 / 40_000.0 - 0.25).abs() < 0.01);
        let (r, d) = ch.sample(false, &mut rng);
        assert!(!r);
        assert_eq!(d, 1.0);
    }
}
