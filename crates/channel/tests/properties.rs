//! Property-based tests of the channel models.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::burst::GilbertElliottChannel;
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_channel::dmc::{closed_form, Dmc};
use nsc_channel::erasure::{ErasureChannel, ExtendedErasureChannel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: valid Definition 1 parameters.
fn di_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0f64..0.9, 0.0f64..1.0, 0.0f64..=1.0).prop_map(|(p_d, scale, p_s)| {
        let p_i = (1.0 - p_d) * scale * 0.95;
        (p_d, p_i, p_s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 1 conservation: consumed = transmitted + deleted =
    /// input; received = transmitted + inserted.
    #[test]
    fn di_conservation_laws(
        (p_d, p_i, p_s) in di_params(),
        bits in 1u32..=6,
        len in 1usize..400,
        seed in 0u64..1000,
    ) {
        let alphabet = Alphabet::new(bits).unwrap();
        let ch = DeletionInsertionChannel::new(
            alphabet, DiParams::new(p_d, p_i, p_s).unwrap());
        let input: Vec<Symbol> =
            (0..len).map(|i| Symbol::from_index(i as u32 % alphabet.size() as u32)).collect();
        let out = ch.transmit(&input, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(
            input.len(),
            out.events.transmissions() + out.events.deletions()
        );
        prop_assert_eq!(
            out.received.len(),
            out.events.transmissions() + out.events.insertions()
        );
        // Substitutions never exceed transmissions.
        prop_assert!(out.events.substitutions() <= out.events.transmissions());
        // All received symbols in-alphabet.
        prop_assert!(out.received.iter().all(|&s| alphabet.contains(s)));
    }

    /// With no insertions, the received stream is a subsequence of
    /// the input (when no substitutions either).
    #[test]
    fn deletion_only_output_is_subsequence(
        p_d in 0.0f64..0.9,
        len in 1usize..300,
        seed in 0u64..1000,
    ) {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(3).unwrap(), DiParams::deletion_only(p_d).unwrap());
        let input: Vec<Symbol> = (0..len).map(|i| Symbol::from_index(i as u32 % 8)).collect();
        let out = ch.transmit(&input, &mut StdRng::seed_from_u64(seed));
        // Subsequence check.
        let mut it = input.iter();
        for r in &out.received {
            prop_assert!(it.any(|s| s == r), "not a subsequence");
        }
    }

    /// The noiseless channel is exactly the identity.
    #[test]
    fn noiseless_is_identity(len in 1usize..200, seed in 0u64..100) {
        let ch = DeletionInsertionChannel::new(Alphabet::binary(), DiParams::noiseless());
        let input: Vec<Symbol> = (0..len).map(|i| Symbol::from_index(i as u32 % 2)).collect();
        let out = ch.transmit(&input, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(out.received, input);
    }

    /// Closed forms match Blahut–Arimoto across the parameter range.
    /// Near-degenerate channels converge sublinearly, so the solver
    /// runs at a looser certified tolerance here.
    #[test]
    fn closed_forms_match_blahut(p in 0.0f64..=1.0) {
        let opts = nsc_info::blahut::BlahutOptions { tolerance: 1e-7, max_iter: 2_000_000 };
        let bsc = Dmc::binary_symmetric(p).unwrap().capacity_with(&opts).unwrap();
        prop_assert!((bsc - closed_form::bsc(p)).abs() < 1e-6);
        let era = Dmc::binary_erasure(p).unwrap().capacity_with(&opts).unwrap();
        prop_assert!((era - closed_form::erasure(1, p)).abs() < 1e-6);
        let z = Dmc::z_channel(p).unwrap().capacity_with(&opts).unwrap();
        prop_assert!((z - closed_form::z_channel(p)).abs() < 1e-5, "z {z} vs {}", closed_form::z_channel(p));
    }

    /// Erasure channel preserves length and never corrupts.
    #[test]
    fn erasure_preserves_structure(e in 0.0f64..=1.0, len in 1usize..200, seed in 0u64..100) {
        let a = Alphabet::new(2).unwrap();
        let ch = ErasureChannel::new(a, e).unwrap();
        let input: Vec<Symbol> = (0..len).map(|i| Symbol::from_index(i as u32 % 4)).collect();
        let out = ch.transmit(&input, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(out.len(), input.len());
        for (slot, orig) in out.iter().zip(&input) {
            if let Some(s) = slot {
                prop_assert_eq!(s, orig);
            }
        }
    }

    /// Extended erasure: payload is a subsequence and capacities are
    /// ordered.
    #[test]
    fn extended_erasure_invariants((p_d, p_i, _) in di_params(), seed in 0u64..100) {
        let params = DiParams::new(p_d, p_i, 0.0).unwrap();
        let ch = ExtendedErasureChannel::new(Alphabet::new(3).unwrap(), params);
        prop_assert!(ch.per_use_capacity() <= ch.relative_capacity() + 1e-12);
        let input: Vec<Symbol> = (0..100).map(|i| Symbol::from_index(i % 8)).collect();
        let slots = ch.transmit(&input, &mut StdRng::seed_from_u64(seed));
        let payload = ExtendedErasureChannel::payload(&slots);
        prop_assert!(payload.len() <= input.len());
    }

    /// The bursty channel's stationary average is a valid parameter
    /// set interpolating its states.
    #[test]
    fn gilbert_elliott_average_interpolates(
        good in 0.0f64..0.3,
        bad in 0.3f64..0.9,
        p_gb in 0.01f64..1.0,
        p_bg in 0.01f64..1.0,
    ) {
        let ch = GilbertElliottChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(good).unwrap(),
            DiParams::deletion_only(bad).unwrap(),
            p_gb, p_bg,
        ).unwrap();
        let avg = ch.average_params().unwrap();
        prop_assert!(avg.p_d() >= good - 1e-12 && avg.p_d() <= bad + 1e-12);
        let w = ch.stationary_bad();
        prop_assert!((avg.p_d() - ((1.0 - w) * good + w * bad)).abs() < 1e-12);
    }
}
