//! The sharded, append-only `nsc-atlas/v1` on-disk cell store.
//!
//! # Layout
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   meta.json        {"schema":"nsc-atlas/v1","shards":4}
//!   shard-00.jsonl   one completed cell per line
//!   shard-01.jsonl
//!   ...
//! ```
//!
//! Each shard line is a self-contained [`CellRecord`]:
//! `{"schema":"nsc-atlas/v1","key":…,"manifest":…,"result":…}`. A
//! cell's shard is chosen by its cache key (`key mod shards`), so the
//! assignment is a pure function of cell identity — independent of
//! completion order, thread count, and kernel. Shard files exist only
//! once they hold a record.
//!
//! # Durability and resume
//!
//! Records are appended and flushed one at a time, the moment a cell
//! completes. A killed run therefore leaves a store containing
//! exactly the cells that finished; reopening it and re-running the
//! same grid skips every cached cell (the runner recomputes each
//! cell's key and looks it up here) and simulates only the remainder.
//! Loading is strict: unknown fields, malformed JSON, a wrong schema
//! tag, a duplicate key, or a key that does not match its manifest's
//! content hash all fail with a line-positioned error rather than
//! silently dropping or trusting the record.

use crate::error::AtlasError;
use crate::manifest::{CellManifest, CellResult, ATLAS_SCHEMA};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Default shard count for new stores.
pub const DEFAULT_SHARDS: usize = 4;

/// The store's `meta.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct StoreMeta {
    /// Always [`ATLAS_SCHEMA`].
    schema: String,
    /// Number of shards cell records are spread over.
    shards: usize,
}

/// One completed cell as persisted in a shard (and surfaced in
/// reports): the content-hash key, the full manifest it hashes, and
/// the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CellRecord {
    /// Always [`ATLAS_SCHEMA`].
    pub schema: String,
    /// [`CellManifest::cache_key`] of `manifest`.
    pub key: String,
    /// The cell's complete input record.
    pub manifest: CellManifest,
    /// The cell's bounds, achieved rate, and verdict.
    pub result: CellResult,
}

impl CellRecord {
    /// Builds a record, deriving the key from the manifest.
    pub fn new(manifest: CellManifest, result: CellResult) -> Self {
        CellRecord {
            schema: ATLAS_SCHEMA.to_owned(),
            key: manifest.cache_key(),
            manifest,
            result,
        }
    }
}

/// An open atlas store: the on-disk shard directory plus an in-memory
/// index of every record, keyed by cache key.
#[derive(Debug)]
pub struct AtlasStore {
    root: PathBuf,
    shards: usize,
    records: BTreeMap<String, CellRecord>,
}

impl AtlasStore {
    /// Creates a new store at `root` (the directory may exist but
    /// must not already hold a store), writing `meta.json` eagerly so
    /// a store killed before its first completed cell still reopens.
    ///
    /// # Errors
    ///
    /// [`AtlasError::BadSpec`] when `shards` is zero or a store
    /// already exists at `root`; [`AtlasError::Io`] on filesystem
    /// failure.
    pub fn create<P: AsRef<Path>>(root: P, shards: usize) -> Result<Self, AtlasError> {
        let root = root.as_ref().to_path_buf();
        if shards == 0 {
            return Err(AtlasError::BadSpec("store needs at least one shard".into()));
        }
        let meta_path = root.join("meta.json");
        if meta_path.exists() {
            return Err(AtlasError::BadSpec(format!(
                "store already exists at {}",
                root.display()
            )));
        }
        std::fs::create_dir_all(&root).map_err(|e| AtlasError::io(&root, e))?;
        let meta = StoreMeta {
            schema: ATLAS_SCHEMA.to_owned(),
            shards,
        };
        let text = serde_json::to_string(&meta).expect("meta serializes");
        std::fs::write(&meta_path, text + "\n").map_err(|e| AtlasError::io(&meta_path, e))?;
        Ok(AtlasStore {
            root,
            shards,
            records: BTreeMap::new(),
        })
    }

    /// Opens an existing store, loading and validating every shard.
    ///
    /// # Errors
    ///
    /// [`AtlasError::Io`] when `root` holds no `meta.json` or a file
    /// cannot be read; [`AtlasError::Malformed`] for schema
    /// violations, duplicate keys, or key/manifest hash mismatches.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, AtlasError> {
        let root = root.as_ref().to_path_buf();
        let meta_path = root.join("meta.json");
        let text =
            std::fs::read_to_string(&meta_path).map_err(|e| AtlasError::io(&meta_path, e))?;
        let meta: StoreMeta = serde_json::from_str(text.trim())
            .map_err(|e| AtlasError::malformed(&meta_path, 1, format!("bad meta: {e}")))?;
        if meta.schema != ATLAS_SCHEMA {
            return Err(AtlasError::malformed(
                &meta_path,
                1,
                format!("schema `{}`, expected `{ATLAS_SCHEMA}`", meta.schema),
            ));
        }
        if meta.shards == 0 {
            return Err(AtlasError::malformed(&meta_path, 1, "zero shards"));
        }
        let mut store = AtlasStore {
            root,
            shards: meta.shards,
            records: BTreeMap::new(),
        };
        for shard in 0..store.shards {
            store.load_shard(shard)?;
        }
        Ok(store)
    }

    /// Opens the store at `root`, creating it (with `shards` shards)
    /// if none exists yet — the entry point `nsc atlas run` uses.
    ///
    /// # Errors
    ///
    /// As [`AtlasStore::create`] and [`AtlasStore::open`].
    pub fn create_or_open<P: AsRef<Path>>(root: P, shards: usize) -> Result<Self, AtlasError> {
        if root.as_ref().join("meta.json").exists() {
            Self::open(root)
        } else {
            Self::create(root, shards)
        }
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:02}.jsonl"))
    }

    fn load_shard(&mut self, shard: usize) -> Result<(), AtlasError> {
        let path = self.shard_path(shard);
        let file = match File::open(&path) {
            Ok(f) => f,
            // A shard with no records yet was never created.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(AtlasError::io(&path, e)),
        };
        for (idx, line) in BufReader::new(file).lines().enumerate() {
            let lineno = idx as u64 + 1;
            let line = line.map_err(|e| AtlasError::io(&path, e))?;
            if line.trim().is_empty() {
                // A record is flushed as one atomic line; an empty
                // trailing line would mean a torn write.
                return Err(AtlasError::malformed(&path, lineno, "empty record line"));
            }
            let record: CellRecord = serde_json::from_str(&line)
                .map_err(|e| AtlasError::malformed(&path, lineno, e.to_string()))?;
            self.validate_record(&record, &path, lineno, shard)?;
            self.records.insert(record.key.clone(), record);
        }
        Ok(())
    }

    fn validate_record(
        &self,
        record: &CellRecord,
        path: &Path,
        lineno: u64,
        shard: usize,
    ) -> Result<(), AtlasError> {
        if record.schema != ATLAS_SCHEMA {
            return Err(AtlasError::malformed(
                path,
                lineno,
                format!("schema `{}`, expected `{ATLAS_SCHEMA}`", record.schema),
            ));
        }
        let expected = record.manifest.cache_key();
        if record.key != expected {
            return Err(AtlasError::malformed(
                path,
                lineno,
                format!(
                    "key `{}` does not match manifest content hash `{expected}`",
                    record.key
                ),
            ));
        }
        if self.shard_index(&record.key) != shard {
            return Err(AtlasError::malformed(
                path,
                lineno,
                format!(
                    "key `{}` belongs in shard {}, found in shard {shard}",
                    record.key,
                    self.shard_index(&record.key)
                ),
            ));
        }
        if self.records.contains_key(&record.key) {
            return Err(AtlasError::malformed(
                path,
                lineno,
                format!("duplicate key `{}`", record.key),
            ));
        }
        Ok(())
    }

    /// Which shard a cache key lives in: the key's leading 64 bits
    /// modulo the shard count — a pure function of cell identity.
    pub fn shard_index(&self, key: &str) -> usize {
        let head = key.get(..16).unwrap_or(key);
        let value = u64::from_str_radix(head, 16).unwrap_or(0);
        (value % self.shards as u64) as usize
    }

    /// Appends one completed cell and flushes it to disk before
    /// returning, so a kill after this call never loses the cell.
    ///
    /// # Errors
    ///
    /// [`AtlasError::BadSpec`] when the key is already present (the
    /// runner checks the cache before simulating, so a duplicate
    /// insert is a logic error worth loud failure);
    /// [`AtlasError::Io`] on filesystem failure.
    pub fn insert(&mut self, record: CellRecord) -> Result<(), AtlasError> {
        if self.records.contains_key(&record.key) {
            return Err(AtlasError::BadSpec(format!(
                "cell `{}` is already cached",
                record.key
            )));
        }
        let path = self.shard_path(self.shard_index(&record.key));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| AtlasError::io(&path, e))?;
        let mut line = serde_json::to_string(&record).expect("records serialize");
        line.push('\n');
        file.write_all(line.as_bytes())
            .map_err(|e| AtlasError::io(&path, e))?;
        file.flush().map_err(|e| AtlasError::io(&path, e))?;
        self.records.insert(record.key.clone(), record);
        Ok(())
    }

    /// Looks a cell up by cache key.
    pub fn get(&self, key: &str) -> Option<&CellRecord> {
        self.records.get(key)
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Verdict;
    use nsc_core::bounds::capacity_bound_families;
    use nsc_core::engine::Mechanism;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("nsc-atlas-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn record(bits: u32, p_d: f64, p_i: f64) -> CellRecord {
        let knobs = crate::manifest::CellKnobs {
            trials: 16,
            message_len: 8,
            master_seed: 7,
            batch_size: 32,
        };
        let manifest = CellManifest::new(&Mechanism::Counter, bits, p_d, p_i, &knobs);
        let families = capacity_bound_families(bits, p_d, p_i).unwrap();
        let stat = |mean: f64| nsc_core::engine::StatSummary {
            n: 16,
            mean,
            std_error: 0.01,
            ci95_lo: mean - 0.02,
            ci95_hi: mean + 0.02,
        };
        let result = CellResult {
            bounds: families,
            achieved: stat(0.25),
            measured_p_d: stat(p_d),
            measured_p_i: stat(p_i),
            verdict: Verdict::from_families(&families),
        };
        CellRecord::new(manifest, result)
    }

    #[test]
    fn create_insert_reopen_round_trip() {
        let root = temp_root("roundtrip");
        let mut store = AtlasStore::create(&root, 3).unwrap();
        assert!(store.is_empty());
        let records = [
            record(1, 0.0, 0.0),
            record(2, 0.25, 0.0),
            record(4, 0.25, 0.25),
            record(8, 0.5, 0.125),
        ];
        for r in &records {
            store.insert(r.clone()).unwrap();
        }
        assert_eq!(store.len(), 4);

        let reopened = AtlasStore::open(&root).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.shards(), 3);
        for r in &records {
            assert_eq!(reopened.get(&r.key), Some(r));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn create_refuses_existing_store_and_open_requires_one() {
        let root = temp_root("exists");
        AtlasStore::create(&root, 2).unwrap();
        assert!(matches!(
            AtlasStore::create(&root, 2),
            Err(AtlasError::BadSpec(_))
        ));
        // create_or_open reopens instead.
        let store = AtlasStore::create_or_open(&root, 99).unwrap();
        assert_eq!(store.shards(), 2, "existing meta wins over the argument");
        std::fs::remove_dir_all(&root).unwrap();
        assert!(matches!(
            AtlasStore::open(&root),
            Err(AtlasError::Io { .. })
        ));
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let root = temp_root("dup");
        let mut store = AtlasStore::create(&root, 2).unwrap();
        let r = record(4, 0.25, 0.0);
        store.insert(r.clone()).unwrap();
        assert!(matches!(store.insert(r), Err(AtlasError::BadSpec(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tampered_manifest_fails_key_check_on_load() {
        let root = temp_root("tamper");
        let mut store = AtlasStore::create(&root, 1).unwrap();
        store.insert(record(4, 0.25, 0.0)).unwrap();
        let shard = root.join("shard-00.jsonl");
        let text = std::fs::read_to_string(&shard).unwrap();
        // Flip the trial count without re-keying: the content hash
        // no longer matches.
        let tampered = text.replace("\"trials\":16", "\"trials\":17");
        assert_ne!(tampered, text);
        std::fs::write(&shard, tampered).unwrap();
        let err = AtlasStore::open(&root).unwrap_err();
        assert!(
            matches!(err, AtlasError::Malformed { line: 1, .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unknown_fields_and_bad_json_are_rejected_with_line_numbers() {
        let root = temp_root("strict");
        let mut store = AtlasStore::create(&root, 1).unwrap();
        store.insert(record(1, 0.0, 0.0)).unwrap();
        let shard = root.join("shard-00.jsonl");
        let good = std::fs::read_to_string(&shard).unwrap();
        std::fs::write(&shard, format!("{good}not json\n")).unwrap();
        let err = AtlasStore::open(&root).unwrap_err();
        assert!(
            matches!(err, AtlasError::Malformed { line: 2, .. }),
            "{err:?}"
        );
        std::fs::write(
            &shard,
            good.trim_end().replace("}}", "},\"extra\":1}") + "\n",
        )
        .unwrap();
        assert!(matches!(
            AtlasStore::open(&root),
            Err(AtlasError::Malformed { line: 1, .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shard_assignment_is_stable_and_within_range() {
        let root = temp_root("shardidx");
        let store = AtlasStore::create(&root, 4).unwrap();
        for r in [record(1, 0.0, 0.0), record(8, 0.5, 0.25)] {
            let s = store.shard_index(&r.key);
            assert!(s < 4);
            assert_eq!(s, store.shard_index(&r.key));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
