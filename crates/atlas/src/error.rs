//! Error type for the atlas subsystem.

use nsc_core::CoreError;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors produced by the atlas store and runner.
#[derive(Debug)]
pub enum AtlasError {
    /// An underlying bounds/engine error from `nsc-core`.
    Core(CoreError),
    /// A filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A store file violated the `nsc-atlas/v1` format.
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number of the rejected record.
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// An atlas specification or store argument was invalid.
    BadSpec(String),
    /// `nsc atlas report` was asked for a grid the store has not
    /// finished: reports never simulate, so missing cells are an
    /// error, not work.
    MissingCells {
        /// Cells of the requested grid present in the store.
        present: usize,
        /// Cells of the requested grid absent from the store.
        missing: usize,
    },
}

impl AtlasError {
    /// Wraps an I/O error with the path it happened on.
    pub fn io(path: &Path, source: std::io::Error) -> Self {
        AtlasError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    /// Builds a line-positioned format violation.
    pub fn malformed(path: &Path, line: u64, message: impl Into<String>) -> Self {
        AtlasError::Malformed {
            path: path.to_path_buf(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::Core(e) => write!(f, "core error: {e}"),
            AtlasError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            AtlasError::Malformed {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
            AtlasError::BadSpec(msg) => write!(f, "bad atlas spec: {msg}"),
            AtlasError::MissingCells { present, missing } => write!(
                f,
                "store covers {present} of {} grid cells ({missing} missing): \
                 run `nsc atlas resume` to complete it before reporting",
                present + missing
            ),
        }
    }
}

impl std::error::Error for AtlasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtlasError::Core(e) => Some(e),
            AtlasError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CoreError> for AtlasError {
    fn from(e: CoreError) -> Self {
        AtlasError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_positioned() {
        let errs: Vec<AtlasError> = vec![
            AtlasError::Core(CoreError::BadSimulation("x".into())),
            AtlasError::io(
                Path::new("/tmp/store"),
                std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            ),
            AtlasError::malformed(Path::new("shard-00.jsonl"), 7, "bad record"),
            AtlasError::BadSpec("no widths".into()),
            AtlasError::MissingCells {
                present: 3,
                missing: 2,
            },
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[2].to_string().contains(":7:"));
        assert!(errs[4].to_string().contains("3 of 5"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = AtlasError::Core(CoreError::BadSimulation("x".into()));
        assert!(e.source().is_some());
        assert!(AtlasError::BadSpec("x".into()).source().is_none());
    }
}
