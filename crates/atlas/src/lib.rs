//! Resumable, content-addressed capacity atlas over the
//! `(P_d, P_i, N)` plane.
//!
//! The paper's Theorem 5 is a single lower bound; the atlas surveys
//! it against the erasure upper bound, the Kanoria–Montanari
//! small-deletion expansion, a VTR-style no-feedback achievable
//! rate, and a simulated engine campaign — over a whole parameter
//! rectangle at once, with a verdict per cell saying where the
//! paper's bound is loose.
//!
//! The subsystem is three layers:
//!
//! * [`manifest`] — the per-cell [`CellManifest`] (every
//!   determinism-relevant input), its content-hash
//!   [`cache key`](CellManifest::cache_key), and the per-cell
//!   [`CellResult`]/[`Verdict`].
//! * [`store`] — the sharded, append-only `nsc-atlas/v1` JSONL
//!   [`AtlasStore`]: one flushed line per completed cell, strict
//!   line-positioned validation on reload.
//! * [`runner`] — [`run`]/[`report`] over an [`AtlasSpec`]: cache
//!   hits skip simulation entirely, so a killed run resumes by
//!   rerunning the same command, and a finished store renders
//!   reports without touching the engine.
//!
//! The headline invariant, enforced in CI: a fresh run and any
//! kill/resume sequence over the same spec produce **byte-identical**
//! reports (after stripping the observational
//! `manifest.execution` section) at any thread count and on either
//! kernel.

pub mod error;
pub mod manifest;
pub mod runner;
pub mod store;

pub use error::AtlasError;
pub use manifest::{
    schedule_bias, CellKnobs, CellManifest, CellResult, Verdict, ATLAS_SCHEMA,
    THEOREM5_LOOSE_THRESHOLD,
};
pub use runner::{report, run, AtlasReport, AtlasSpec, AtlasTotals, RunTotals, ShardSummary};
pub use store::{AtlasStore, CellRecord, DEFAULT_SHARDS};
