//! The grid-campaign runner: enumerate cells, skip cache hits,
//! simulate the misses, and assemble the deterministic report.
//!
//! # Cell semantics
//!
//! Each cell `(P_d, P_i, N)` is evaluated two ways:
//!
//! * **Analytically** — every bound family of
//!   [`nsc_core::bounds::capacity_bound_families`] at exactly
//!   `(P_d, P_i, N)`, plus the derived tightness
//!   [`Verdict`](crate::manifest::Verdict).
//! * **By simulation** — a deterministic engine campaign of the
//!   spec's mechanism. In this codebase's model the non-synchrony is
//!   *generated* by the operation schedule, not injected as channel
//!   parameters: under Bernoulli-`q` scheduling the unsynchronized
//!   baseline induces `P_d = q` and `P_i = 1 − q`
//!   ([`nsc_core::sim::analysis`]). The runner therefore maps the
//!   cell's coordinates onto the one schedule degree of freedom as
//!   `q = P_d / (P_d + P_i)` (`0.5` at the origin) — the cell fixes
//!   the sender/receiver *imbalance* that produces its nominal
//!   deletion/insertion mix — and the campaign measures what the
//!   mechanism achieves (and which `P_d`, `P_i` it actually
//!   induces) at that imbalance. The measured values are reported
//!   next to the nominal coordinates rather than silently assumed
//!   equal.
//!
//! # Determinism
//!
//! A report is a pure function of `(spec, store contents)`: cell
//! seeds derive from coordinates, campaigns are engine-deterministic
//! at any thread count and kernel, cells are sorted by coordinate,
//! and shard assignment is content-addressed. This is what the
//! fresh-run ≡ resumed-run byte-equality oracle in CI checks.

use crate::error::AtlasError;
use crate::manifest::{CellKnobs, CellManifest, CellResult, Verdict, ATLAS_SCHEMA};
use crate::store::{AtlasStore, CellRecord};
use nsc_core::bounds::capacity_bound_families;
use nsc_core::engine::{run_campaign, KernelKind, Mechanism, TrialPlan};
use nsc_core::sweep::Grid;
use nsc_core::EngineConfig;
use serde::{Deserialize, Serialize};

/// The full specification of an atlas: grid, mechanism, and every
/// determinism-relevant knob. Execution strategy (threads, kernel)
/// is deliberately *not* part of the spec — see
/// [`crate::manifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AtlasSpec {
    /// Symbol widths surveyed (the `N` axis).
    pub widths: Vec<u32>,
    /// Deletion-probability grid.
    pub p_d: Grid,
    /// Insertion-probability grid.
    pub p_i: Grid,
    /// Mechanism simulated per cell. Restricted to mechanisms with a
    /// bitsliced kernel twin so every atlas can be driven — and
    /// byte-compared — on either kernel.
    pub mechanism: Mechanism,
    /// Trials per cell.
    pub trials: usize,
    /// Message length in symbols per trial.
    pub message_len: usize,
    /// Atlas master seed; each cell's campaign seed derives from it
    /// and the cell coordinates.
    pub master_seed: u64,
    /// Engine batch size (fixes the floating-point merge order).
    pub batch_size: usize,
}

impl AtlasSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`AtlasError::BadSpec`] for an empty width list, a
    /// mechanism without a bitsliced twin, or zero trials, message
    /// length, or batch size.
    pub fn validate(&self) -> Result<(), AtlasError> {
        if self.widths.is_empty() {
            return Err(AtlasError::BadSpec("need at least one width".into()));
        }
        if !self.mechanism.has_bitsliced_kernel() {
            return Err(AtlasError::BadSpec(format!(
                "mechanism `{}` has no bitsliced kernel; the atlas only runs \
                 kernel-equivalent mechanisms (unsync, counter, slotted)",
                self.mechanism.name()
            )));
        }
        if self.trials == 0 {
            return Err(AtlasError::BadSpec("need at least one trial".into()));
        }
        if self.message_len == 0 {
            return Err(AtlasError::BadSpec("need a nonempty message".into()));
        }
        if self.batch_size == 0 {
            return Err(AtlasError::BadSpec("need a nonzero batch size".into()));
        }
        Ok(())
    }

    /// The non-coordinate cell inputs of the spec, as passed to
    /// [`CellManifest::new`].
    pub fn knobs(&self) -> CellKnobs {
        CellKnobs {
            trials: self.trials,
            message_len: self.message_len,
            master_seed: self.master_seed,
            batch_size: self.batch_size,
        }
    }

    /// Enumerates the grid into per-cell manifests in deterministic
    /// `(width, p_d, p_i)` row-major order, skipping points outside
    /// the parameter simplex (`p_d + p_i > 1` or `p_i = 1`) exactly
    /// like [`nsc_core::sweep`]. Returns the manifests and the
    /// skipped count (reported, so truncation is never silent).
    ///
    /// # Errors
    ///
    /// As [`AtlasSpec::validate`].
    pub fn cells(&self) -> Result<(Vec<CellManifest>, usize), AtlasError> {
        self.validate()?;
        let knobs = self.knobs();
        let mut cells = Vec::new();
        let mut skipped = 0usize;
        for &bits in &self.widths {
            for &p_d in &self.p_d.values() {
                for &p_i in &self.p_i.values() {
                    if p_d + p_i > 1.0 || p_i >= 1.0 {
                        skipped += 1;
                        continue;
                    }
                    cells.push(CellManifest::new(&self.mechanism, bits, p_d, p_i, &knobs));
                }
            }
        }
        Ok((cells, skipped))
    }

    /// Stable one-line descriptor of the spec, recorded in the CLI
    /// run manifest so an atlas can be re-run from its own output.
    pub fn describe(&self) -> String {
        format!(
            "atlas(mechanism={}, widths={:?}, p_d=[{}..{}; {}], p_i=[{}..{}; {}], \
             trials={}, len={}, seed={}, batch={})",
            self.mechanism,
            self.widths,
            self.p_d.start,
            self.p_d.end,
            self.p_d.points,
            self.p_i.start,
            self.p_i.end,
            self.p_i.points,
            self.trials,
            self.message_len,
            self.master_seed,
            self.batch_size
        )
    }
}

/// Aggregate counters over a report's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AtlasTotals {
    /// Completed cells in the report.
    pub cells: usize,
    /// Grid points outside the parameter simplex.
    pub skipped: usize,
    /// Cells where Theorem 5 is loose
    /// ([`crate::manifest::THEOREM5_LOOSE_THRESHOLD`]).
    pub theorem5_loose: usize,
    /// Cells where another family beats Theorem 5.
    pub theorem5_beaten: usize,
}

/// Per-shard cell count of the report's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Report cells stored in this shard.
    pub cells: usize,
}

/// The atlas report: every completed cell of a spec's grid plus
/// aggregate verdicts — a pure function of `(spec, store contents)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AtlasReport {
    /// Always [`ATLAS_SCHEMA`].
    pub schema: String,
    /// The spec the report covers.
    pub spec: AtlasSpec,
    /// Aggregate counters.
    pub totals: AtlasTotals,
    /// Sharded distribution of the report's cells.
    pub shards: Vec<ShardSummary>,
    /// Completed cells sorted by `(bits, p_d, p_i)`.
    pub cells: Vec<CellRecord>,
}

/// Observational outcome of one `run` invocation: how much work the
/// cache saved. Reported in the CLI's `manifest.execution` section
/// only — two runs reaching the same final store may differ here and
/// still produce byte-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTotals {
    /// Cells simulated by this invocation.
    pub computed: usize,
    /// Cells skipped because the store already held them.
    pub cached: usize,
    /// Cells left uncomputed by a `max_cells` cap.
    pub pending: usize,
}

/// Simulates one cell and evaluates its bounds.
fn compute_cell(
    mechanism: Mechanism,
    manifest: &CellManifest,
    threads: usize,
    kernel: KernelKind,
) -> Result<CellResult, AtlasError> {
    debug_assert_eq!(mechanism.to_string(), manifest.mechanism);
    // The plan is reconstructed field-by-field from the manifest (not
    // re-derived from a spec) so a cached manifest is sufficient to
    // reproduce its cell exactly.
    let plan = TrialPlan {
        mechanism,
        bits: manifest.bits,
        message_len: manifest.message_len,
        sender_prob: manifest.sender_prob,
        max_ops: manifest.max_ops,
    };
    let config = EngineConfig {
        master_seed: manifest.cell_seed,
        threads,
        batch_size: manifest.batch_size,
        kernel,
    };
    let summary = run_campaign(&config, &plan, manifest.trials)?;
    let families = capacity_bound_families(manifest.bits, manifest.p_d, manifest.p_i)?;
    Ok(CellResult {
        bounds: families,
        achieved: summary.rate,
        measured_p_d: summary.p_d,
        measured_p_i: summary.p_i,
        verdict: Verdict::from_families(&families),
    })
}

/// Runs (or resumes) an atlas: enumerates the spec's cells, serves
/// cache hits from the store without simulating, computes at most
/// `max_cells` misses (all of them when `None`), and assembles the
/// report over every cell completed so far.
///
/// Interrupting a run loses nothing but the cell in flight: each
/// completed cell is flushed to the store before the next begins,
/// and a subsequent `run` with the same spec picks up where the dead
/// one stopped. `resume` is this same function — resumption is a
/// property of the store, not a separate code path.
///
/// # Errors
///
/// Propagates spec validation, engine, and store errors.
pub fn run(
    store: &mut AtlasStore,
    spec: &AtlasSpec,
    threads: usize,
    kernel: KernelKind,
    max_cells: Option<usize>,
) -> Result<(AtlasReport, RunTotals), AtlasError> {
    let (cells, skipped) = spec.cells()?;
    let mut totals = RunTotals {
        computed: 0,
        cached: 0,
        pending: 0,
    };
    let mut records: Vec<CellRecord> = Vec::with_capacity(cells.len());
    for manifest in cells {
        let key = manifest.cache_key();
        if let Some(record) = store.get(&key) {
            totals.cached += 1;
            records.push(record.clone());
            continue;
        }
        if max_cells.is_some_and(|cap| totals.computed >= cap) {
            totals.pending += 1;
            continue;
        }
        let result = compute_cell(spec.mechanism, &manifest, threads, kernel)?;
        let record = CellRecord::new(manifest, result);
        store.insert(record.clone())?;
        totals.computed += 1;
        records.push(record);
    }
    Ok((assemble(store, spec, records, skipped), totals))
}

/// Builds the report for a spec whose grid the store has already
/// completed. Never simulates.
///
/// # Errors
///
/// Returns [`AtlasError::MissingCells`] when any grid cell is absent
/// from the store, plus spec validation errors.
pub fn report(store: &AtlasStore, spec: &AtlasSpec) -> Result<AtlasReport, AtlasError> {
    let (cells, skipped) = spec.cells()?;
    let total = cells.len();
    let mut records: Vec<CellRecord> = Vec::with_capacity(total);
    for manifest in cells {
        if let Some(record) = store.get(&manifest.cache_key()) {
            records.push(record.clone());
        }
    }
    if records.len() != total {
        return Err(AtlasError::MissingCells {
            present: records.len(),
            missing: total - records.len(),
        });
    }
    Ok(assemble(store, spec, records, skipped))
}

/// Sorts completed cells and derives the aggregate sections.
fn assemble(
    store: &AtlasStore,
    spec: &AtlasSpec,
    mut records: Vec<CellRecord>,
    skipped: usize,
) -> AtlasReport {
    records.sort_by(|a, b| {
        a.manifest
            .bits
            .cmp(&b.manifest.bits)
            .then(a.manifest.p_d.total_cmp(&b.manifest.p_d))
            .then(a.manifest.p_i.total_cmp(&b.manifest.p_i))
    });
    let mut shards = vec![0usize; store.shards()];
    let mut loose = 0usize;
    let mut beaten = 0usize;
    for r in &records {
        shards[store.shard_index(&r.key)] += 1;
        if r.result.verdict.theorem5_loose {
            loose += 1;
        }
        if r.result.verdict.theorem5_beaten {
            beaten += 1;
        }
    }
    AtlasReport {
        schema: ATLAS_SCHEMA.to_owned(),
        spec: spec.clone(),
        totals: AtlasTotals {
            cells: records.len(),
            skipped,
            theorem5_loose: loose,
            theorem5_beaten: beaten,
        },
        shards: shards
            .into_iter()
            .enumerate()
            .map(|(shard, cells)| ShardSummary { shard, cells })
            .collect(),
        cells: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "nsc-atlas-runner-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn small_spec() -> AtlasSpec {
        AtlasSpec {
            widths: vec![1, 2],
            p_d: Grid::new(0.0, 0.5, 2).unwrap(),
            p_i: Grid::new(0.0, 0.5, 2).unwrap(),
            mechanism: Mechanism::Counter,
            trials: 8,
            message_len: 8,
            master_seed: 7,
            batch_size: 4,
        }
    }

    #[test]
    fn spec_validation() {
        let mut s = small_spec();
        s.widths.clear();
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.mechanism = Mechanism::StopWait;
        assert!(matches!(s.validate(), Err(AtlasError::BadSpec(_))));
        let mut s = small_spec();
        s.trials = 0;
        assert!(s.validate().is_err());
        assert!(small_spec().validate().is_ok());
    }

    #[test]
    fn cells_enumerate_the_simplex_with_skip_count() {
        let mut spec = small_spec();
        spec.p_d = Grid::new(0.0, 1.0, 3).unwrap();
        spec.p_i = Grid::new(0.0, 1.0, 3).unwrap();
        let (cells, skipped) = spec.cells().unwrap();
        // Per width: 3×3 = 9 points; (p_i = 1) kills 3, p_d+p_i > 1
        // kills (1, 0.5) and (0.5, 1)-already-counted… enumerate:
        // kept = (0,0) (0,.5) (.5,0) (.5,.5) (1,0) → 5, skipped 4.
        assert_eq!(cells.len(), 2 * 5);
        assert_eq!(skipped, 2 * 4);
        // Deterministic order and seeds derived from coordinates.
        let again = spec.cells().unwrap().0;
        assert_eq!(cells, again);
    }

    #[test]
    fn run_computes_once_then_serves_from_cache() {
        let root = temp_root("cache");
        let spec = small_spec();
        let mut store = AtlasStore::create(&root, 2).unwrap();
        let (report_a, t_a) = run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(t_a.computed, report_a.totals.cells);
        assert_eq!(t_a.cached, 0);
        assert_eq!(t_a.pending, 0);

        let (report_b, t_b) = run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(t_b.computed, 0, "second run must be all cache hits");
        assert_eq!(t_b.cached, report_a.totals.cells);
        assert_eq!(report_a, report_b);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn capped_run_resumes_to_the_same_report() {
        let root_fresh = temp_root("oracle-fresh");
        let root_resumed = temp_root("oracle-resumed");
        let spec = small_spec();

        let mut fresh = AtlasStore::create(&root_fresh, 2).unwrap();
        let (fresh_report, _) = run(&mut fresh, &spec, 1, KernelKind::Scalar, None).unwrap();

        // Kill the run after 3 cells (the cap models the kill)…
        let mut interrupted = AtlasStore::create(&root_resumed, 2).unwrap();
        let (partial, t) = run(&mut interrupted, &spec, 1, KernelKind::Scalar, Some(3)).unwrap();
        assert_eq!(t.computed, 3);
        assert!(t.pending > 0);
        assert_eq!(
            partial.totals.cells, 3,
            "partial report holds only completed cells"
        );

        // …reopen the store and resume: only the remainder computes.
        let mut reopened = AtlasStore::open(&root_resumed).unwrap();
        let (resumed_report, t2) = run(&mut reopened, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(t2.cached, 3);
        assert_eq!(t2.computed, fresh_report.totals.cells - 3);
        assert_eq!(resumed_report, fresh_report);
        std::fs::remove_dir_all(&root_fresh).unwrap();
        std::fs::remove_dir_all(&root_resumed).unwrap();
    }

    #[test]
    fn report_requires_a_complete_store() {
        let root = temp_root("report");
        let spec = small_spec();
        let mut store = AtlasStore::create(&root, 2).unwrap();
        run(&mut store, &spec, 1, KernelKind::Scalar, Some(2)).unwrap();
        assert!(matches!(
            report(&store, &spec),
            Err(AtlasError::MissingCells { present: 2, .. })
        ));
        let (full, _) = run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(report(&store, &spec).unwrap(), full);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn overlapping_grids_share_cached_cells() {
        let root = temp_root("overlap");
        let spec = small_spec();
        let mut store = AtlasStore::create(&root, 2).unwrap();
        run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        // A wider grid that contains the old one as a sub-grid: the
        // shared cells must be cache hits.
        let mut wider = spec.clone();
        wider.widths = vec![1, 2, 4];
        let (_, t) = run(&mut store, &wider, 1, KernelKind::Scalar, None).unwrap();
        assert!(t.cached > 0, "sub-grid cells must hit the cache");
        assert_eq!(t.cached + t.computed, wider.cells().unwrap().0.len());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn report_counts_loose_cells_at_narrow_widths() {
        // N = 1 with insertions is the paper's loose regime.
        let root = temp_root("loose");
        let spec = AtlasSpec {
            widths: vec![1],
            p_d: Grid::fixed(0.0),
            p_i: Grid::new(0.0, 0.45, 2).unwrap(),
            mechanism: Mechanism::Counter,
            trials: 4,
            message_len: 8,
            master_seed: 1,
            batch_size: 4,
        };
        let mut store = AtlasStore::create(&root, 1).unwrap();
        let (rep, _) = run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(rep.totals.cells, 2);
        assert_eq!(rep.totals.theorem5_loose, 1, "the p_i = 0.45 cell");
        assert_eq!(rep.totals.theorem5_beaten, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn describe_round_trips_the_knobs() {
        let d = small_spec().describe();
        assert!(d.starts_with("atlas(mechanism=counter"), "{d}");
        assert!(d.contains("widths=[1, 2]"), "{d}");
        assert!(d.contains("trials=8"), "{d}");
    }
}
