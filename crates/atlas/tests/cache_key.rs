//! Cache-key stability: a golden test pinning the content hash for a
//! fully explicit manifest, plus property tests that every semantic
//! field change changes the key while no-op re-serialization never
//! does.
//!
//! The golden pin is what makes cache compatibility a *reviewed*
//! decision: any change to the canonical rendering or the hash shows
//! up here as a failing test, forcing the author to either revert or
//! consciously accept that every existing store goes cold.

use nsc_atlas::manifest::cell_seed;
use nsc_atlas::{AtlasSpec, CellKnobs, CellManifest};
use nsc_core::engine::Mechanism;
use nsc_core::sweep::Grid;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A manifest with every field explicit (no `ENGINE_VERSION` or
/// `BOUND_FAMILY_VERSIONS` snapshotting), so the golden value cannot
/// drift with workspace version bumps — only with deliberate changes
/// to the canonical rendering or the hash itself.
fn golden_manifest() -> CellManifest {
    CellManifest {
        bits: 4,
        p_d: 0.25,
        p_i: 0.125,
        mechanism: "counter".to_owned(),
        trials: 64,
        message_len: 32,
        sender_prob: 0.5,
        max_ops: 4096,
        master_seed: 7,
        cell_seed: cell_seed(7, 4, 0.25, 0.125),
        batch_size: 32,
        engine_version: "0.1.0-golden".to_owned(),
        bound_versions: [
            ("erasure".to_owned(), 1),
            ("kanoria-montanari".to_owned(), 1),
            ("theorem5".to_owned(), 1),
            ("vtr".to_owned(), 1),
        ]
        .into_iter()
        .collect::<BTreeMap<_, _>>(),
    }
}

#[test]
fn golden_cell_seed_and_cache_key() {
    assert_eq!(cell_seed(7, 4, 0.25, 0.125), 0x81c8_3e4a_6000_b941);
    let m = golden_manifest();
    assert_eq!(
        String::from_utf8(m.canonical_bytes()).unwrap(),
        "nsc-atlas/v1|cell|bits=4|p_d=3fd0000000000000|p_i=3fc0000000000000|\
         mechanism=counter|trials=64|len=32|q=3fe0000000000000|max_ops=4096|\
         master_seed=0000000000000007|cell_seed=81c83e4a6000b941|batch_size=32|\
         engine=0.1.0-golden|bounds=[erasure:1,kanoria-montanari:1,theorem5:1,vtr:1]"
    );
    assert_eq!(m.cache_key(), "63bb788fa6788634c549ed022ce87109");
}

#[test]
fn golden_keys_for_a_fixed_grid() {
    // The full key list of a small fixed grid, pinned: cache
    // compatibility of whole stores, not just one cell.
    let spec = AtlasSpec {
        widths: vec![1, 4],
        p_d: Grid::new(0.0, 0.5, 2).unwrap(),
        p_i: Grid::fixed(0.0),
        mechanism: Mechanism::Counter,
        trials: 16,
        message_len: 8,
        master_seed: 42,
        batch_size: 32,
    };
    let (cells, skipped) = spec.cells().unwrap();
    assert_eq!(skipped, 0);
    let keys: Vec<String> = cells
        .iter()
        .map(|c| {
            // Pin the version-dependent fields to golden values so
            // this list, like the single-cell golden, only moves
            // when the canonical rendering moves.
            let mut c = c.clone();
            c.engine_version = "0.1.0-golden".to_owned();
            c.bound_versions = golden_manifest().bound_versions;
            c.cache_key()
        })
        .collect();
    assert_eq!(
        keys,
        [
            "45441b10199dee3bc7268a69002e08cc",
            "c568a4e7025e8645b0aa5f92abd3cb1f",
            "de274d2f87bd1258b96c3cc40e3fdde7",
            "f29986339c576121ad53bfda66f35c7f",
        ]
    );
}

proptest! {
    #[test]
    fn any_param_change_changes_the_key(
        bits in 1u32..=16,
        p_d_steps in 0u32..=10,
        p_i_steps in 0u32..=9,
        trials in 1usize..=512,
        len in 1usize..=128,
        seed in any::<u64>(),
        version in 1u32..=8,
    ) {
        let p_d = f64::from(p_d_steps) * 0.05;
        let p_i = f64::from(p_i_steps) * 0.05;
        let knobs = CellKnobs { trials, message_len: len, master_seed: seed, batch_size: 32 };
        let base = CellManifest::new(&Mechanism::Counter, bits, p_d, p_i, &knobs);
        let base_key = base.cache_key();

        // Grid point.
        let moved = CellManifest::new(&Mechanism::Counter, bits, p_d + 0.001, p_i, &knobs);
        prop_assert_ne!(moved.cache_key(), base_key.clone());

        // Seed.
        let reseeded = CellManifest::new(
            &Mechanism::Counter, bits, p_d, p_i,
            &CellKnobs { master_seed: seed.wrapping_add(1), ..knobs },
        );
        prop_assert_ne!(reseeded.cache_key(), base_key.clone());

        // Bound-family version.
        let mut rebound = base.clone();
        rebound.bound_versions.insert("theorem5".to_owned(), version + 1);
        prop_assert_ne!(rebound.cache_key(), base_key.clone());

        // Engine version.
        let mut reengined = base.clone();
        reengined.engine_version.push_str("-next");
        prop_assert_ne!(reengined.cache_key(), base_key);
    }

    #[test]
    fn reserialization_is_a_no_op_for_the_key(
        bits in 1u32..=16,
        p_d_steps in 0u32..=10,
        p_i_steps in 0u32..=9,
        trials in 1usize..=512,
        seed in any::<u64>(),
    ) {
        let p_d = f64::from(p_d_steps) * 0.05;
        let p_i = f64::from(p_i_steps) * 0.05;
        let knobs = CellKnobs { trials, message_len: 16, master_seed: seed, batch_size: 32 };
        let m = CellManifest::new(&Mechanism::Counter, bits, p_d, p_i, &knobs);
        let key = m.cache_key();
        // JSON round-trip.
        let back: CellManifest =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        prop_assert_eq!(back.cache_key(), key.clone());
        // Pretty-printed round-trip (different byte stream, same
        // manifest).
        let back: CellManifest =
            serde_json::from_str(&serde_json::to_string_pretty(&m).unwrap()).unwrap();
        prop_assert_eq!(back.cache_key(), key.clone());
        // And a second round-trip of the round-trip.
        let again: CellManifest =
            serde_json::from_str(&serde_json::to_string(&back).unwrap()).unwrap();
        prop_assert_eq!(again.cache_key(), key);
    }

    #[test]
    fn distinct_coordinates_never_collide_on_a_grid(
        seed in any::<u64>(),
    ) {
        let spec = AtlasSpec {
            widths: vec![1, 2, 4, 8],
            p_d: Grid::new(0.0, 0.5, 4).unwrap(),
            p_i: Grid::new(0.0, 0.5, 4).unwrap(),
            mechanism: Mechanism::Counter,
            trials: 8,
            message_len: 8,
            master_seed: seed,
            batch_size: 32,
        };
        let (cells, _) = spec.cells().unwrap();
        let mut keys: Vec<String> = cells.iter().map(CellManifest::cache_key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), total);
    }
}
