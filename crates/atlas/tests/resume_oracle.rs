//! The resume oracle at the library level: a killed-and-resumed atlas
//! must produce a report **byte-identical** to an uninterrupted fresh
//! run — at any thread count, on either kernel, resumed by a
//! different execution configuration than the one that started it.
//!
//! (The CI `atlas` job re-checks the same invariant end-to-end
//! through the CLI with `jq -S` diffs; this file is the fast,
//! debuggable version.)

use nsc_atlas::{report, run, AtlasSpec, AtlasStore};
use nsc_core::engine::{KernelKind, Mechanism};
use nsc_core::sweep::Grid;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "nsc-atlas-oracle-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn spec(mechanism: Mechanism) -> AtlasSpec {
    AtlasSpec {
        widths: vec![1, 4],
        p_d: Grid::new(0.0, 0.5, 2).unwrap(),
        p_i: Grid::new(0.0, 0.5, 2).unwrap(),
        mechanism,
        trials: 16,
        message_len: 8,
        master_seed: 11,
        batch_size: 8,
    }
}

/// Serialized report bytes of a fresh, uninterrupted run.
fn fresh_report_bytes(tag: &str, threads: usize, kernel: KernelKind) -> String {
    let root = temp_root(tag);
    let mut store = AtlasStore::create(&root, 3).unwrap();
    let (report, totals) =
        run(&mut store, &spec(Mechanism::Counter), threads, kernel, None).unwrap();
    assert_eq!(totals.cached, 0);
    std::fs::remove_dir_all(&root).unwrap();
    serde_json::to_string(&report).unwrap()
}

#[test]
fn resumed_run_is_byte_identical_to_fresh_run() {
    let fresh = fresh_report_bytes("fresh", 1, KernelKind::Scalar);

    // Kill after 2 cells, resume in two further slices, then finish.
    let root = temp_root("resumed");
    let mut store = AtlasStore::create(&root, 3).unwrap();
    let s = spec(Mechanism::Counter);
    run(&mut store, &s, 1, KernelKind::Scalar, Some(2)).unwrap();
    drop(store);
    let mut store = AtlasStore::open(&root).unwrap();
    run(&mut store, &s, 1, KernelKind::Scalar, Some(1)).unwrap();
    drop(store);
    let mut store = AtlasStore::open(&root).unwrap();
    let (resumed, totals) = run(&mut store, &s, 1, KernelKind::Scalar, None).unwrap();
    assert_eq!(totals.cached, 3, "all previously completed cells must hit");
    assert_eq!(serde_json::to_string(&resumed).unwrap(), fresh);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn report_bytes_are_thread_count_invariant() {
    let one = fresh_report_bytes("threads-1", 1, KernelKind::Scalar);
    let four = fresh_report_bytes("threads-4", 4, KernelKind::Scalar);
    assert_eq!(one, four);
}

#[test]
fn report_bytes_are_kernel_invariant() {
    let scalar = fresh_report_bytes("kernel-scalar", 2, KernelKind::Scalar);
    let bitsliced = fresh_report_bytes("kernel-bitsliced", 2, KernelKind::Bitsliced);
    assert_eq!(scalar, bitsliced);
}

#[test]
fn cross_kernel_resume_serves_cached_cells_without_simulation() {
    // Start bitsliced, kill, resume scalar: the cache keys must hit
    // (kernel is not part of cell identity) and the final report
    // must equal an all-scalar fresh run's bytes.
    let fresh = fresh_report_bytes("xk-fresh", 1, KernelKind::Scalar);
    let root = temp_root("xk-resumed");
    let s = spec(Mechanism::Counter);
    let mut store = AtlasStore::create(&root, 3).unwrap();
    run(&mut store, &s, 4, KernelKind::Bitsliced, Some(3)).unwrap();
    drop(store);
    let mut store = AtlasStore::open(&root).unwrap();
    let (resumed, totals) = run(&mut store, &s, 1, KernelKind::Scalar, None).unwrap();
    assert_eq!(
        totals.cached, 3,
        "bitsliced-computed cells must hit from a scalar run"
    );
    assert_eq!(serde_json::to_string(&resumed).unwrap(), fresh);

    // A complete store renders the report without any simulation.
    let (rerun, totals) = run(&mut store, &s, 1, KernelKind::Scalar, None).unwrap();
    assert_eq!(totals.computed, 0, "complete store must not simulate");
    assert_eq!(totals.cached, rerun.totals.cells);
    assert_eq!(report(&store, &s).unwrap(), rerun);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn unsync_and_slotted_mechanisms_hold_the_oracle_too() {
    for (tag, mechanism) in [
        ("unsync", Mechanism::Unsynchronized),
        ("slotted", Mechanism::Slotted { slot_len: 4 }),
    ] {
        let s = spec(mechanism);
        let root_a = temp_root(&format!("{tag}-a"));
        let mut store = AtlasStore::create(&root_a, 2).unwrap();
        let (fresh, _) = run(&mut store, &s, 2, KernelKind::Bitsliced, None).unwrap();
        std::fs::remove_dir_all(&root_a).unwrap();

        let root_b = temp_root(&format!("{tag}-b"));
        let mut store = AtlasStore::create(&root_b, 2).unwrap();
        run(&mut store, &s, 1, KernelKind::Scalar, Some(2)).unwrap();
        let (resumed, _) = run(&mut store, &s, 4, KernelKind::Bitsliced, None).unwrap();
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "{tag}"
        );
        std::fs::remove_dir_all(&root_b).unwrap();
    }
}
