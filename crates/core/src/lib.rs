//! Capacity estimation of non-synchronous covert channels.
//!
//! This crate implements the primary contribution of Wang & Lee,
//! *"Capacity Estimation of Non-Synchronous Covert Channels"*
//! (ICDCS 2005): covert channels in real systems lose and duplicate
//! symbols because the communicating processes cannot control when
//! they run, so capacity must be estimated on a **deletion-insertion
//! channel** rather than the synchronous channel traditional methods
//! assume.
//!
//! * [`bounds`] — the paper's Theorems 1–5 and equations (1)–(7):
//!   the erasure upper bound `N·(1 − P_d)`, the feedback-achievable
//!   capacity, the converted-channel capacity `C_conv`, Theorem 5's
//!   constructive lower bound, and their asymptotic convergence.
//! * [`degradation`] — the §4.3 recipe `C_real = C·(1 − P_d)` with
//!   confidence intervals and severity classification.
//! * [`protocols`] — Theorem 3's resend protocol (and a
//!   selective-repeat ablation) over the abstract Definition 1
//!   channel with perfect feedback.
//! * [`sim`] — the mechanistic §3.1 model: a shared variable driven
//!   by an operation scheduler, with runners for no synchronization,
//!   the Appendix A counter protocol (feedback), the Figure 1
//!   two-variable handshake, and the Figure 3(b) common-event-source
//!   slotting.
//! * [`estimator`] — the end-to-end auditor pipeline.
//! * [`engine`] — the deterministic parallel Monte-Carlo engine:
//!   per-trial SplitMix64 seeding, a fixed-batch worker pool, and
//!   mergeable Welford accumulators, so trial campaigns scale with
//!   cores while staying bit-identical at any thread count.
//!
//! # Quick start
//!
//! ```
//! use nsc_core::bounds::{capacity_bounds, convergence_ratio};
//!
//! // An 8-bit covert channel losing 10% of symbols and gaining 10%
//! // spurious ones:
//! let b = capacity_bounds(8, 0.1, 0.1)?;
//! assert!(b.lower.value() > 6.0);          // still fast…
//! assert!(b.upper.value() <= 8.0 * 0.9);   // …but degraded by P_d.
//!
//! // Equations (6)–(7): bounds tighten as symbols widen.
//! assert!(convergence_ratio(16, 0.1)? > convergence_ratio(1, 0.1)?);
//! # Ok::<(), nsc_core::CoreError>(())
//! ```

pub mod bounds;
pub mod degradation;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod protocols;
pub mod sim;
pub mod sweep;

pub use bounds::CapacityBounds;
pub use degradation::{DegradationReport, Severity, SeverityPolicy};
pub use engine::EngineConfig;
pub use error::CoreError;
pub use estimator::Assessment;
