//! The deterministic worker-pool runner.
//!
//! Work is cut into **fixed-size batches** whose boundaries depend
//! only on the trial count and the configured batch size — never on
//! the thread count. Idle workers claim the next batch index from an
//! atomic cursor (work stealing by index), compute the whole batch,
//! and ship the result back tagged with its index; the engine then
//! reassembles (or merges) strictly in batch-index order. Together
//! with per-trial seeding ([`super::seed::trial_seed`]) this makes
//! every aggregate bit-identical at any `--threads` setting.
//!
//! The pool is built on [`std::thread::scope`] so borrowed closures
//! need no `'static` bound and a panicking trial propagates to the
//! caller exactly as it would serially.

use super::accum::TrialAccumulator;
use super::seed::trial_seed;
use super::{BatchTiming, EngineConfig, ExecutionReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// Runs `units` independent work items and returns their results in
/// index order. The scheduling-invariance workhorse behind
/// [`run_trials`], [`fold_trials`] and [`par_map`].
fn batched<R, W>(config: &EngineConfig, units: usize, work: W) -> Vec<R>
where
    R: Send,
    W: Fn(usize) -> R + Sync,
{
    let threads = config.effective_threads().min(units.max(1));
    let mut out: Vec<Option<R>> = Vec::with_capacity(units);
    out.resize_with(units, || None);
    if threads <= 1 {
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = Some(work(b));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                s.spawn(move || loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= units {
                        break;
                    }
                    let r = work(b);
                    if tx.send((b, r)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Collect on the scope's own thread; ends when every
            // worker has dropped its sender.
            for (b, r) in rx {
                out[b] = Some(r);
            }
        });
    }
    out.into_iter()
        .map(|r| r.expect("every unit completed"))
        .collect()
}

/// Batch boundaries for `trials` trials: `(first, one-past-last)`
/// trial index of batch `b`.
fn batch_bounds(config: &EngineConfig, trials: usize, b: usize) -> (usize, usize) {
    let size = config.batch_size.max(1);
    let lo = b * size;
    (lo, (lo + size).min(trials))
}

fn batch_count(config: &EngineConfig, trials: usize) -> usize {
    trials.div_ceil(config.batch_size.max(1))
}

/// Runs `trials` Monte-Carlo trials in parallel and returns every
/// outcome, in trial order.
///
/// `trial_fn` receives the trial index and a [`StdRng`] seeded with
/// [`trial_seed`]`(master_seed, index)`; it must derive all its
/// randomness from that RNG for the determinism contract to hold.
pub fn run_trials<T, F>(config: &EngineConfig, trials: usize, trial_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    let batches = batched(config, batch_count(config, trials), |b| {
        let (lo, hi) = batch_bounds(config, trials, b);
        (lo..hi)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(trial_seed(config.master_seed, i as u64));
                trial_fn(i as u64, &mut rng)
            })
            .collect::<Vec<T>>()
    });
    batches.into_iter().flatten().collect()
}

/// Runs `trials` trials and folds their outcomes into a single
/// accumulator.
///
/// Each batch folds serially into its own `A::default()`; the
/// partials are then merged in ascending batch index. Both the batch
/// boundaries and the merge order are independent of the thread
/// count, so the result is **bit-identical** for any `--threads`.
pub fn fold_trials<A, F>(config: &EngineConfig, trials: usize, trial_fn: F) -> A
where
    A: TrialAccumulator + Default,
    F: Fn(u64, &mut StdRng) -> A::Outcome + Sync,
{
    let partials = batched(config, batch_count(config, trials), |b| {
        let (lo, hi) = batch_bounds(config, trials, b);
        let mut acc = A::default();
        for i in lo..hi {
            let mut rng = StdRng::seed_from_u64(trial_seed(config.master_seed, i as u64));
            acc.record(trial_fn(i as u64, &mut rng));
        }
        acc
    });
    let mut total = A::default();
    for p in partials {
        total.merge(p);
    }
    total
}

/// [`fold_trials`], additionally reporting how the run executed:
/// per-batch wall-clock as measured on the worker that ran each
/// batch, total wall-clock, and trials/sec.
///
/// The accumulator is **bit-identical** to [`fold_trials`] with the
/// same config — timing is observed around the work, never threaded
/// into it — so callers can surface the [`ExecutionReport`] while
/// keeping the statistics inside the determinism contract.
pub fn fold_trials_timed<A, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> (A, ExecutionReport)
where
    A: TrialAccumulator + Default,
    F: Fn(u64, &mut StdRng) -> A::Outcome + Sync,
{
    let started = Instant::now();
    let partials = batched(config, batch_count(config, trials), |b| {
        let (lo, hi) = batch_bounds(config, trials, b);
        let batch_started = Instant::now();
        let mut acc = A::default();
        for i in lo..hi {
            let mut rng = StdRng::seed_from_u64(trial_seed(config.master_seed, i as u64));
            acc.record(trial_fn(i as u64, &mut rng));
        }
        let timing = BatchTiming {
            batch: b,
            trials: hi - lo,
            wall_secs: batch_started.elapsed().as_secs_f64(),
        };
        (acc, timing)
    });
    let mut total = A::default();
    let mut batches = Vec::with_capacity(partials.len());
    for (p, timing) in partials {
        total.merge(p);
        batches.push(timing);
    }
    let report = ExecutionReport::collect(config, trials, started.elapsed().as_secs_f64(), batches);
    (total, report)
}

/// Maps `f` over `items` in parallel, returning results in input
/// order. For deterministic-per-item work (grid points, experiment
/// rows) that needs no RNG plumbing; each item is its own batch.
pub fn par_map<T, U, F>(config: &EngineConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    batched(config, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::super::accum::RunningStats;
    use super::*;
    use rand::Rng;

    fn cfg(threads: usize) -> EngineConfig {
        EngineConfig::seeded(99).with_threads(threads)
    }

    #[test]
    fn run_trials_identical_across_thread_counts() {
        let serial: Vec<u64> = run_trials(&cfg(1), 103, |_, rng| rng.gen::<u64>());
        for threads in [2, 4, 8] {
            let parallel = run_trials(&cfg(threads), 103, |_, rng| rng.gen::<u64>());
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn fold_trials_bit_identical_across_thread_counts() {
        let serial: RunningStats = fold_trials(&cfg(1), 257, |_, rng| rng.gen::<f64>());
        for threads in [2, 4, 8] {
            let parallel: RunningStats = fold_trials(&cfg(threads), 257, |_, rng| rng.gen::<f64>());
            // Bitwise equality, not approximate: fixed batch
            // boundaries + in-order merge is the whole point.
            assert_eq!(serial.mean().to_bits(), parallel.mean().to_bits());
            assert_eq!(serial.variance().to_bits(), parallel.variance().to_bits());
            assert_eq!(serial.count(), parallel.count());
        }
    }

    #[test]
    fn trial_fn_sees_index_matched_seed() {
        let outs = run_trials(&cfg(4), 50, |i, rng| (i, rng.gen::<u64>()));
        for (k, (i, v)) in outs.iter().enumerate() {
            assert_eq!(*i, k as u64);
            let mut expect = StdRng::seed_from_u64(trial_seed(99, k as u64));
            assert_eq!(*v, expect.gen::<u64>());
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..500).collect();
        let squares = par_map(&cfg(8), &items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_and_empty_items() {
        let v: Vec<u8> = run_trials(&cfg(4), 0, |_, _| 0u8);
        assert!(v.is_empty());
        let s: RunningStats = fold_trials(&cfg(4), 0, |_, rng| rng.gen::<f64>());
        assert_eq!(s.count(), 0);
        let m: Vec<u8> = par_map(&cfg(4), &[] as &[u8], |_, &x| x);
        assert!(m.is_empty());
    }

    #[test]
    fn auto_threads_still_deterministic() {
        let auto = EngineConfig::seeded(7); // threads = 0 → all cores
        let one = EngineConfig::serial(7);
        let a: RunningStats = fold_trials(&auto, 64, |_, rng| rng.gen::<f64>());
        let b: RunningStats = fold_trials(&one, 64, |_, rng| rng.gen::<f64>());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
    }

    #[test]
    fn timed_fold_matches_untimed_and_reports_batches() {
        for threads in [1usize, 4] {
            let c = cfg(threads);
            let plain: RunningStats = fold_trials(&c, 100, |_, rng| rng.gen::<f64>());
            let (timed, report): (RunningStats, _) =
                fold_trials_timed(&c, 100, |_, rng| rng.gen::<f64>());
            assert_eq!(plain.mean().to_bits(), timed.mean().to_bits());
            assert_eq!(plain.variance().to_bits(), timed.variance().to_bits());
            assert_eq!(report.threads_requested, threads);
            assert!(report.effective_threads >= 1);
            assert_eq!(report.batches.len(), 100usize.div_ceil(c.batch_size));
            assert_eq!(report.batches.iter().map(|b| b.trials).sum::<usize>(), 100);
            for (i, b) in report.batches.iter().enumerate() {
                assert_eq!(b.batch, i);
                assert!(b.wall_secs >= 0.0);
            }
            assert!(report.wall_secs >= 0.0);
        }
    }

    #[test]
    fn batch_size_one_and_large() {
        let tiny = EngineConfig {
            batch_size: 1,
            ..cfg(4)
        };
        let huge = EngineConfig {
            batch_size: 1_000_000,
            ..cfg(4)
        };
        // Different batch sizes may legitimately change merge
        // grouping, but each must equal its own serial run.
        for c in [tiny, huge] {
            let serial = EngineConfig { threads: 1, ..c };
            let a: Vec<u64> = run_trials(&c, 33, |_, rng| rng.gen());
            let b: Vec<u64> = run_trials(&serial, 33, |_, rng| rng.gen());
            assert_eq!(a, b);
        }
    }
}
