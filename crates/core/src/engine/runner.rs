//! The deterministic worker-pool runner.
//!
//! Work is cut into **fixed-size batches** whose boundaries depend
//! only on the trial count and the configured batch size — never on
//! the thread count. Idle workers claim the next batch index from an
//! atomic cursor (work stealing by index), compute the whole batch,
//! and write the result into a pre-sized slot vector at that index;
//! the engine then reassembles (or merges) strictly in batch-index
//! order. Together with per-trial seeding
//! ([`super::seed::trial_seed`]) this makes every aggregate
//! bit-identical at any `--threads` setting.
//!
//! Two generator families plug into the same scaffolding: the
//! original [`StdRng`] entry points ([`run_trials`], [`fold_trials`],
//! [`fold_trials_timed`]) and the generic `_with` variants that
//! accept any seedable generator — in particular the fast
//! [`super::rng::TrialRng`]. Each worker also owns a reusable
//! *context* (scratch buffers) created once per worker and threaded
//! through every batch it claims, so steady-state trials can run
//! without heap allocation.
//!
//! The pool is built on [`std::thread::scope`] so borrowed closures
//! need no `'static` bound and a panicking trial propagates to the
//! caller exactly as it would serially.

use super::accum::TrialAccumulator;
use super::seed::trial_seed;
use super::{BatchTiming, EngineConfig, ExecutionReport};
use crate::error::CoreError;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// One result cell of the reassembly vector. Interior mutability is
/// sound here because the atomic cursor hands each batch index to
/// exactly one worker, so no two threads ever touch the same slot,
/// and the scope join publishes every write before the cells are
/// read.
///
/// The **one-writer-per-slot invariant**, stated precisely:
///
/// 1. every slot index `b < units` is claimed by exactly one
///    `fetch_add` winner (RMW atomicity: no two threads can observe
///    the same counter value, at any memory ordering);
/// 2. a worker writes slot `b` only after claiming `b`, and writes
///    it exactly once;
/// 3. no slot is read until `thread::scope` has joined every worker,
///    and the join synchronizes-with each worker's termination, so
///    all writes happen-before all reads.
///
/// (1)+(2) give mutually exclusive writes; (3) gives publication.
/// A loom-style model checks this protocol across every
/// interleaving — see `engine::model`, compiled under
/// `--features loom` or `--cfg loom` — and write-once is also
/// `debug_assert!`ed at the write site.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: `Sync` here promises that `&Slot<R>` may cross threads.
// The only cross-thread access is the worker-pool protocol above:
// writes are mutually exclusive per slot (atomic-cursor claims) and
// reads are join-ordered after all writes, so no `&Slot` access ever
// races. `R: Send` is required because the value written on a worker
// thread is dropped/consumed on the merging thread.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Runs `units` independent work items and returns their results in
/// index order. Each worker builds one context with `init` and reuses
/// it for every unit it claims. The scheduling-invariance workhorse
/// behind every public entry point.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if a unit finished without
/// depositing a result — which can only happen if the pool logic
/// itself is broken, so the error exists to fail loudly instead of
/// panicking deep inside an unwrap.
fn batched_ctx<R, C, I, W>(
    config: &EngineConfig,
    units: usize,
    init: I,
    work: W,
) -> Result<Vec<R>, CoreError>
where
    R: Send,
    I: Fn() -> C + Sync,
    W: Fn(&mut C, usize) -> R + Sync,
{
    let threads = config.effective_threads().min(units.max(1));
    if threads <= 1 {
        let mut ctx = init();
        return Ok((0..units).map(|b| work(&mut ctx, b)).collect());
    }
    let slots: Vec<Slot<R>> = (0..units).map(|_| Slot(UnsafeCell::new(None))).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..threads {
            let slots = &slots;
            let cursor = &cursor;
            let init = &init;
            let work = &work;
            s.spawn(move || {
                let mut ctx = init();
                loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= units {
                        break;
                    }
                    let r = work(&mut ctx, b);
                    // SAFETY: `b` came from this thread's own
                    // `fetch_add`, and RMW atomicity guarantees every
                    // `fetch_add` returns a distinct value — so this
                    // thread is the only writer of slot `b`, ever
                    // (one-writer-per-slot, invariant (1)+(2) on
                    // `Slot`). No reader exists until the enclosing
                    // `thread::scope` joins, which orders this write
                    // before all reads (invariant (3)).
                    unsafe {
                        let cell = slots[b].0.get();
                        debug_assert!(
                            (*cell).is_none(),
                            "slot {b} written twice: one-writer-per-slot violated"
                        );
                        *cell = Some(r);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(b, slot)| {
            let result = slot.0.into_inner();
            // Every slot must have been written exactly once before
            // the merge: exactly-once is asserted at the write site
            // (no prior value) and here (some value present).
            debug_assert!(
                result.is_some(),
                "slot {b} never written: the cursor skipped a batch"
            );
            result.ok_or_else(|| CoreError::Engine(format!("batch {b} produced no result")))
        })
        .collect()
}

/// Batch boundaries for `trials` trials: `(first, one-past-last)`
/// trial index of batch `b`.
fn batch_bounds(config: &EngineConfig, trials: usize, b: usize) -> (usize, usize) {
    let size = config.batch_size.max(1);
    let lo = b * size;
    (lo, (lo + size).min(trials))
}

fn batch_count(config: &EngineConfig, trials: usize) -> usize {
    trials.div_ceil(config.batch_size.max(1))
}

/// Runs `trials` Monte-Carlo trials in parallel and returns every
/// outcome, in trial order.
///
/// `trial_fn` receives the trial index and a [`StdRng`] seeded with
/// [`trial_seed`]`(master_seed, index)`; it must derive all its
/// randomness from that RNG for the determinism contract to hold.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn run_trials<T, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    run_trials_with::<StdRng, T, F>(config, trials, trial_fn)
}

/// [`run_trials`] generalized over the generator type: `G` is seeded
/// per trial with `G::seed_from_u64(trial_seed(master_seed, index))`.
/// Use [`super::rng::TrialRng`] for allocation- and
/// key-schedule-free trials.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn run_trials_with<G, T, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> Result<Vec<T>, CoreError>
where
    G: RngCore + SeedableRng,
    T: Send,
    F: Fn(u64, &mut G) -> T + Sync,
{
    let batches = batched_ctx(
        config,
        batch_count(config, trials),
        || (),
        |(), b| {
            let (lo, hi) = batch_bounds(config, trials, b);
            (lo..hi)
                .map(|i| {
                    let mut rng = G::seed_from_u64(trial_seed(config.master_seed, i as u64));
                    trial_fn(i as u64, &mut rng)
                })
                .collect::<Vec<T>>()
        },
    )?;
    Ok(batches.into_iter().flatten().collect())
}

/// Runs `trials` trials and folds their outcomes into a single
/// accumulator.
///
/// Each batch folds serially into its own `A::default()`; the
/// partials are then merged in ascending batch index. Both the batch
/// boundaries and the merge order are independent of the thread
/// count, so the result is **bit-identical** for any `--threads`.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn fold_trials<A, F>(config: &EngineConfig, trials: usize, trial_fn: F) -> Result<A, CoreError>
where
    A: TrialAccumulator + Default + Send,
    F: Fn(u64, &mut StdRng) -> A::Outcome + Sync,
{
    fold_trials_with::<StdRng, A, F>(config, trials, trial_fn)
}

/// [`fold_trials`] generalized over the generator type (see
/// [`run_trials_with`]).
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn fold_trials_with<G, A, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> Result<A, CoreError>
where
    G: RngCore + SeedableRng,
    A: TrialAccumulator + Default + Send,
    F: Fn(u64, &mut G) -> A::Outcome + Sync,
{
    let partials = batched_ctx(
        config,
        batch_count(config, trials),
        || (),
        |(), b| {
            let (lo, hi) = batch_bounds(config, trials, b);
            let mut acc = A::default();
            for i in lo..hi {
                let mut rng = G::seed_from_u64(trial_seed(config.master_seed, i as u64));
                acc.record(trial_fn(i as u64, &mut rng));
            }
            acc
        },
    )?;
    let mut total = A::default();
    for p in partials {
        total.merge(p);
    }
    Ok(total)
}

/// [`fold_trials`], additionally reporting how the run executed:
/// per-batch wall-clock as measured on the worker that ran each
/// batch, total wall-clock, and trials/sec.
///
/// The accumulator is **bit-identical** to [`fold_trials`] with the
/// same config — timing is observed around the work, never threaded
/// into it — so callers can surface the [`ExecutionReport`] while
/// keeping the statistics inside the determinism contract.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn fold_trials_timed<A, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> Result<(A, ExecutionReport), CoreError>
where
    A: TrialAccumulator + Default + Send,
    F: Fn(u64, &mut StdRng) -> A::Outcome + Sync,
{
    fold_trials_timed_with::<StdRng, A, F>(config, trials, trial_fn)
}

/// [`fold_trials_timed`] generalized over the generator type (see
/// [`run_trials_with`]).
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn fold_trials_timed_with<G, A, F>(
    config: &EngineConfig,
    trials: usize,
    trial_fn: F,
) -> Result<(A, ExecutionReport), CoreError>
where
    G: RngCore + SeedableRng,
    A: TrialAccumulator + Default + Send,
    F: Fn(u64, &mut G) -> A::Outcome + Sync,
{
    fold_trials_scoped_timed::<G, A, (), _, _>(config, trials, || (), |(), i, rng| trial_fn(i, rng))
}

/// The scratch-threading fold: like [`fold_trials_timed_with`], but
/// every worker builds one context with `init` and the trial closure
/// receives it mutably — the engine's zero-allocation hot path.
///
/// The context is *observational* state (buffers); trial outcomes
/// must remain a pure function of `(trial_index, rng)` for the
/// determinism contract to hold.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn fold_trials_scoped_timed<G, A, C, I, F>(
    config: &EngineConfig,
    trials: usize,
    init: I,
    trial_fn: F,
) -> Result<(A, ExecutionReport), CoreError>
where
    G: RngCore + SeedableRng,
    A: TrialAccumulator + Default + Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut G) -> A::Outcome + Sync,
{
    // nsc-lint: allow(wall-clock, reason = "BatchTiming/ExecutionReport are observational; timing never feeds the accumulator")
    let started = Instant::now();
    let partials = batched_ctx(config, batch_count(config, trials), init, |ctx, b| {
        let (lo, hi) = batch_bounds(config, trials, b);
        // nsc-lint: allow(wall-clock, reason = "per-batch wall-clock is reported, never folded into results")
        let batch_started = Instant::now();
        let mut acc = A::default();
        for i in lo..hi {
            let mut rng = G::seed_from_u64(trial_seed(config.master_seed, i as u64));
            acc.record(trial_fn(ctx, i as u64, &mut rng));
        }
        let timing = BatchTiming {
            batch: b,
            trials: hi - lo,
            wall_secs: batch_started.elapsed().as_secs_f64(),
        };
        (acc, timing)
    })?;
    let mut total = A::default();
    let mut batches = Vec::with_capacity(partials.len());
    for (p, timing) in partials {
        total.merge(p);
        batches.push(timing);
    }
    let report = ExecutionReport::collect(config, trials, started.elapsed().as_secs_f64(), batches);
    Ok((total, report))
}

/// The scratch-threading run: like [`run_trials_with`] but with a
/// per-worker context and an [`ExecutionReport`] with per-batch
/// timings (see [`fold_trials_scoped_timed`]).
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn run_trials_scoped_timed<G, T, C, I, F>(
    config: &EngineConfig,
    trials: usize,
    init: I,
    trial_fn: F,
) -> Result<(Vec<T>, ExecutionReport), CoreError>
where
    G: RngCore + SeedableRng,
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut G) -> T + Sync,
{
    // nsc-lint: allow(wall-clock, reason = "BatchTiming/ExecutionReport are observational; timing never feeds the outcomes")
    let started = Instant::now();
    let partials = batched_ctx(config, batch_count(config, trials), init, |ctx, b| {
        let (lo, hi) = batch_bounds(config, trials, b);
        // nsc-lint: allow(wall-clock, reason = "per-batch wall-clock is reported, never folded into results")
        let batch_started = Instant::now();
        let outs: Vec<T> = (lo..hi)
            .map(|i| {
                let mut rng = G::seed_from_u64(trial_seed(config.master_seed, i as u64));
                trial_fn(ctx, i as u64, &mut rng)
            })
            .collect();
        let timing = BatchTiming {
            batch: b,
            trials: hi - lo,
            wall_secs: batch_started.elapsed().as_secs_f64(),
        };
        (outs, timing)
    })?;
    let mut out = Vec::with_capacity(trials);
    let mut batches = Vec::with_capacity(partials.len());
    for (outs, timing) in partials {
        out.extend(outs);
        batches.push(timing);
    }
    let report = ExecutionReport::collect(config, trials, started.elapsed().as_secs_f64(), batches);
    Ok((out, report))
}

/// The lane-block run behind the bitsliced campaign kernel: cuts
/// `trials` into fixed `block`-sized units (the kernel's lane width,
/// not `batch_size`), hands each worker whole units, and reassembles
/// the per-trial outcomes in trial order.
///
/// `block_fn` receives the worker's context, the block index, and
/// the block's trial range; it must return exactly one outcome per
/// trial in the range, in trial order. Block boundaries depend only
/// on `(trials, block)`, so the flat outcome stream is independent
/// of the thread count; callers re-fold it with the engine's own
/// `batch_size` grouping to get aggregates bit-identical to
/// [`fold_trials`].
pub(crate) fn run_blocks_scoped_timed<T, C, I, F>(
    config: &EngineConfig,
    trials: usize,
    block: usize,
    init: I,
    block_fn: F,
) -> Result<(Vec<T>, ExecutionReport), CoreError>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let block = block.max(1);
    // nsc-lint: allow(wall-clock, reason = "BatchTiming/ExecutionReport are observational; timing never feeds the outcomes")
    let started = Instant::now();
    let partials = batched_ctx(config, trials.div_ceil(block), init, |ctx, b| {
        let lo = b * block;
        let hi = (lo + block).min(trials);
        // nsc-lint: allow(wall-clock, reason = "per-block wall-clock is reported, never folded into results")
        let block_started = Instant::now();
        let outs = block_fn(ctx, b, lo..hi);
        debug_assert_eq!(
            outs.len(),
            hi - lo,
            "block {b} returned a wrong outcome count"
        );
        let timing = BatchTiming {
            batch: b,
            trials: hi - lo,
            wall_secs: block_started.elapsed().as_secs_f64(),
        };
        (outs, timing)
    })?;
    let mut out = Vec::with_capacity(trials);
    let mut batches = Vec::with_capacity(partials.len());
    for (outs, timing) in partials {
        out.extend(outs);
        batches.push(timing);
    }
    let report = ExecutionReport::collect(config, trials, started.elapsed().as_secs_f64(), batches);
    Ok((out, report))
}

/// Maps `f` over `items` in parallel, returning results in input
/// order. For deterministic-per-item work (grid points, experiment
/// rows) that needs no RNG plumbing; each item is its own batch.
///
/// # Errors
///
/// Returns [`CoreError::Engine`] if the worker pool failed to
/// deliver a batch (an internal invariant violation).
pub fn par_map<T, U, F>(config: &EngineConfig, items: &[T], f: F) -> Result<Vec<U>, CoreError>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    batched_ctx(config, items.len(), || (), |(), i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::super::accum::RunningStats;
    use super::super::rng::TrialRng;
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn cfg(threads: usize) -> EngineConfig {
        EngineConfig::seeded(99).with_threads(threads)
    }

    #[test]
    fn run_trials_identical_across_thread_counts() {
        let serial: Vec<u64> = run_trials(&cfg(1), 103, |_, rng| rng.gen::<u64>()).unwrap();
        for threads in [2, 4, 8] {
            let parallel = run_trials(&cfg(threads), 103, |_, rng| rng.gen::<u64>()).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn trialrng_path_identical_across_thread_counts() {
        let serial: Vec<u64> =
            run_trials_with::<TrialRng, _, _>(&cfg(1), 103, |_, rng| rng.gen::<u64>()).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                run_trials_with::<TrialRng, _, _>(&cfg(threads), 103, |_, rng| rng.gen::<u64>())
                    .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn fold_trials_bit_identical_across_thread_counts() {
        let serial: RunningStats = fold_trials(&cfg(1), 257, |_, rng| rng.gen::<f64>()).unwrap();
        for threads in [2, 4, 8] {
            let parallel: RunningStats =
                fold_trials(&cfg(threads), 257, |_, rng| rng.gen::<f64>()).unwrap();
            // Bitwise equality, not approximate: fixed batch
            // boundaries + in-order merge is the whole point.
            assert_eq!(serial.mean().to_bits(), parallel.mean().to_bits());
            assert_eq!(serial.variance().to_bits(), parallel.variance().to_bits());
            assert_eq!(serial.count(), parallel.count());
        }
    }

    #[test]
    fn trial_fn_sees_index_matched_seed() {
        let outs = run_trials(&cfg(4), 50, |i, rng| (i, rng.gen::<u64>())).unwrap();
        for (k, (i, v)) in outs.iter().enumerate() {
            assert_eq!(*i, k as u64);
            let mut expect = StdRng::seed_from_u64(trial_seed(99, k as u64));
            assert_eq!(*v, expect.gen::<u64>());
        }
    }

    #[test]
    fn trialrng_trial_fn_sees_index_matched_seed() {
        let outs =
            run_trials_with::<TrialRng, _, _>(&cfg(4), 50, |i, rng| (i, rng.gen::<u64>())).unwrap();
        for (k, (i, v)) in outs.iter().enumerate() {
            assert_eq!(*i, k as u64);
            let mut expect = TrialRng::from_trial(99, k as u64);
            assert_eq!(*v, expect.gen::<u64>());
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..500).collect();
        let squares = par_map(&cfg(8), &items, |i, &x| {
            assert_eq!(i, x);
            x * x
        })
        .unwrap();
        assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_and_empty_items() {
        let v: Vec<u8> = run_trials(&cfg(4), 0, |_, _| 0u8).unwrap();
        assert!(v.is_empty());
        let s: RunningStats = fold_trials(&cfg(4), 0, |_, rng| rng.gen::<f64>()).unwrap();
        assert_eq!(s.count(), 0);
        let m: Vec<u8> = par_map(&cfg(4), &[] as &[u8], |_, &x| x).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn auto_threads_still_deterministic() {
        let auto = EngineConfig::seeded(7); // threads = 0 → all cores
        let one = EngineConfig::serial(7);
        let a: RunningStats = fold_trials(&auto, 64, |_, rng| rng.gen::<f64>()).unwrap();
        let b: RunningStats = fold_trials(&one, 64, |_, rng| rng.gen::<f64>()).unwrap();
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
    }

    #[test]
    fn timed_fold_matches_untimed_and_reports_batches() {
        for threads in [1usize, 4] {
            let c = cfg(threads);
            let plain: RunningStats = fold_trials(&c, 100, |_, rng| rng.gen::<f64>()).unwrap();
            let (timed, report): (RunningStats, _) =
                fold_trials_timed(&c, 100, |_, rng| rng.gen::<f64>()).unwrap();
            assert_eq!(plain.mean().to_bits(), timed.mean().to_bits());
            assert_eq!(plain.variance().to_bits(), timed.variance().to_bits());
            assert_eq!(report.threads_requested, threads);
            assert!(report.effective_threads >= 1);
            assert_eq!(report.batches.len(), 100usize.div_ceil(c.batch_size));
            assert_eq!(report.batches.iter().map(|b| b.trials).sum::<usize>(), 100);
            for (i, b) in report.batches.iter().enumerate() {
                assert_eq!(b.batch, i);
                assert!(b.wall_secs >= 0.0);
            }
            assert!(report.wall_secs >= 0.0);
        }
    }

    #[test]
    fn scoped_run_reports_batches_and_reuses_context() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let c = cfg(1);
        let (outs, report) = run_trials_scoped_timed::<StdRng, _, _, _, _>(
            &c,
            100,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::with_capacity(64)
            },
            |buf, i, _| {
                buf.clear();
                buf.push(i as u8);
                buf[0]
            },
        )
        .unwrap();
        assert_eq!(outs.len(), 100);
        assert_eq!(outs[9], 9);
        // Serial path: exactly one context for the whole run.
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(report.batches.len(), 100usize.div_ceil(c.batch_size));
        assert_eq!(report.batches.iter().map(|b| b.trials).sum::<usize>(), 100);
    }

    #[test]
    fn scoped_fold_matches_unscoped() {
        for threads in [1usize, 4] {
            let c = cfg(threads);
            let plain: RunningStats =
                fold_trials_with::<TrialRng, _, _>(&c, 100, |_, rng| rng.gen::<f64>()).unwrap();
            let (scoped, report): (RunningStats, _) =
                fold_trials_scoped_timed::<TrialRng, _, _, _, _>(
                    &c,
                    100,
                    || (),
                    |(), _, rng| rng.gen::<f64>(),
                )
                .unwrap();
            assert_eq!(plain.mean().to_bits(), scoped.mean().to_bits());
            assert_eq!(report.batches.len(), 100usize.div_ceil(c.batch_size));
        }
    }

    #[test]
    fn block_run_covers_trials_in_order_and_reports_timings() {
        for threads in [1usize, 4] {
            let c = cfg(threads);
            let (outs, report) = run_blocks_scoped_timed(
                &c,
                103,
                64,
                || (),
                |(), b, range| {
                    assert_eq!(range.start, b * 64);
                    range.map(|i| i as u64).collect()
                },
            )
            .unwrap();
            assert_eq!(outs, (0u64..103).collect::<Vec<_>>(), "threads = {threads}");
            // 103 trials in 64-wide blocks: one full block + a tail.
            assert_eq!(report.batches.len(), 2);
            assert_eq!(report.batches[0].trials, 64);
            assert_eq!(report.batches[1].trials, 39);
            assert_eq!(report.batches.iter().map(|b| b.trials).sum::<usize>(), 103);
        }
    }

    #[test]
    fn batch_size_one_and_large() {
        let tiny = EngineConfig {
            batch_size: 1,
            ..cfg(4)
        };
        let huge = EngineConfig {
            batch_size: 1_000_000,
            ..cfg(4)
        };
        // Different batch sizes may legitimately change merge
        // grouping, but each must equal its own serial run.
        for c in [tiny, huge] {
            let serial = EngineConfig { threads: 1, ..c };
            let a: Vec<u64> = run_trials(&c, 33, |_, rng| rng.gen()).unwrap();
            let b: Vec<u64> = run_trials(&serial, 33, |_, rng| rng.gen()).unwrap();
            assert_eq!(a, b);
        }
    }

    /// Reproduces `fold_trials`' merge from `run_trials`' outcomes:
    /// fold each batch-sized chunk into its own accumulator, then
    /// merge in chunk order.
    fn manual_fold(config: &EngineConfig, outcomes: &[f64]) -> RunningStats {
        let mut total = RunningStats::default();
        for chunk in outcomes.chunks(config.batch_size.max(1)) {
            let mut acc = RunningStats::default();
            for &x in chunk {
                acc.record(x);
            }
            total.merge(acc);
        }
        total
    }

    proptest! {
        // Satellite: run_trials + manual fold must equal fold_trials
        // bit-for-bit, across thread counts, for BOTH generator
        // paths. This pins the fold to "exactly the outcome stream,
        // grouped by batch, merged in order" — no hidden
        // reordering, no extra RNG draws.
        #[test]
        fn fold_equals_manual_fold_for_both_rng_paths(
            trials in 0usize..200,
            master in any::<u64>(),
        ) {
            for threads in [1usize, 2, 7] {
                let c = EngineConfig::seeded(master).with_threads(threads);

                let outs = run_trials(&c, trials, |_, rng| rng.gen::<f64>()).unwrap();
                let manual = manual_fold(&c, &outs);
                let folded: RunningStats =
                    fold_trials(&c, trials, |_, rng| rng.gen::<f64>()).unwrap();
                prop_assert_eq!(manual.count(), folded.count());
                prop_assert_eq!(manual.mean().to_bits(), folded.mean().to_bits());
                prop_assert_eq!(manual.variance().to_bits(), folded.variance().to_bits());

                let outs =
                    run_trials_with::<TrialRng, _, _>(&c, trials, |_, rng| rng.gen::<f64>())
                        .unwrap();
                let manual = manual_fold(&c, &outs);
                let folded: RunningStats =
                    fold_trials_with::<TrialRng, _, _>(&c, trials, |_, rng| rng.gen::<f64>())
                        .unwrap();
                prop_assert_eq!(manual.count(), folded.count());
                prop_assert_eq!(manual.mean().to_bits(), folded.mean().to_bits());
                prop_assert_eq!(manual.variance().to_bits(), folded.variance().to_bits());
            }
        }
    }
}
