//! Fast deterministic per-trial generator.
//!
//! [`TrialRng`] is xoshiro256\*\* seeded through SplitMix64 — the
//! standard construction recommended by its authors. It exists
//! because the engine's hot path creates **one generator per trial**:
//! with [`rand::rngs::StdRng`] (ChaCha12) both the key schedule and
//! each 64-byte block dominate short trials, while xoshiro256\*\*
//! seeds with four SplitMix64 steps and emits a word with a handful
//! of ALU operations.
//!
//! # Determinism
//!
//! The stream is a pure function of the seed: no buffering, no
//! platform-dependent state, no SIMD divergence. Seeding reuses the
//! engine's own [`super::seed::mix`]/[`super::seed::GOLDEN_GAMMA`]
//! SplitMix64, so `TrialRng::from_trial(master, i)` is exactly
//! `TrialRng::seed_from_u64(trial_seed(master, i))` — the same
//! per-trial derivation the [`rand::rngs::StdRng`] path uses, only
//! the generator behind it changes. Switching a campaign between the
//! two paths changes *which* deterministic stream it consumes, never
//! whether it is deterministic.
//!
//! xoshiro256\*\* is not cryptographic; covert-channel trials need
//! statistical quality (it passes BigCrush), not unpredictability.

use super::seed::{mix, trial_seed, GOLDEN_GAMMA};
use rand::{Error, RngCore, SeedableRng};

/// Counter-seeded xoshiro256\*\* generator for Monte-Carlo trials.
///
/// Implements [`RngCore`]/[`SeedableRng`], so every `Rng` adapter
/// (`gen`, `gen_range`, `gen_bool`, …) works unchanged. Create one
/// per trial with [`TrialRng::from_trial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRng {
    s: [u64; 4],
}

impl TrialRng {
    /// The generator for trial `index` of a campaign with the given
    /// master seed: `seed_from_u64(trial_seed(master_seed, index))`.
    #[must_use]
    pub fn from_trial(master_seed: u64, index: u64) -> Self {
        Self::seed_from_u64(trial_seed(master_seed, index))
    }

    /// The raw xoshiro256\*\* state words, in order.
    ///
    /// The bitsliced kernels ([`crate::sim::bitsliced`]) use this to
    /// install a trial's schedule generator into a lane of their
    /// structure-of-arrays `LaneRng`, which then replays the exact
    /// stream this generator would produce.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advances the state and returns the next 64-bit word
    /// (xoshiro256\*\*: `rotl(s1 * 5, 7) * 9`).
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for TrialRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *w = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // The all-zero state is xoshiro's single fixed point;
            // remap it to the SplitMix64 expansion of 0.
            return Self::seed_from_u64(0);
        }
        TrialRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, reusing the engine's seed-mixing
        // primitives so the whole derivation chain is one algorithm.
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            *w = mix(state.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN_GAMMA)));
        }
        TrialRng { s }
    }
}

impl RngCore for TrialRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Reference xoshiro256** step, written independently of
    /// `TrialRng::next` to cross-check the recurrence.
    fn reference_step(s: &mut [u64; 4]) -> u64 {
        let result = (s[1].wrapping_mul(5)).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[test]
    fn matches_reference_recurrence() {
        let mut rng = TrialRng::seed_from_u64(0xDEAD_BEEF);
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            *w = mix(0xDEAD_BEEFu64.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN_GAMMA)));
        }
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), reference_step(&mut s));
        }
    }

    #[test]
    fn seed_from_u64_expansion_is_splitmix() {
        // State words are mix(seed + k*GOLDEN_GAMMA) for k = 1..=4 —
        // pinned so a refactor cannot silently change every stream.
        let rng = TrialRng::seed_from_u64(0);
        let expect = [
            mix(GOLDEN_GAMMA),
            mix(GOLDEN_GAMMA.wrapping_mul(2)),
            mix(GOLDEN_GAMMA.wrapping_mul(3)),
            mix(GOLDEN_GAMMA.wrapping_mul(4)),
        ];
        assert_eq!(rng.s, expect);
    }

    #[test]
    fn from_trial_equals_seed_from_trial_seed() {
        for master in [0u64, 99, 20_050_605] {
            for i in [0u64, 1, 7, 1_000_000] {
                let a = TrialRng::from_trial(master, i);
                let b = TrialRng::seed_from_u64(trial_seed(master, i));
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn from_seed_roundtrips_le_words_and_dodges_zero() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let rng = TrialRng::from_seed(seed);
        assert_eq!(rng.s, [1, 2, 3, 4]);
        assert_eq!(TrialRng::from_seed([0; 32]), TrialRng::seed_from_u64(0));
    }

    #[test]
    fn distinct_trials_get_distinct_streams() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            let mut rng = TrialRng::from_trial(42, i);
            assert!(seen.insert(rng.next_u64()), "stream collision at {i}");
        }
    }

    #[test]
    fn rng_adapters_work() {
        let mut rng = TrialRng::from_trial(7, 0);
        let f = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&f));
        let k = rng.gen_range(0usize..10);
        assert!(k < 10);
        let mut bytes = [0u8; 13];
        rng.fill_bytes(&mut bytes);
        assert!(rng.try_fill_bytes(&mut bytes).is_ok());
        let _ = rng.next_u32();
    }

    #[test]
    fn fill_bytes_is_le_prefix_of_stream() {
        let mut a = TrialRng::seed_from_u64(5);
        let mut b = a.clone();
        let w0 = a.next_u64();
        let w1 = a.next_u64();
        let mut bytes = [0u8; 12];
        b.fill_bytes(&mut bytes);
        assert_eq!(&bytes[..8], &w0.to_le_bytes());
        assert_eq!(&bytes[8..], &w1.to_le_bytes()[..4]);
    }
}
