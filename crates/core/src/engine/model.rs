//! An exhaustive interleaving model of the slot-vector worker pool.
//!
//! [`super::runner`]'s `unsafe` batch reassembly rests on one claim:
//! the atomic-cursor protocol gives every slot exactly one writer,
//! and the scope join orders all writes before all reads. This
//! module model-checks that claim the way `loom` would — by running
//! an abstract version of the pool under **every** thread
//! interleaving — without taking `loom` as a dependency: the model
//! is a few dozen lines of pure `std` and explores the full schedule
//! space of small configurations by depth-first search.
//!
//! Two claim protocols are modeled:
//!
//! * [`Claim::FetchAdd`] — the real pool: claiming a batch index is
//!   one atomic read-modify-write step. RMW atomicity is exactly
//!   what makes `Ordering::Relaxed` sufficient for mutual exclusion,
//!   and the model verifies it: no interleaving produces a
//!   double-claimed slot, a skipped slot, or a merge that reads an
//!   unwritten slot.
//! * [`Claim::LoadThenStore`] — a seeded mutant that splits the
//!   claim into a load step and a store step, the bug a naive
//!   "cursor" would have. The model **must** find a double-write
//!   here; that failing run is the checker's own liveness proof,
//!   just like the linter's seeded-violation fixture.
//!
//! The model covers the pool protocol (claim → write → repeat,
//! join → ascending merge). It deliberately does not model weak
//! memory reordering of the slot payloads themselves: the
//! happens-before edge from `thread::scope`'s join is a Rust/C++11
//! guarantee the model takes as an axiom, as loom does for
//! `JoinHandle::join`.
//!
//! Run with `cargo test -p nsc-core --features loom` (or
//! `RUSTFLAGS="--cfg loom" cargo test -p nsc-core`).

/// Which claim protocol the model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The real pool: `cursor.fetch_add(1)` — claim is one atomic
    /// step.
    FetchAdd,
    /// The seeded bug: `let b = cursor;` then `cursor = b + 1;` as
    /// two separately schedulable steps.
    LoadThenStore,
}

/// A model configuration: how many abstract workers race over how
/// many slots.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Worker thread count (keep ≤ 3: the schedule space is
    /// factorial).
    pub threads: usize,
    /// Slot count (`units` in the real pool).
    pub units: usize,
    /// Per-execution step budget; racy protocols can livelock, so
    /// executions longer than this are counted as `truncated` rather
    /// than explored forever.
    pub max_steps: usize,
}

impl ModelConfig {
    /// A config with a budget comfortably above any fair execution's
    /// length (`3 × (threads + 2·units) + 8`).
    #[must_use]
    pub fn new(threads: usize, units: usize) -> Self {
        ModelConfig {
            threads,
            units,
            max_steps: 3 * (threads + 2 * units) + 8,
        }
    }
}

/// What the exploration found.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Complete executions explored (every thread terminated and the
    /// merge ran).
    pub executions: u64,
    /// Executions abandoned by the step budget (0 for the real
    /// protocol, which cannot livelock).
    pub truncated: u64,
    /// Distinct invariant violations, each with the count of
    /// executions exhibiting it.
    pub violations: Vec<(String, u64)>,
}

impl Outcome {
    /// True when no interleaving violated any invariant.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, v: String) {
        if let Some(entry) = self.violations.iter_mut().find(|(m, _)| *m == v) {
            entry.1 += 1;
        } else {
            self.violations.push((v, 1));
        }
    }
}

/// Per-thread control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// About to claim (the single RMW step, or the load half).
    Claim,
    /// `LoadThenStore` only: holds the loaded cursor value, about to
    /// store `loaded + 1`.
    Store { loaded: usize },
    /// Claimed slot `b`, about to write it.
    Write { b: usize },
    /// Terminated (observed `cursor >= units`).
    Done,
}

/// One explorable execution state. Cloned at every branch point —
/// states are tiny (a few words per thread/slot), and the DFS depth
/// is bounded by the step budget.
#[derive(Debug, Clone)]
struct State {
    cursor: usize,
    /// `writes[slot]` = which threads wrote it, in write order.
    writes: Vec<Vec<usize>>,
    phases: Vec<Phase>,
    steps: usize,
}

/// Exhaustively explores every interleaving of `cfg.threads` workers
/// under the given claim protocol and checks the pool invariants:
///
/// 1. no slot is ever written twice (one writer per slot);
/// 2. after all workers terminate, the ascending-index merge finds
///    every slot written (none skipped, none unwritten).
pub fn explore(cfg: &ModelConfig, claim: Claim) -> Outcome {
    let mut out = Outcome::default();
    let state = State {
        cursor: 0,
        writes: vec![Vec::new(); cfg.units],
        phases: vec![Phase::Claim; cfg.threads],
        steps: 0,
    };
    dfs(cfg, claim, state, &mut out);
    out
}

fn dfs(cfg: &ModelConfig, claim: Claim, state: State, out: &mut Outcome) {
    let runnable: Vec<usize> = (0..cfg.threads)
        .filter(|&t| state.phases[t] != Phase::Done)
        .collect();

    if runnable.is_empty() {
        // All workers joined: run the merge, in ascending slot
        // order, exactly as `batched_ctx` reassembles.
        out.executions += 1;
        for (slot, writers) in state.writes.iter().enumerate() {
            match writers.len() {
                1 => {}
                0 => out.record(format!("merge found slot {slot} unwritten")),
                n => out.record(format!("slot {slot} written {n} times")),
            }
        }
        return;
    }

    if state.steps >= cfg.max_steps {
        out.truncated += 1;
        return;
    }

    for t in runnable {
        let mut s = state.clone();
        s.steps += 1;
        match s.phases[t] {
            Phase::Claim => match claim {
                Claim::FetchAdd => {
                    // One atomic step: read and advance the cursor.
                    // No other thread can observe the intermediate
                    // state — that is what RMW atomicity means, at
                    // any memory ordering.
                    let b = s.cursor;
                    s.cursor += 1;
                    s.phases[t] = if b >= cfg.units {
                        Phase::Done
                    } else {
                        Phase::Write { b }
                    };
                }
                Claim::LoadThenStore => {
                    // The load half: another thread may interleave
                    // before the store half below.
                    s.phases[t] = Phase::Store { loaded: s.cursor };
                }
            },
            Phase::Store { loaded } => {
                s.cursor = loaded + 1;
                s.phases[t] = if loaded >= cfg.units {
                    Phase::Done
                } else {
                    Phase::Write { b: loaded }
                };
            }
            Phase::Write { b } => {
                // The real pool writes through an `UnsafeCell` here;
                // a second writer to the same slot would be the UB
                // the SAFETY comment rules out.
                s.writes[b].push(t);
                if s.writes[b].len() > 1 {
                    // Report at first occurrence but keep exploring
                    // this branch no further: the invariant is
                    // already broken.
                    out.record(format!("slot {b} written {} times", s.writes[b].len()));
                    return;
                }
                s.phases[t] = Phase::Claim;
            }
            Phase::Done => unreachable!("Done threads are filtered out of `runnable`"),
        }
        dfs(cfg, claim, s, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_protocol_holds_across_all_interleavings() {
        for (threads, units) in [(1, 3), (2, 1), (2, 2), (2, 3), (3, 2), (2, 4), (3, 3)] {
            let out = explore(&ModelConfig::new(threads, units), Claim::FetchAdd);
            assert!(
                out.holds(),
                "{threads} threads / {units} units: {:?}",
                out.violations
            );
            assert!(out.executions > 0);
            assert_eq!(
                out.truncated, 0,
                "the RMW protocol cannot livelock, so no execution may hit the step budget"
            );
        }
    }

    #[test]
    fn serial_execution_is_unique_and_clean() {
        let out = explore(&ModelConfig::new(1, 4), Claim::FetchAdd);
        assert!(out.holds());
        assert_eq!(out.executions, 1, "one thread has exactly one schedule");
    }

    #[test]
    fn zero_units_terminate_immediately() {
        let out = explore(&ModelConfig::new(3, 0), Claim::FetchAdd);
        assert!(out.holds());
        assert!(out.executions > 0);
    }

    #[test]
    fn contention_produces_many_interleavings() {
        // Sanity that the explorer actually branches: 2 threads over
        // 2 units must yield well over a handful of schedules.
        let out = explore(&ModelConfig::new(2, 2), Claim::FetchAdd);
        assert!(out.executions > 10, "only {} executions", out.executions);
    }

    #[test]
    fn seeded_racy_claim_is_caught() {
        // The checker's liveness proof: splitting the claim into
        // load + store steps must produce a double-write in some
        // interleaving. If this ever stops failing, the model lost
        // its teeth.
        let out = explore(&ModelConfig::new(2, 2), Claim::LoadThenStore);
        assert!(
            !out.holds(),
            "the load-then-store mutant must violate one-writer-per-slot"
        );
        assert!(
            out.violations
                .iter()
                .any(|(m, _)| m.contains("written 2 times")),
            "expected a double-write violation, got {:?}",
            out.violations
        );
    }

    #[test]
    fn racy_claim_caught_even_with_three_threads() {
        let out = explore(&ModelConfig::new(3, 2), Claim::LoadThenStore);
        assert!(!out.holds());
    }
}
