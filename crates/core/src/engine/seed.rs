//! Per-trial seed derivation via SplitMix64.
//!
//! The engine's determinism contract rests on one invariant: the RNG
//! stream a trial sees is a pure function of `(master_seed,
//! trial_index)` and nothing else — not the worker thread it ran on,
//! not the order batches were stolen, not the trial count of the
//! campaign it is part of. SplitMix64 (Steele, Lea & Flood,
//! *Fast Splittable Pseudorandom Number Generators*, OOPSLA 2014) is
//! the standard finalizer for exactly this job: it is a bijection on
//! `u64`, so distinct trial indices can never collide under the same
//! master seed, and its avalanche constants decorrelate the seeds of
//! adjacent trials.

/// The golden-ratio increment of the SplitMix64 sequence,
/// `⌊2^64 / φ⌋` forced odd.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer — a bijective avalanche mix on `u64`.
///
/// Constants are the canonical ones from the reference
/// implementation (also used by `xoshiro`'s seeding procedure).
#[must_use]
pub fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one trial from the campaign's master
/// seed.
///
/// The master seed is first avalanched so that *nearby* master seeds
/// (a user stepping `--seed 1, 2, 3…`) produce unrelated trial-seed
/// streams, then the trial index walks the SplitMix64 sequence from
/// that origin. Because [`mix`] is a bijection, trials of one
/// campaign always receive pairwise-distinct seeds.
#[must_use]
pub fn trial_seed(master: u64, trial_index: u64) -> u64 {
    let origin = mix(master);
    mix(origin.wrapping_add(trial_index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_stable_across_runs() {
        // Reference values from the canonical SplitMix64 pin the
        // function: if the constants drift, every archived experiment
        // JSON silently changes.
        assert_eq!(mix(0), 0);
        assert_eq!(mix(1), 0x5692_161D_100B_05E5);
        assert_eq!(mix(GOLDEN_GAMMA), 0xE220_A839_7B1D_CDAF);
        assert_eq!(trial_seed(20_050_605, 0), 0x97B9_5976_CCA4_9E3C);
        assert_eq!(trial_seed(20_050_605, 1), 0xBFD1_5F24_E98F_6660);
    }

    #[test]
    fn seeds_distinct_per_trial_index() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(trial_seed(42, i)), "collision at trial {i}");
        }
    }

    #[test]
    fn seeds_stable_across_runs() {
        // The derivation is a pure function: same inputs, same seed,
        // every run, every platform.
        let a: Vec<u64> = (0..16).map(|i| trial_seed(20_050_605, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| trial_seed(20_050_605, i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_masters_decorrelated() {
        // Stepping the master seed by one must not shift the trial
        // stream by one (the naive `master + i·γ` scheme does).
        let s0: HashSet<u64> = (0..256).map(|i| trial_seed(7, i)).collect();
        let s1: HashSet<u64> = (0..256).map(|i| trial_seed(8, i)).collect();
        assert!(s0.is_disjoint(&s1));
    }
}
