//! Mergeable per-trial outcome accumulators.
//!
//! Workers fold the trials of each batch into a partial accumulator;
//! the engine then merges the partials **in batch-index order**, so
//! the sequence of floating-point operations — and therefore the
//! aggregate, bit for bit — does not depend on how many threads ran
//! or which worker picked up which batch.

use serde::{Deserialize, Serialize};

/// Two-sided 95% normal quantile — the large-`n` limit of the
/// Student-t quantile used for confidence intervals.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Two-sided 95% Student-t quantiles for 1–30 degrees of freedom
/// (standard table values, `t_{0.975, df}`).
const T_95_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 95% Student-t quantile for `df` degrees of freedom.
///
/// Campaigns often run a handful of trials; the normal quantile
/// (`z = 1.96`) understates the uncertainty badly there (at `n = 3`,
/// `df = 2`, the honest factor is 4.30). Values for `df ≤ 30` come
/// from the standard table; beyond that the Cornish–Fisher expansion
/// of the t quantile around `z` (Hill 1970's asymptotic form) is
/// accurate to a few 1e-4 and decays monotonically to [`Z_95`].
///
/// `df = 0` (fewer than two samples) returns infinity: no finite
/// interval is honest with one observation. Callers that special-case
/// `n < 2` (as [`RunningStats::ci95_half_width`] does via a zero
/// standard error) never hit it.
#[must_use]
pub fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_95_TABLE[df as usize - 1],
        _ => {
            let z = Z_95;
            let d = df as f64;
            let g1 = (z.powi(3) + z) / 4.0;
            let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
            let g3 = (3.0 * z.powi(7) + 19.0 * z.powi(5) + 17.0 * z.powi(3) - 15.0 * z) / 384.0;
            z + g1 / d + g2 / (d * d) + g3 / (d * d * d)
        }
    }
}

/// A statistic that can absorb per-trial outcomes and be merged with
/// a partial computed elsewhere.
///
/// Implementations must make `merge` *associative* so the engine's
/// fixed batch-order reduction is well-defined, and order-robust in
/// the statistical sense: any merge order yields the same aggregate
/// up to floating-point rounding (the engine guarantees bitwise
/// reproducibility separately, by always merging in batch order).
pub trait TrialAccumulator: Sized + Send {
    /// What one trial produces.
    type Outcome;

    /// Absorbs a single trial's outcome.
    fn record(&mut self, outcome: Self::Outcome);

    /// Absorbs another partial accumulator (e.g. from another batch).
    fn merge(&mut self, other: Self);
}

/// Streaming mean / variance over `f64` outcomes (Welford's
/// algorithm, with the parallel merge of Chan, Golub & LeVeque).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded outcomes.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two outcomes).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the Student-t 95% confidence interval on the
    /// mean (zero with fewer than two outcomes, where no finite
    /// interval is honest).
    ///
    /// The t quantile at `n − 1` degrees of freedom replaces the
    /// normal `z = 1.96`: at small trial counts the normal
    /// approximation understates the uncertainty — by a factor of
    /// 2.2 at `n = 3` — which is exactly the silent overconfidence
    /// the paper's §4.3 correction discipline exists to prevent.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t95(self.n - 1) * self.std_error()
    }

    /// The 95% confidence interval `(lo, hi)` on the mean.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean() - h, self.mean() + h)
    }

    /// Records one value (Welford update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }
}

impl TrialAccumulator for RunningStats {
    type Outcome = f64;

    fn record(&mut self, outcome: f64) {
        self.push(outcome);
    }

    fn merge(&mut self, other: Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other;
            return;
        }
        let n_a = self.n as f64;
        let n_b = other.n as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * n_b / n;
        self.m2 += other.m2 + delta * delta * n_a * n_b / n;
        self.n += other.n;
    }
}

/// A compact, serializable snapshot of a [`RunningStats`], for
/// experiment reports and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Number of trials aggregated.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Lower edge of the 95% confidence interval.
    pub ci95_lo: f64,
    /// Upper edge of the 95% confidence interval.
    pub ci95_hi: f64,
}

impl From<RunningStats> for StatSummary {
    fn from(s: RunningStats) -> Self {
        let (ci95_lo, ci95_hi) = s.ci95();
        StatSummary {
            n: s.count(),
            mean: s.mean(),
            std_error: s.std_error(),
            ci95_lo,
            ci95_hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= 1e-9 * scale
    }

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [0.3, 1.7, -2.2, 0.0, 5.5, 5.5, 0.1];
        let mut acc = RunningStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(close(acc.mean(), mean));
        assert!(close(acc.variance(), var));
        assert_eq!(acc.count(), xs.len() as u64);
    }

    #[test]
    fn empty_and_singleton_edges() {
        let empty = RunningStats::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.std_error(), 0.0);
        let mut one = RunningStats::new();
        one.push(3.25);
        assert_eq!(one.mean(), 3.25);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.ci95(), (3.25, 3.25));
    }

    #[test]
    fn t_quantile_matches_table_and_normal_limit() {
        assert_eq!(t95(0), f64::INFINITY);
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(2) - 4.303).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        // The asymptotic tail continues the table smoothly…
        assert!((t95(31) - 2.0395).abs() < 2e-3);
        assert!((t95(120) - 1.9799).abs() < 2e-3);
        // …and converges on the normal quantile.
        assert!((t95(1_000_000) - Z_95).abs() < 1e-4);
        for df in 1..200 {
            assert!(t95(df) > t95(df + 1), "df = {df}");
            assert!(t95(df + 1) > Z_95, "df = {df}");
        }
    }

    #[test]
    fn small_n_interval_wider_than_normal_approximation() {
        let mut s = RunningStats::new();
        for &x in &[1.0, 2.0, 4.0] {
            s.push(x);
        }
        // n = 3 ⇒ df = 2 ⇒ t = 4.303, more than twice the normal z.
        let hw = s.ci95_half_width();
        assert!((hw - t95(2) * s.std_error()).abs() < 1e-12);
        assert!(hw > 2.0 * Z_95 * s.std_error());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(before);
        assert_eq!(e, before);
    }

    proptest! {
        /// The satellite-mandated property: merging per-batch
        /// partials in *any* grouping/order yields the same
        /// aggregate statistics as one serial pass (up to
        /// floating-point rounding).
        #[test]
        fn merge_order_does_not_change_aggregates(
            xs in proptest::collection::vec(-1.0e3_f64..1.0e3, 1..200),
            split in 1usize..8,
            swap in proptest::bool::ANY,
        ) {
            let mut serial = RunningStats::new();
            for &x in &xs {
                serial.push(x);
            }

            // Partition into `split` round-robin batches, then merge
            // forwards or backwards depending on `swap`.
            let mut parts = vec![RunningStats::new(); split];
            for (i, &x) in xs.iter().enumerate() {
                parts[i % split].push(x);
            }
            if swap {
                parts.reverse();
            }
            let mut merged = RunningStats::new();
            for p in parts {
                merged.merge(p);
            }

            prop_assert_eq!(merged.count(), serial.count());
            prop_assert!(close(merged.mean(), serial.mean()));
            prop_assert!(close(merged.variance(), serial.variance()));
        }
    }
}
