//! Multi-trial protocol campaigns: every §3 synchronization
//! mechanism, run under the deterministic parallel engine.
//!
//! A *campaign* repeats one simulator over many independent trials —
//! fresh random message and fresh Bernoulli operation schedule per
//! trial, all derived from the trial's own seeded RNG — and
//! aggregates rate and error statistics with confidence intervals.
//! This is what turns the single-shot runners in [`crate::sim`] into
//! estimates with quantified uncertainty, and it is the level at
//! which parallelism pays: trials are embarrassingly parallel while
//! each individual run stays a sequential state machine.
//!
//! # Hot path
//!
//! Campaign trials run on the engine's counter-based
//! [`TrialRng`](super::TrialRng) and reuse one
//! [`TrialScratch`](crate::sim::TrialScratch) per worker, so a
//! steady-state trial performs **zero heap allocations**: the message
//! buffer is refilled in place with [`Alphabet::fill_random`]'s
//! word-slicing bulk path and every simulator writes into recycled
//! buffers via its `run_*_into` entry point.

use super::accum::{RunningStats, StatSummary, TrialAccumulator};
use super::rng::TrialRng;
use super::runner::{fold_trials_scoped_timed, run_blocks_scoped_timed, run_trials_scoped_timed};
use super::{EngineConfig, KernelKind, RunManifest};
use crate::error::CoreError;
use crate::sim::adaptive::run_adaptive_slotted_into;
use crate::sim::bitsliced::{self, LaneRng};
use crate::sim::counter::run_counter_protocol_into;
use crate::sim::noisy_feedback::{run_noisy_counter_into, FeedbackQuality};
use crate::sim::slotted::run_slotted_into;
use crate::sim::stop_wait::run_stop_and_wait_into;
use crate::sim::unsync::run_unsynchronized_into;
use crate::sim::wide::run_wide_unsynchronized_into;
use crate::sim::{
    BernoulliSchedule, EventRecorder, NullObserver, SimEvent, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::{Alphabet, Symbol};
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which §3 synchronization mechanism a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mechanism {
    /// No synchronization at all (the Definition 1 baseline).
    Unsynchronized,
    /// The Appendix A counter protocol with perfect feedback.
    Counter,
    /// The Figure 1 two-variable stop-and-wait handshake.
    StopWait,
    /// Figure 3(b) common-event-source slotting.
    Slotted {
        /// Operations per slot.
        slot_len: usize,
    },
    /// Figure 4(b) adaptive slotting.
    AdaptiveSlotted,
    /// The counter protocol under imperfect feedback.
    NoisyCounter {
        /// Feedback loss/delay knobs.
        quality: FeedbackQuality,
    },
    /// The wide-variable (torn-write) channel.
    Wide,
}

impl Mechanism {
    /// Stable machine-readable name, used by the CLI and in JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Unsynchronized => "unsync",
            Mechanism::Counter => "counter",
            Mechanism::StopWait => "stop-wait",
            Mechanism::Slotted { .. } => "slotted",
            Mechanism::AdaptiveSlotted => "adaptive",
            Mechanism::NoisyCounter { .. } => "noisy-counter",
            Mechanism::Wide => "wide",
        }
    }

    /// Whether [`KernelKind::Bitsliced`] covers this mechanism. The
    /// three §3 hot paths have bitsliced twins in
    /// [`crate::sim::bitsliced`]; everything else runs scalar-only.
    #[must_use]
    pub fn has_bitsliced_kernel(&self) -> bool {
        matches!(
            self,
            Mechanism::Unsynchronized | Mechanism::Counter | Mechanism::Slotted { .. }
        )
    }
}

impl std::fmt::Display for Mechanism {
    /// [`Mechanism::name`] plus the mechanism's own parameters —
    /// enough to reconstruct the variant, used by run manifests.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mechanism::Slotted { slot_len } => write!(f, "slotted(slot_len={slot_len})"),
            Mechanism::NoisyCounter { quality } => write!(
                f,
                "noisy-counter(p_loss={},delay={})",
                quality.p_loss, quality.delay
            ),
            other => f.write_str(other.name()),
        }
    }
}

/// Parameters shared by every trial of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialPlan {
    /// The mechanism under test.
    pub mechanism: Mechanism,
    /// Symbol width in bits.
    pub bits: u32,
    /// Message length in symbols (fresh random message per trial).
    pub message_len: usize,
    /// Bernoulli schedule bias: probability an operation goes to the
    /// sender.
    pub sender_prob: f64,
    /// Operation budget per trial.
    pub max_ops: usize,
}

impl TrialPlan {
    /// A plan with a generous default operation budget
    /// (`64 × message_len`, at least 4096) that lets even heavily
    /// biased schedules finish the message.
    #[must_use]
    pub fn new(mechanism: Mechanism, bits: u32, message_len: usize, sender_prob: f64) -> Self {
        TrialPlan {
            mechanism,
            bits,
            message_len,
            sender_prob,
            max_ops: message_len.saturating_mul(64).max(4096),
        }
    }

    /// Stable one-line descriptor of the plan, recorded in run
    /// manifests so a campaign can be re-run from its own output.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "campaign(mechanism={}, bits={}, len={}, q={}, max_ops={})",
            self.mechanism, self.bits, self.message_len, self.sender_prob, self.max_ops
        )
    }
}

/// What one trial contributes to the campaign statistics.
#[derive(Clone, Copy)]
struct TrialOutcome {
    /// Reliable information rate in bits per operation.
    rate: f64,
    /// Empirical deletion probability.
    p_d: f64,
    /// Empirical insertion (stale) probability.
    p_i: f64,
    /// Empirical symbol error rate of the aligned stream.
    error_rate: f64,
}

/// Per-batch partial holding one [`RunningStats`] per statistic.
#[derive(Default)]
struct CampaignAccumulator {
    rate: RunningStats,
    p_d: RunningStats,
    p_i: RunningStats,
    error_rate: RunningStats,
}

impl TrialAccumulator for CampaignAccumulator {
    type Outcome = TrialOutcome;

    fn record(&mut self, o: TrialOutcome) {
        self.rate.push(o.rate);
        self.p_d.push(o.p_d);
        self.p_i.push(o.p_i);
        self.error_rate.push(o.error_rate);
    }

    fn merge(&mut self, other: Self) {
        self.rate.merge(other.rate);
        self.p_d.merge(other.p_d);
        self.p_i.merge(other.p_i);
        self.error_rate.merge(other.error_rate);
    }
}

/// Aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Mechanism name ([`Mechanism::name`]).
    pub mechanism: String,
    /// Symbol width in bits.
    pub bits: u32,
    /// Trials aggregated.
    pub trials: usize,
    /// Master seed the per-trial seeds were derived from.
    pub master_seed: u64,
    /// Reliable rate, bits per operation.
    pub rate: StatSummary,
    /// Empirical deletion probability.
    pub p_d: StatSummary,
    /// Empirical insertion probability.
    pub p_i: StatSummary,
    /// Empirical symbol error rate.
    pub error_rate: StatSummary,
}

/// Runs `trials` independent simulations of `plan` under the engine
/// and aggregates rate / `P_d` / `P_i` / error statistics.
///
/// Determinism contract: the summary is a pure function of
/// `(plan, trials, config.master_seed, config.batch_size)` — the
/// thread count never changes a bit of it. Trials draw exclusively
/// from the engine's own [`TrialRng`] via fully specified adapters
/// ([`Alphabet::fill_random`] word-slicing and the `rand` crate's
/// bit-shift `u64`/`f64` conversions), so summaries are also stable
/// across platforms and `rand` versions.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when `trials`,
/// `message_len`, `max_ops`, or a slotted `slot_len` is zero, and
/// [`CoreError::BadProbability`] for an invalid `sender_prob` or
/// feedback quality. Width validation comes from
/// [`Alphabet::new`]. [`CoreError::Engine`] reports an engine worker
/// failing to deliver its batch.
pub fn run_campaign(
    config: &EngineConfig,
    plan: &TrialPlan,
    trials: usize,
) -> Result<CampaignSummary, CoreError> {
    run_campaign_manifest(config, plan, trials).map(|(summary, _)| summary)
}

/// [`run_campaign`], additionally returning the run's
/// [`RunManifest`] — the reproducibility record (plan descriptor,
/// master seed, batch size, trial count, engine version) plus the
/// observational [`super::ExecutionReport`] (thread counts, total
/// and per-batch wall-clock, trials/sec).
///
/// The summary and the manifest's reproducibility fields are covered
/// by the determinism contract; the execution record is not (strip
/// it with [`RunManifest::deterministic`] before diffing runs).
///
/// # Errors
///
/// Same contract as [`run_campaign`].
pub fn run_campaign_manifest(
    config: &EngineConfig,
    plan: &TrialPlan,
    trials: usize,
) -> Result<(CampaignSummary, RunManifest), CoreError> {
    let alphabet = validate_campaign(plan, trials)?;
    if config.kernel == KernelKind::Bitsliced {
        return run_campaign_bitsliced(config, plan, trials, alphabet);
    }

    let (acc, execution) = fold_trials_scoped_timed::<TrialRng, CampaignAccumulator, _, _, _>(
        config,
        trials,
        TrialScratch::new,
        |scratch, _, rng| {
            let mut message = std::mem::take(&mut scratch.message);
            alphabet.fill_random(rng, &mut message, plan.message_len);
            let sched_rng = TrialRng::seed_from_u64(rng.gen());
            let mut schedule =
                BernoulliSchedule::new(plan.sender_prob, sched_rng).expect("probability validated");
            let out = run_one(
                plan,
                &message,
                &mut schedule,
                rng,
                &mut NullObserver,
                scratch,
            )
            .expect("plan validated");
            scratch.message = message;
            out
        },
    )?;

    let summary = summarize(config, plan, trials, acc);
    let manifest =
        RunManifest::new(config, plan.describe(), Some(trials)).with_execution(execution);
    Ok((summary, manifest))
}

/// Events captured from one campaign trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialTrace {
    /// Trial index within the campaign (0-based).
    pub trial: u64,
    /// The trial's channel events in tick order; ticks are
    /// trial-local operation indices starting at 0.
    pub events: Vec<SimEvent>,
}

/// [`run_campaign_manifest`], additionally capturing every trial's
/// ground-truth channel events — the engine-side writer hook of the
/// `nsc-trace` subsystem.
///
/// The summary is **bit-identical** to [`run_campaign`]'s for the
/// same `(plan, trials, master_seed, batch_size)`: trials are seeded
/// identically, observation never touches an RNG, and outcomes are
/// re-folded with the engine's own batch grouping. Traces come back
/// in trial order regardless of thread count, and the manifest's
/// execution report carries the same per-batch timings as the
/// untraced path.
///
/// # Errors
///
/// Same contract as [`run_campaign`].
pub fn run_campaign_traced(
    config: &EngineConfig,
    plan: &TrialPlan,
    trials: usize,
) -> Result<(CampaignSummary, RunManifest, Vec<TrialTrace>), CoreError> {
    let alphabet = validate_campaign(plan, trials)?;
    if config.kernel == KernelKind::Bitsliced {
        // The lane kernels track counts, not per-tick events; there
        // is nothing to hand an observer.
        return Err(CoreError::BadSimulation(
            "trace capture requires the scalar kernel (bitsliced lanes record counts, not events)"
                .to_owned(),
        ));
    }

    let (results, execution) = run_trials_scoped_timed::<TrialRng, _, _, _, _>(
        config,
        trials,
        TrialScratch::new,
        |scratch, _, rng| {
            let mut message = std::mem::take(&mut scratch.message);
            alphabet.fill_random(rng, &mut message, plan.message_len);
            let sched_rng = TrialRng::seed_from_u64(rng.gen());
            let mut schedule =
                BernoulliSchedule::new(plan.sender_prob, sched_rng).expect("probability validated");
            let mut recorder = EventRecorder::default();
            let outcome = run_one(plan, &message, &mut schedule, rng, &mut recorder, scratch)
                .expect("plan validated");
            scratch.message = message;
            (outcome, recorder.events)
        },
    )?;

    // Re-fold outcomes with the runner's own batch grouping
    // (`batch_size` consecutive trials per partial, partials merged
    // in order) so the Welford merge tree — and therefore every f64 —
    // matches `fold_trials` exactly.
    let size = config.batch_size.max(1);
    let mut acc = CampaignAccumulator::default();
    for chunk in results.chunks(size) {
        let mut part = CampaignAccumulator::default();
        for (outcome, _) in chunk {
            part.record(*outcome);
        }
        acc.merge(part);
    }

    let summary = summarize(config, plan, trials, acc);
    let manifest =
        RunManifest::new(config, plan.describe(), Some(trials)).with_execution(execution);
    let traces = results
        .into_iter()
        .enumerate()
        .map(|(i, (_, events))| TrialTrace {
            trial: i as u64,
            events,
        })
        .collect();
    Ok((summary, manifest, traces))
}

/// The [`KernelKind::Bitsliced`] campaign driver: 64 trials per
/// `u64` lane through [`crate::sim::bitsliced`].
///
/// Bit-identity with the scalar path rests on three invariants:
///
/// 1. **Seeding replay** — each lane's schedule generator state is
///    derived by replaying trial `i`'s scalar seeding verbatim
///    ([`TrialRng::from_trial`], the message draw's word
///    consumption, then the schedule split), so lane `l` of a block
///    sees exactly the Bernoulli stream scalar trial `i` would.
/// 2. **Count equality** — the lane kernels produce per-trial counts
///    equal to the scalar simulators' (pinned by the
///    `sim::bitsliced` equivalence tests), and the mappers below
///    repeat the scalar outcome arithmetic operation for operation.
/// 3. **Fold replay** — the flat outcome stream is re-folded with
///    the engine's own `batch_size` grouping, reproducing
///    [`fold_trials_scoped_timed`]'s Welford merge tree exactly.
///
/// Blocks of 64 trials are the parallel work unit, so thread count
/// remains a pure wall-clock knob here too.
fn run_campaign_bitsliced(
    config: &EngineConfig,
    plan: &TrialPlan,
    trials: usize,
    alphabet: Alphabet,
) -> Result<(CampaignSummary, RunManifest), CoreError> {
    let threshold = bitsliced::bernoulli_threshold(plan.sender_prob);
    let bits = plan.bits;
    let len = plan.message_len;
    let max_ops = plan.max_ops;
    let master = config.master_seed;

    let (outcomes, execution) = match plan.mechanism {
        Mechanism::Unsynchronized => run_blocks_scoped_timed(
            config,
            trials,
            bitsliced::LANES,
            || (),
            |(), _, range| {
                let n = range.len();
                let mut rng = LaneRng::new();
                for (lane, i) in range.enumerate() {
                    rng.set_lane(lane, lane_schedule_state(master, i as u64, alphabet, len));
                }
                let o = bitsliced::run_unsync_lanes(&mut rng, n, len, threshold, max_ops);
                (0..n)
                    .map(|l| {
                        let p_i = ratio_u64(o.stale_reads[l], o.reads[l]);
                        TrialOutcome {
                            rate: bits as f64 * ratio_u64(o.reads[l] - o.stale_reads[l], o.ops[l]),
                            p_d: ratio_u64(o.deleted_writes[l], o.writes[l]),
                            p_i,
                            error_rate: p_i,
                        }
                    })
                    .collect()
            },
        )?,
        Mechanism::Counter => run_blocks_scoped_timed(
            config,
            trials,
            bitsliced::LANES,
            || (vec![0u16; bitsliced::LANES * len], Vec::with_capacity(len)),
            |(slab, scratch), _, range| {
                let n = range.len();
                let mut rng = LaneRng::new();
                for (lane, i) in range.enumerate() {
                    let mut trial = TrialRng::from_trial(master, i as u64);
                    alphabet.fill_random(&mut trial, scratch, len);
                    for (dst, s) in slab[lane * len..(lane + 1) * len].iter_mut().zip(&*scratch) {
                        *dst = s.index() as u16;
                    }
                    rng.set_lane(lane, TrialRng::seed_from_u64(trial.gen()).state());
                }
                let o = bitsliced::run_counter_lanes(&mut rng, slab, n, len, threshold, max_ops);
                (0..n)
                    .map(|l| {
                        let e = ratio_u64(o.errors[l], o.delivered[l]);
                        TrialOutcome {
                            rate: nsc_channel::dmc::closed_form::mary_symmetric(bits, e)
                                * ratio_u64(o.delivered[l], o.ops[l]),
                            p_d: 0.0, // the waiting sender never overwrites unread data
                            p_i: ratio_u64(o.stale_fills[l], o.delivered[l]),
                            error_rate: e,
                        }
                    })
                    .collect()
            },
        )?,
        Mechanism::Slotted { slot_len } => run_blocks_scoped_timed(
            config,
            trials,
            bitsliced::LANES,
            || (),
            |(), _, range| {
                let n = range.len();
                let mut rng = LaneRng::new();
                for (lane, i) in range.enumerate() {
                    rng.set_lane(lane, lane_schedule_state(master, i as u64, alphabet, len));
                }
                let o =
                    bitsliced::run_slotted_lanes(&mut rng, n, len, slot_len, threshold, max_ops);
                (0..n)
                    .map(|l| {
                        let sf = ratio_u64(o.stale_reads[l], o.delivered[l]);
                        let e = crate::bounds::alpha(bits) * sf;
                        TrialOutcome {
                            rate: nsc_channel::dmc::closed_form::mary_symmetric(bits, e)
                                * ratio_u64(o.delivered[l], o.ops[l]),
                            p_d: ratio_u64(o.deleted_writes[l], o.writes[l]),
                            p_i: sf,
                            error_rate: e,
                        }
                    })
                    .collect()
            },
        )?,
        other => {
            return Err(CoreError::BadSimulation(format!(
                "mechanism {} has no bitsliced kernel (supported: unsync, counter, slotted); \
                 rerun with --kernel scalar",
                other.name()
            )))
        }
    };

    // Re-fold the flat outcome stream with the runner's own batch
    // grouping (`batch_size` consecutive trials per partial, partials
    // merged in order) so the Welford merge tree — and therefore
    // every f64 — matches the scalar `fold_trials` path exactly.
    let size = config.batch_size.max(1);
    let mut acc = CampaignAccumulator::default();
    for chunk in outcomes.chunks(size) {
        let mut part = CampaignAccumulator::default();
        for outcome in chunk {
            part.record(*outcome);
        }
        acc.merge(part);
    }

    let summary = summarize(config, plan, trials, acc);
    let manifest =
        RunManifest::new(config, plan.describe(), Some(trials)).with_execution(execution);
    Ok((summary, manifest))
}

/// Seeds one bitsliced lane exactly as the scalar path seeds trial
/// `i`: derive the trial generator, let the message draw consume its
/// words, then split off the schedule generator and capture its
/// state.
///
/// The unsync and slotted statistics never read message *content* —
/// their counts depend only on who acted when — so the driver
/// advances past [`Alphabet::fill_random`]'s word consumption
/// (`⌈len / ⌊64/N⌋⌉` words) instead of materializing symbols.
fn lane_schedule_state(master: u64, trial: u64, alphabet: Alphabet, len: usize) -> [u64; 4] {
    let mut rng = TrialRng::from_trial(master, trial);
    let per_word = (64 / alphabet.bits()) as usize;
    for _ in 0..len.div_ceil(per_word) {
        rng.next_u64();
    }
    TrialRng::seed_from_u64(rng.gen()).state()
}

fn ratio_u64(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Shared parameter validation; returns the campaign's alphabet.
fn validate_campaign(plan: &TrialPlan, trials: usize) -> Result<Alphabet, CoreError> {
    if trials == 0 {
        return Err(CoreError::BadSimulation("campaign needs trials".to_owned()));
    }
    if plan.message_len == 0 {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if plan.max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let alphabet = Alphabet::new(plan.bits).map_err(|e| CoreError::BadSimulation(e.to_string()))?;
    crate::error::check_prob("sender_prob", plan.sender_prob)?;
    match plan.mechanism {
        Mechanism::Slotted { slot_len } if slot_len == 0 => {
            return Err(CoreError::BadSimulation("slot_len is zero".to_owned()));
        }
        Mechanism::NoisyCounter { quality } => {
            quality.validated()?;
        }
        _ => {}
    }
    Ok(alphabet)
}

fn summarize(
    config: &EngineConfig,
    plan: &TrialPlan,
    trials: usize,
    acc: CampaignAccumulator,
) -> CampaignSummary {
    CampaignSummary {
        mechanism: plan.mechanism.name().to_owned(),
        bits: plan.bits,
        trials,
        master_seed: config.master_seed,
        rate: acc.rate.into(),
        p_d: acc.p_d.into(),
        p_i: acc.p_i.into(),
        error_rate: acc.error_rate.into(),
    }
}

/// One simulated trial, mapped onto the campaign's common statistics.
/// Channel events go to `observer` (pass [`NullObserver`] when not
/// capturing).
///
/// Every simulator writes into `scratch`'s recycled buffers; after
/// the statistics are computed the buffers move back into `scratch`
/// so the next trial on this worker allocates nothing.
fn run_one<G, O>(
    plan: &TrialPlan,
    message: &[Symbol],
    schedule: &mut BernoulliSchedule<G>,
    rng: &mut G,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<TrialOutcome, CoreError>
where
    G: Rng + SeedableRng,
    O: SimObserver + ?Sized,
{
    let bits = plan.bits;
    let max_ops = plan.max_ops;
    Ok(match plan.mechanism {
        Mechanism::Unsynchronized => {
            // No alignment: stale reads are indistinguishable from
            // data, so the insertion rate doubles as the error proxy.
            let o = run_unsynchronized_into(message, schedule, max_ops, observer, scratch)?;
            let out = TrialOutcome {
                rate: bits as f64 * o.raw_throughput(),
                p_d: o.p_d(),
                p_i: o.p_i(),
                error_rate: o.p_i(),
            };
            scratch.received = o.received;
            out
        }
        Mechanism::Counter => {
            let o = run_counter_protocol_into(message, schedule, max_ops, observer, scratch)?;
            let delivered = o.received.len();
            let out = TrialOutcome {
                rate: o.reliable_rate(bits, message).value(),
                p_d: 0.0, // the waiting sender never overwrites unread data
                p_i: ratio(o.stale_fills, delivered),
                error_rate: o.symbol_error_rate(message),
            };
            scratch.received = o.received;
            out
        }
        Mechanism::StopWait => {
            let o = run_stop_and_wait_into(message, schedule, max_ops, observer, scratch)?;
            let out = TrialOutcome {
                rate: o.rate(bits).value(),
                p_d: 0.0,
                p_i: 0.0,
                error_rate: 0.0,
            };
            scratch.received = o.received;
            out
        }
        Mechanism::Slotted { slot_len } => {
            let o = run_slotted_into(message, schedule, slot_len, max_ops, observer, scratch)?;
            let out = TrialOutcome {
                rate: o.reliable_rate(bits).value(),
                p_d: ratio(o.deleted_writes, o.writes),
                p_i: o.stale_fraction(),
                error_rate: crate::bounds::alpha(bits) * o.stale_fraction(),
            };
            scratch.received = o.received;
            out
        }
        Mechanism::AdaptiveSlotted => {
            let o = run_adaptive_slotted_into(message, schedule, max_ops, observer, scratch)?;
            let out = TrialOutcome {
                rate: o.rate(bits).value(),
                p_d: 0.0,
                p_i: 0.0,
                error_rate: 0.0,
            };
            scratch.received = o.received;
            out
        }
        Mechanism::NoisyCounter { quality } => {
            let mut fb_rng = G::seed_from_u64(rng.gen());
            let o = run_noisy_counter_into(
                message,
                schedule,
                quality,
                &mut fb_rng,
                max_ops,
                observer,
                scratch,
            )?;
            let delivered = o.received.len();
            let out = TrialOutcome {
                rate: o.reliable_rate(bits, message).value(),
                p_d: 0.0,
                p_i: ratio(o.stale_fills, delivered),
                error_rate: o.symbol_error_rate(message),
            };
            scratch.received = o.received;
            out
        }
        Mechanism::Wide => {
            let o =
                run_wide_unsynchronized_into(message, bits, schedule, max_ops, observer, scratch)?;
            // Aligned samples are the non-stale ones; among those,
            // torn reads act as substitutions.
            let aligned = 1.0 - o.stale_rate();
            let err = if aligned > 0.0 {
                (o.torn_rate() / aligned).min(1.0)
            } else {
                0.0
            };
            let samples_per_op = ratio(o.received.len(), o.ops);
            let out = TrialOutcome {
                rate: nsc_channel::dmc::closed_form::mary_symmetric(bits, err)
                    * aligned
                    * samples_per_op,
                p_d: o.deletion_rate(),
                p_i: o.stale_rate(),
                error_rate: o.torn_rate(),
            };
            scratch.received = o.received;
            scratch.sample_truth = o.sample_truth;
            out
        }
    })
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Mechanism; 7] = [
        Mechanism::Unsynchronized,
        Mechanism::Counter,
        Mechanism::StopWait,
        Mechanism::Slotted { slot_len: 4 },
        Mechanism::AdaptiveSlotted,
        Mechanism::NoisyCounter {
            quality: FeedbackQuality {
                p_loss: 0.2,
                delay: 2,
            },
        },
        Mechanism::Wide,
    ];

    #[test]
    fn every_mechanism_thread_invariant() {
        for mech in ALL {
            let plan = TrialPlan::new(mech, 3, 200, 0.5);
            let serial = run_campaign(&EngineConfig::serial(11), &plan, 12).unwrap();
            let parallel =
                run_campaign(&EngineConfig::seeded(11).with_threads(4), &plan, 12).unwrap();
            assert_eq!(serial, parallel, "mechanism {}", mech.name());
        }
    }

    #[test]
    fn traced_campaign_matches_untraced_and_is_thread_invariant() {
        for mech in ALL {
            let plan = TrialPlan::new(mech, 3, 150, 0.5);
            let cfg = EngineConfig::serial(21);
            let plain = run_campaign(&cfg, &plan, 10).unwrap();
            let (traced, _, traces) = run_campaign_traced(&cfg, &plan, 10).unwrap();
            assert_eq!(plain, traced, "mechanism {}", mech.name());
            assert_eq!(traces.len(), 10);
            // Traces are in trial order with trial-local monotone ticks.
            for (i, t) in traces.iter().enumerate() {
                assert_eq!(t.trial, i as u64);
                assert!(t.events.windows(2).all(|w| w[0].tick <= w[1].tick));
            }
            // Thread count changes nothing, events included.
            let (par_summary, _, par_traces) =
                run_campaign_traced(&EngineConfig::seeded(21).with_threads(4), &plan, 10).unwrap();
            assert_eq!(plain, par_summary, "mechanism {}", mech.name());
            assert_eq!(traces, par_traces, "mechanism {}", mech.name());
        }
    }

    #[test]
    fn traced_campaign_reports_batch_timings() {
        // Regression test: the traced path used to hand
        // `ExecutionReport::collect` an empty timing vector; it now
        // shares the runner's per-batch instrumentation.
        let plan = TrialPlan::new(Mechanism::Counter, 3, 100, 0.5);
        let (_, manifest, _) =
            run_campaign_traced(&EngineConfig::seeded(13).with_threads(2), &plan, 10).unwrap();
        let exec = manifest
            .execution
            .as_ref()
            .expect("traced campaigns report execution");
        assert!(!exec.batches.is_empty());
        assert_eq!(exec.batches.iter().map(|b| b.trials).sum::<usize>(), 10);
    }

    #[test]
    fn bitsliced_kernel_matches_scalar_bit_for_bit() {
        // 70 trials = one full 64-lane block plus a 6-lane tail, so
        // tail masking and the batch-grouping re-fold both matter.
        for mech in [
            Mechanism::Unsynchronized,
            Mechanism::Counter,
            Mechanism::Slotted { slot_len: 3 },
        ] {
            assert!(mech.has_bitsliced_kernel());
            let plan = TrialPlan::new(mech, 3, 120, 0.5);
            let scalar = run_campaign(&EngineConfig::serial(11), &plan, 70).unwrap();
            for threads in [1usize, 4] {
                let cfg = EngineConfig::seeded(11)
                    .with_threads(threads)
                    .with_kernel(KernelKind::Bitsliced);
                let bitsliced = run_campaign(&cfg, &plan, 70).unwrap();
                assert_eq!(
                    scalar,
                    bitsliced,
                    "mechanism {} threads {threads}",
                    mech.name()
                );
            }
        }
    }

    #[test]
    fn bitsliced_kernel_rejects_unsupported_requests() {
        let cfg = EngineConfig::serial(5).with_kernel(KernelKind::Bitsliced);
        for mech in [
            Mechanism::StopWait,
            Mechanism::AdaptiveSlotted,
            Mechanism::Wide,
        ] {
            assert!(!mech.has_bitsliced_kernel());
            let plan = TrialPlan::new(mech, 3, 100, 0.5);
            let err = run_campaign(&cfg, &plan, 4).unwrap_err();
            assert!(
                err.to_string().contains("no bitsliced kernel"),
                "{err} ({})",
                mech.name()
            );
        }
        // Trace capture needs per-tick events, which lanes don't record.
        let plan = TrialPlan::new(Mechanism::Counter, 3, 100, 0.5);
        assert!(run_campaign_traced(&cfg, &plan, 4).is_err());
        // The kernel is reported observationally in the manifest.
        let (_, manifest) = run_campaign_manifest(&cfg, &plan, 4).unwrap();
        assert_eq!(
            manifest
                .execution
                .expect("campaigns report execution")
                .kernel,
            KernelKind::Bitsliced
        );
    }

    #[test]
    fn counter_error_matches_alpha_stale_model() {
        let cfg = EngineConfig::serial(5);
        let counter =
            run_campaign(&cfg, &TrialPlan::new(Mechanism::Counter, 4, 400, 0.5), 16).unwrap();
        // The receiver's aligned stream substitutes stale fills at
        // the predicted rate α(N)·(1 − q) (≈ 0.469 at N = 4,
        // q = 1/2) — see `sim::analysis::counter_error_rate`.
        let predicted = crate::sim::analysis::counter_error_rate(4, 0.5).unwrap();
        assert!(
            (counter.error_rate.mean - predicted).abs() < 0.05,
            "{:?} vs predicted {predicted}",
            counter.error_rate
        );
        // Perfect feedback: the sender never overwrites unread data.
        assert_eq!(counter.p_d.mean, 0.0);
        assert!(counter.rate.mean > 0.0);
        // And the error-free mechanisms report exactly zero error.
        let sw = run_campaign(&cfg, &TrialPlan::new(Mechanism::StopWait, 4, 400, 0.5), 8).unwrap();
        assert_eq!(sw.error_rate.mean, 0.0);
    }

    #[test]
    fn campaign_validation() {
        let cfg = EngineConfig::serial(1);
        let plan = TrialPlan::new(Mechanism::Counter, 4, 100, 0.5);
        assert!(run_campaign(&cfg, &plan, 0).is_err());
        let bad_prob = TrialPlan {
            sender_prob: 1.5,
            ..plan
        };
        assert!(run_campaign(&cfg, &bad_prob, 4).is_err());
        let bad_slot = TrialPlan::new(Mechanism::Slotted { slot_len: 0 }, 4, 100, 0.5);
        assert!(run_campaign(&cfg, &bad_slot, 4).is_err());
        let empty = TrialPlan {
            message_len: 0,
            ..plan
        };
        assert!(run_campaign(&cfg, &empty, 4).is_err());
    }

    #[test]
    fn ci_width_shrinks_with_trials() {
        use super::super::accum::t95;
        let plan = TrialPlan::new(Mechanism::Unsynchronized, 2, 150, 0.4);
        let small = run_campaign(&EngineConfig::serial(3), &plan, 8).unwrap();
        let large = run_campaign(&EngineConfig::serial(3), &plan, 64).unwrap();
        let hw = |s: &StatSummary| (s.ci95_hi - s.ci95_lo) / 2.0;
        assert!(hw(&large.rate) < hw(&small.rate));
        assert_eq!(large.trials, 64);
        // The half-widths are Student-t, not normal: t_{0.975, n−1}
        // standard errors, which at n = 8 is 2.365 of them, not 1.96.
        let rel = |s: &StatSummary, df: u64| (hw(s) - t95(df) * s.std_error).abs();
        assert!(rel(&small.rate, 7) < 1e-12, "{:?}", small.rate);
        assert!(rel(&large.rate, 63) < 1e-12, "{:?}", large.rate);
    }

    #[test]
    fn manifest_records_reproducibility_fields() {
        let plan = TrialPlan::new(Mechanism::Slotted { slot_len: 4 }, 2, 100, 0.5);
        let cfg = EngineConfig::seeded(17).with_threads(2);
        let (summary, manifest) = run_campaign_manifest(&cfg, &plan, 10).unwrap();
        assert_eq!(summary, run_campaign(&cfg, &plan, 10).unwrap());
        assert_eq!(manifest.master_seed, 17);
        assert_eq!(manifest.batch_size, cfg.batch_size);
        assert_eq!(manifest.trials, Some(10));
        assert_eq!(manifest.engine_version, super::super::ENGINE_VERSION);
        assert!(
            manifest.plan.contains("slotted(slot_len=4)"),
            "{}",
            manifest.plan
        );
        let exec = manifest
            .execution
            .as_ref()
            .expect("campaigns report execution");
        assert_eq!(exec.threads_requested, 2);
        assert_eq!(exec.batches.iter().map(|b| b.trials).sum::<usize>(), 10);
        // The deterministic payload strips the execution record.
        assert!(manifest.deterministic().execution.is_none());
        // And it is identical across thread counts.
        let (_, serial) = run_campaign_manifest(&EngineConfig::serial(17), &plan, 10).unwrap();
        assert_eq!(manifest.deterministic(), serial.deterministic());
    }
}
