//! Deterministic parallel Monte-Carlo trial engine.
//!
//! Every empirical number in this reproduction comes from repeated
//! randomized simulation. This module makes those campaigns scale
//! with cores **without sacrificing reproducibility**:
//!
//! * [`seed`] derives each trial's RNG seed from the master seed via
//!   SplitMix64 — a pure function of `(master_seed, trial_index)`.
//! * [`rng`] supplies [`TrialRng`], the fast counter-seeded
//!   xoshiro256\*\* generator behind the engine's allocation-free
//!   hot path (the original [`rand::rngs::StdRng`] entry points
//!   remain available).
//! * [`runner`] fans trials across a [`std::thread::scope`] worker
//!   pool in fixed-size batches and reassembles results in batch
//!   order, so scheduling can never reorder a floating-point
//!   operation.
//! * [`accum`] aggregates outcomes through the mergeable
//!   [`TrialAccumulator`] trait (mean / variance / CI via a Welford
//!   merge).
//! * [`campaign`] routes the §3 protocol simulators through the
//!   engine as ready-made multi-trial campaigns.
//! * `model` (compiled under `--features loom` / `--cfg loom`)
//!   model-checks the worker pool's one-writer-per-slot protocol
//!   across every thread interleaving.
//!
//! # Determinism contract
//!
//! For a fixed `(master_seed, batch_size)` and a fixed trial count,
//! the engine's output — including every aggregated `f64`, bit for
//! bit — is identical at any thread count, on any machine with the
//! same target floating-point semantics. `--threads` is purely a
//! wall-clock knob. Changing `batch_size` may regroup Welford merges
//! and perturb aggregates in the last ulp, which is why it is part
//! of the contract's fixed inputs and defaults to a constant.
//!
//! # Picking a trial count
//!
//! The 95% CI half-width on a mean shrinks as `z·σ/√n`: to halve the
//! interval, quadruple the trials. Campaign summaries report the
//! standard error, so `n_target ≈ n · (hw / hw_target)²` gives the
//! trial count needed for a target half-width `hw_target`.
//!
//! ```
//! use nsc_core::engine::{EngineConfig, RunningStats};
//! use nsc_core::engine::runner::fold_trials;
//! use rand::Rng;
//!
//! let cfg = EngineConfig::seeded(42); // threads = 0 → all cores
//! let stats: RunningStats = fold_trials(&cfg, 1000, |_, rng| rng.gen::<f64>()).unwrap();
//! let serial: RunningStats =
//!     fold_trials(&EngineConfig::serial(42), 1000, |_, rng| rng.gen::<f64>()).unwrap();
//! assert_eq!(stats.mean().to_bits(), serial.mean().to_bits());
//! ```

use serde::{Deserialize, Serialize};

pub mod accum;
pub mod campaign;
#[cfg(any(loom, feature = "loom"))]
pub mod model;
pub mod rng;
pub mod runner;
pub mod seed;

pub use accum::{RunningStats, StatSummary, TrialAccumulator};
pub use campaign::{
    run_campaign, run_campaign_manifest, run_campaign_traced, CampaignSummary, Mechanism,
    TrialPlan, TrialTrace,
};
pub use rng::TrialRng;
pub use runner::{
    fold_trials, fold_trials_scoped_timed, fold_trials_timed, fold_trials_timed_with,
    fold_trials_with, par_map, run_trials, run_trials_scoped_timed, run_trials_with,
};
pub use seed::trial_seed;

/// Version of the engine crate, embedded in every [`RunManifest`] so
/// archived output names the code that produced it.
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Default trials-per-batch. Part of the determinism contract: the
/// batch boundaries (and hence the Welford merge grouping) derive
/// from this, so it is a fixed constant rather than a function of
/// the machine.
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Which trial-execution kernel a campaign runs on.
///
/// The kernel is an *execution strategy*, not a model parameter:
/// both kernels must produce bit-identical per-trial statistics for
/// the same `(plan, master_seed, batch_size)`, so it lives next to
/// `threads` in the config and is reported only in the observational
/// [`ExecutionReport`], never in determinism-checked payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelKind {
    /// One trial at a time through the [`crate::sim`] state machines —
    /// the reference oracle every other kernel is checked against.
    #[default]
    Scalar,
    /// 64 trials per `u64` lane through
    /// [`crate::sim::bitsliced`] — same statistics, ~3–13× the
    /// throughput on the converted mechanisms.
    Bitsliced,
}

impl KernelKind {
    /// Stable machine-readable name, used by the CLI and in JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Bitsliced => "bitsliced",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the trial engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Master seed; every trial seed is [`trial_seed`]-derived from
    /// it.
    pub master_seed: u64,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Trials per batch (≥ 1; `0` is treated as `1`). Fixed batch
    /// boundaries are what make aggregation order — and therefore
    /// floating-point results — independent of the thread count.
    pub batch_size: usize,
    /// Execution kernel ([`KernelKind::Scalar`] unless asked
    /// otherwise). Like `threads`, a wall-clock knob: campaigns
    /// produce bit-identical statistics on every kernel.
    #[serde(default)]
    pub kernel: KernelKind,
}

impl EngineConfig {
    /// An auto-threaded config with the default batch size.
    #[must_use]
    pub fn seeded(master_seed: u64) -> Self {
        EngineConfig {
            master_seed,
            threads: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            kernel: KernelKind::Scalar,
        }
    }

    /// A single-threaded config with the default batch size —
    /// produces byte-identical results to any multi-threaded config
    /// with the same seed.
    #[must_use]
    pub fn serial(master_seed: u64) -> Self {
        EngineConfig {
            threads: 1,
            ..EngineConfig::seeded(master_seed)
        }
    }

    /// Returns a copy with the given thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        EngineConfig { threads, ..self }
    }

    /// Returns a copy with the given execution kernel.
    #[must_use]
    pub fn with_kernel(self, kernel: KernelKind) -> Self {
        EngineConfig { kernel, ..self }
    }

    /// The number of workers the runner will actually spawn.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Wall-clock timing of one batch of trials.
///
/// Timing is *observational*: it is reported so throughput can be
/// audited, but it is never part of the determinism-checked payload
/// (strip [`RunManifest::execution`] before diffing runs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchTiming {
    /// Batch index (ascending, matching the merge order).
    pub batch: usize,
    /// Trials the batch contained.
    pub trials: usize,
    /// Wall-clock seconds the batch took on its worker.
    pub wall_secs: f64,
}

/// How a run actually executed: thread counts and wall-clock timing.
///
/// Everything in here may legitimately differ between two runs that
/// produce bit-identical statistics — which is exactly why it lives
/// in its own struct, serialized under the `execution` key, that
/// determinism checks delete before comparing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// The configured thread count (`0` = auto).
    pub threads_requested: usize,
    /// Workers actually available ([`EngineConfig::effective_threads`]).
    pub effective_threads: usize,
    /// Execution kernel the run used. Observational like everything
    /// else here: both kernels yield bit-identical statistics, so the
    /// kernel may differ between runs that compare equal.
    #[serde(default)]
    pub kernel: KernelKind,
    /// Total wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Aggregate throughput, trials per wall-clock second (0 when the
    /// clock resolution swallowed the run).
    pub trials_per_sec: f64,
    /// Per-batch wall-clock as measured on the worker that ran it.
    pub batches: Vec<BatchTiming>,
}

impl ExecutionReport {
    /// Assembles a report from the runner's raw measurements.
    #[must_use]
    pub fn collect(
        config: &EngineConfig,
        trials: usize,
        wall_secs: f64,
        batches: Vec<BatchTiming>,
    ) -> Self {
        ExecutionReport {
            threads_requested: config.threads,
            effective_threads: config.effective_threads(),
            kernel: config.kernel,
            wall_secs,
            trials_per_sec: if wall_secs > 0.0 {
                trials as f64 / wall_secs
            } else {
                0.0
            },
            batches,
        }
    }
}

/// A self-describing record of one engine run: everything needed to
/// reproduce its numbers, plus how it actually executed.
///
/// The reproducibility fields (`engine_version`, `plan`,
/// `master_seed`, `batch_size`, `trials`) are a pure function of the
/// run's inputs and are covered by the determinism contract. The
/// [`execution`](RunManifest::execution) section (thread counts,
/// wall-clock, throughput) is reported when available but excluded
/// from determinism-checked payloads; it serializes only when
/// present, so documents that must be byte-identical across thread
/// counts (e.g. the experiments JSON) simply omit it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// `nsc-core` crate version that produced the run.
    pub engine_version: String,
    /// Stable one-line descriptor of what was run (mechanism and
    /// parameters for campaigns, grid and widths for sweeps).
    pub plan: String,
    /// Master seed every per-trial seed derives from.
    pub master_seed: u64,
    /// Trials per batch (fixes the Welford merge grouping).
    pub batch_size: usize,
    /// Trials (or grid evaluations) aggregated; `None` when the
    /// document spans heterogeneous runs.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trials: Option<usize>,
    /// Observational execution record; `None` in determinism-diffed
    /// documents.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub execution: Option<ExecutionReport>,
}

impl RunManifest {
    /// The deterministic part of a manifest: a pure function of the
    /// run's inputs.
    #[must_use]
    pub fn new(config: &EngineConfig, plan: impl Into<String>, trials: Option<usize>) -> Self {
        RunManifest {
            engine_version: ENGINE_VERSION.to_owned(),
            plan: plan.into(),
            master_seed: config.master_seed,
            batch_size: config.batch_size.max(1),
            trials,
            execution: None,
        }
    }

    /// Attaches the observational execution record.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionReport) -> Self {
        self.execution = Some(execution);
        self
    }

    /// A copy with the execution record stripped — the payload that
    /// determinism checks compare.
    #[must_use]
    pub fn deterministic(&self) -> Self {
        RunManifest {
            execution: None,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let c = EngineConfig::seeded(9);
        assert_eq!(c.master_seed, 9);
        assert_eq!(c.threads, 0);
        assert_eq!(c.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(c.kernel, KernelKind::Scalar);
        assert!(c.effective_threads() >= 1);
        let s = EngineConfig::serial(9);
        assert_eq!(s.threads, 1);
        assert_eq!(s.effective_threads(), 1);
        assert_eq!(s.with_threads(5).effective_threads(), 5);
        let b = s.with_kernel(KernelKind::Bitsliced);
        assert_eq!(b.kernel, KernelKind::Bitsliced);
        assert_eq!(b.threads, 1);
    }

    #[test]
    fn kernel_kind_serde_names_are_lowercase() {
        assert_eq!(
            serde_json::to_string(&KernelKind::Bitsliced).unwrap(),
            "\"bitsliced\""
        );
        assert_eq!(
            serde_json::to_string(&KernelKind::Scalar).unwrap(),
            "\"scalar\""
        );
        // Configs serialized before the kernel field existed still
        // deserialize (defaulting to the scalar oracle).
        let legacy: EngineConfig =
            serde_json::from_str(r#"{"master_seed":1,"threads":2,"batch_size":8}"#).unwrap();
        assert_eq!(legacy.kernel, KernelKind::Scalar);
        assert_eq!(KernelKind::Bitsliced.to_string(), "bitsliced");
    }
}
