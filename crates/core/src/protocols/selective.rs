//! Selective-repeat ablation: batching does not beat Theorem 3.
//!
//! The resend protocol acknowledges one symbol at a time. A natural
//! "optimization" sends a whole window, learns from feedback which
//! symbols were deleted, and retransmits only those. This module
//! implements that variant to *demonstrate a negative result*: the
//! goodput per channel use is still `N·(1 − p_d)` — exactly Theorem
//! 3's capacity — because feedback cannot raise the capacity of a
//! memoryless channel (Theorem 2). What batching buys is fewer
//! feedback round trips, not rate.

use crate::error::CoreError;
use nsc_channel::alphabet::Symbol;
use nsc_channel::di::{DeletionInsertionChannel, UseOutcome};
use nsc_info::BitsPerSymbol;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Measurements from a selective-repeat run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectiveOutcome {
    /// Symbols delivered (always the full message, in order, on a
    /// deletion-only channel).
    pub received: Vec<Symbol>,
    /// Total channel uses consumed.
    pub channel_uses: usize,
    /// Feedback round trips (one per window pass).
    pub round_trips: usize,
}

impl SelectiveOutcome {
    /// Measured goodput in bits per channel use.
    pub fn goodput(&self, bits: u32) -> BitsPerSymbol {
        if self.channel_uses == 0 {
            return BitsPerSymbol(0.0);
        }
        BitsPerSymbol(bits as f64 * self.received.len() as f64 / self.channel_uses as f64)
    }
}

/// Runs selective repeat with the given `window` size over a pure
/// deletion channel with perfect (per-window) feedback.
///
/// # Errors
///
/// Same conditions as [`crate::protocols::resend::run_resend`], plus
/// [`CoreError::BadSimulation`] when `window` is zero.
pub fn run_selective_repeat<R: Rng + ?Sized>(
    channel: &DeletionInsertionChannel,
    message: &[Symbol],
    window: usize,
    rng: &mut R,
) -> Result<SelectiveOutcome, CoreError> {
    if channel.params().p_i() > 0.0 || channel.params().p_s() > 0.0 {
        return Err(CoreError::UnsupportedChannel(
            "selective repeat requires a noiseless pure deletion channel".to_owned(),
        ));
    }
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if window == 0 {
        return Err(CoreError::BadSimulation("window is zero".to_owned()));
    }
    let mut out = SelectiveOutcome {
        received: Vec::with_capacity(message.len()),
        channel_uses: 0,
        round_trips: 0,
    };
    let mut delivered: Vec<Option<Symbol>> = vec![None; message.len()];
    for (base, block) in message.chunks(window).enumerate() {
        let offset = base * window;
        // Positions of this window still missing.
        let mut missing: Vec<usize> = (0..block.len()).collect();
        while !missing.is_empty() {
            out.round_trips += 1;
            let mut still_missing = Vec::new();
            for &i in &missing {
                out.channel_uses += 1;
                match channel.use_once(Some(block[i]), rng) {
                    UseOutcome::Transmitted { received, .. } => {
                        delivered[offset + i] = Some(received);
                    }
                    UseOutcome::Deleted => still_missing.push(i),
                    UseOutcome::Inserted(_) | UseOutcome::Idle => {
                        unreachable!("pure deletion channel with a queued symbol")
                    }
                }
            }
            missing = still_missing;
        }
    }
    out.received = delivered
        .into_iter()
        .map(|s| s.expect("all delivered"))
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::resend::run_resend;
    use nsc_channel::alphabet::Alphabet;
    use nsc_channel::di::DiParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn channel(p_d: f64) -> DeletionInsertionChannel {
        DeletionInsertionChannel::new(
            Alphabet::new(2).unwrap(),
            DiParams::deletion_only(p_d).unwrap(),
        )
    }

    fn msg(n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_selective_repeat(&channel(0.1), &[], 8, &mut rng).is_err());
        assert!(run_selective_repeat(&channel(0.1), &msg(10, 0), 0, &mut rng).is_err());
        let bad = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.0, 0.5, 0.0).unwrap(),
        );
        assert!(run_selective_repeat(&bad, &msg(10, 0), 8, &mut rng).is_err());
    }

    #[test]
    fn delivers_exactly() {
        let m = msg(999, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_selective_repeat(&channel(0.3), &m, 32, &mut rng).unwrap();
        assert_eq!(out.received, m);
    }

    #[test]
    fn goodput_matches_theorem_3_like_resend() {
        let p_d = 0.35;
        let m = msg(40_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let sel = run_selective_repeat(&channel(p_d), &m, 64, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(5);
        let res = run_resend(&channel(p_d), &m, &mut rng2).unwrap();
        let theory = 2.0 * (1.0 - p_d);
        assert!((sel.goodput(2).value() - theory).abs() / theory < 0.02);
        assert!((res.goodput(2).value() - theory).abs() / theory < 0.02);
    }

    #[test]
    fn batching_saves_round_trips_not_rate() {
        let p_d = 0.3;
        let m = msg(10_000, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let wide = run_selective_repeat(&channel(p_d), &m, 256, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let narrow = run_selective_repeat(&channel(p_d), &m, 1, &mut rng).unwrap();
        assert!(wide.round_trips < narrow.round_trips / 10);
        let g_wide = wide.goodput(2).value();
        let g_narrow = narrow.goodput(2).value();
        assert!((g_wide - g_narrow).abs() / g_narrow < 0.03);
    }

    #[test]
    fn window_of_one_equals_resend_semantics() {
        let m = msg(500, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let out = run_selective_repeat(&channel(0.0), &m, 1, &mut rng).unwrap();
        assert_eq!(out.channel_uses, m.len());
        assert_eq!(out.round_trips, m.len());
    }
}
