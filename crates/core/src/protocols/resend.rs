//! Theorem 3's resend protocol: deletion channel + perfect feedback.
//!
//! > *"Let the receiver notify the sender via the feedback path once
//! > it receives a symbol. The sender will keep resending the symbol
//! > until it knows that the symbol has been received. Therefore no
//! > drop-outs will occur. While the probability of deletion is
//! > `p_d`, a symbol gets through with probability `1 − p_d`,
//! > therefore the effective information rate is `N·(1 − p_d)`."*
//!
//! Each message symbol costs a geometric number of channel uses with
//! mean `1/(1 − p_d)`, so the measured goodput converges to
//! `N·(1 − p_d)` bits per use — making Theorem 2's upper bound tight.

use crate::error::CoreError;
use nsc_channel::alphabet::Symbol;
use nsc_channel::di::{DeletionInsertionChannel, UseOutcome};
use nsc_info::BitsPerSymbol;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Measurements from a resend-protocol run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResendOutcome {
    /// Symbols the receiver accepted, in order (always equals the
    /// message on a deletion-only channel).
    pub received: Vec<Symbol>,
    /// Total channel uses consumed.
    pub channel_uses: usize,
    /// Retransmissions (uses beyond the first per symbol).
    pub retransmissions: usize,
}

impl ResendOutcome {
    /// Measured goodput in bits per channel use:
    /// `N · delivered / uses`.
    pub fn goodput(&self, bits: u32) -> BitsPerSymbol {
        if self.channel_uses == 0 {
            return BitsPerSymbol(0.0);
        }
        BitsPerSymbol(bits as f64 * self.received.len() as f64 / self.channel_uses as f64)
    }
}

/// Runs the Theorem 3 resend protocol: for each message symbol, use
/// the channel until the receiver acknowledges reception over the
/// perfect feedback path.
///
/// # Errors
///
/// * [`CoreError::UnsupportedChannel`] — the channel has insertions
///   (`p_i > 0`) or substitution noise (`p_s > 0`); Theorem 3 is
///   stated for the noiseless pure-deletion channel, and with
///   insertions this protocol would mistake inserted symbols for
///   acknowledgeable receptions (use the counter protocol instead).
/// * [`CoreError::BadSimulation`] — empty message.
pub fn run_resend<R: Rng + ?Sized>(
    channel: &DeletionInsertionChannel,
    message: &[Symbol],
    rng: &mut R,
) -> Result<ResendOutcome, CoreError> {
    if channel.params().p_i() > 0.0 {
        return Err(CoreError::UnsupportedChannel(
            "resend protocol requires a pure deletion channel (p_i = 0)".to_owned(),
        ));
    }
    if channel.params().p_s() > 0.0 {
        return Err(CoreError::UnsupportedChannel(
            "resend protocol assumes a noiseless data channel (p_s = 0)".to_owned(),
        ));
    }
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    let mut out = ResendOutcome {
        received: Vec::with_capacity(message.len()),
        channel_uses: 0,
        retransmissions: 0,
    };
    for &sym in message {
        let mut first = true;
        loop {
            out.channel_uses += 1;
            if !first {
                out.retransmissions += 1;
            }
            first = false;
            match channel.use_once(Some(sym), rng) {
                UseOutcome::Transmitted { received, .. } => {
                    // Receiver acks over the perfect feedback path.
                    out.received.push(received);
                    break;
                }
                UseOutcome::Deleted => {
                    // No ack arrives; resend.
                }
                UseOutcome::Inserted(_) | UseOutcome::Idle => {
                    unreachable!("pure deletion channel with a queued symbol")
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_channel::alphabet::Alphabet;
    use nsc_channel::di::DiParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    fn deletion_channel(bits: u32, p_d: f64) -> DeletionInsertionChannel {
        DeletionInsertionChannel::new(
            Alphabet::new(bits).unwrap(),
            DiParams::deletion_only(p_d).unwrap(),
        )
    }

    #[test]
    fn rejects_unsupported_channels() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.1, 0.1, 0.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            run_resend(&ch, &msg(1, 10, 0), &mut rng),
            Err(CoreError::UnsupportedChannel(_))
        ));
        let noisy = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.1, 0.0, 0.5).unwrap(),
        );
        assert!(run_resend(&noisy, &msg(1, 10, 0), &mut rng).is_err());
        assert!(run_resend(&deletion_channel(1, 0.1), &[], &mut rng).is_err());
    }

    #[test]
    fn delivery_is_always_exact() {
        let ch = deletion_channel(3, 0.4);
        let m = msg(3, 2000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_resend(&ch, &m, &mut rng).unwrap();
        assert_eq!(out.received, m);
    }

    #[test]
    fn noiseless_channel_needs_no_retransmissions() {
        let ch = deletion_channel(2, 0.0);
        let m = msg(2, 100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_resend(&ch, &m, &mut rng).unwrap();
        assert_eq!(out.retransmissions, 0);
        assert_eq!(out.channel_uses, 100);
        assert_eq!(out.goodput(2).value(), 2.0);
    }

    #[test]
    fn goodput_converges_to_theorem_3_capacity() {
        // Theorem 3: goodput -> N(1 - p_d).
        for &p_d in &[0.1, 0.3, 0.5] {
            let bits = 4u32;
            let ch = deletion_channel(bits, p_d);
            let m = msg(bits, 50_000, 5);
            let mut rng = StdRng::seed_from_u64(6);
            let out = run_resend(&ch, &m, &mut rng).unwrap();
            let theory = crate::bounds::feedback_deletion_capacity(bits, p_d)
                .unwrap()
                .value();
            let measured = out.goodput(bits).value();
            assert!(
                (measured - theory).abs() / theory < 0.02,
                "p_d={p_d}: measured {measured}, theory {theory}"
            );
        }
    }

    #[test]
    fn goodput_never_exceeds_upper_bound() {
        // Theorem 2: the erasure capacity upper-bounds every run.
        for seed in 0..10u64 {
            let bits = 2u32;
            let p_d = 0.3;
            let ch = deletion_channel(bits, p_d);
            let m = msg(bits, 5_000, seed);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let out = run_resend(&ch, &m, &mut rng).unwrap();
            // Finite-sample fluctuation allowance of 5%.
            let bound = crate::bounds::erasure_upper_bound(bits, p_d)
                .unwrap()
                .value();
            assert!(out.goodput(bits).value() < bound * 1.05);
        }
    }

    #[test]
    fn uses_are_geometric_with_mean_one_over_1_minus_pd() {
        let p_d = 0.25;
        let ch = deletion_channel(1, p_d);
        let m = msg(1, 40_000, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = run_resend(&ch, &m, &mut rng).unwrap();
        let mean_uses = out.channel_uses as f64 / m.len() as f64;
        assert!((mean_uses - 1.0 / (1.0 - p_d)).abs() < 0.02);
    }
}
