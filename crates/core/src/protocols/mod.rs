//! Synchronization protocols over the *abstract* deletion-insertion
//! channel of Definition 1.
//!
//! The runners in [`crate::sim`] realize the paper's protocols
//! mechanistically (shared variable + scheduler). The protocols here
//! instead drive [`nsc_channel::DeletionInsertionChannel`]'s per-use
//! API directly, which is the setting in which Theorems 2–5 are
//! stated:
//!
//! * [`resend`] — Theorem 3's resend protocol over a pure deletion
//!   channel with perfect feedback, achieving the erasure capacity
//!   `N·(1 − p_d)` exactly.
//! * [`selective`] — selective repeat over a block: a
//!   higher-throughput engineering variant used for ablation, showing
//!   that the *capacity* (Theorem 3) does not improve even though
//!   latency does.

pub mod resend;
pub mod selective;
