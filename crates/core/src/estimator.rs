//! The end-to-end estimation pipeline of §4.3:
//! traditional capacity → measured `P_d` → corrected capacity →
//! severity.
//!
//! This is the API a security auditor actually calls: feed it a
//! traditional (synchronous-model) capacity estimate for the covert
//! channel plus a measurement of the system's non-synchronous
//! behaviour (an unsynchronized run, an event log, or raw counts),
//! and get back the corrected capacity with confidence intervals and
//! a severity classification.

use crate::bounds::theorem5_lower_bound;
use crate::degradation::{DegradationReport, Severity, SeverityPolicy};
use crate::error::CoreError;
use crate::sim::unsync::UnsyncOutcome;
use nsc_channel::event::EventLog;
use nsc_info::stats::{wilson_interval, ProportionInterval};
use nsc_info::{BitsPerSymbol, BitsPerTick};
use serde::{Deserialize, Serialize};

/// A complete covert-channel assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// The traditional-vs-corrected capacity report.
    pub report: DegradationReport,
    /// Severity under the supplied policy.
    pub severity: Severity,
    /// Number of observations behind the `P_d` estimate.
    pub observations: u64,
    /// Measured insertion probability (per channel use), present when
    /// the measurement path carries insertion evidence; `None` for
    /// raw deletion-count assessments.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p_i: Option<ProportionInterval>,
    /// Theorem 5's constructive lower bound at the measured point
    /// estimates; `None` when no insertion evidence is available or
    /// the estimates fall outside the theorem's domain (`p_i < 1`,
    /// `p_d + p_i ≤ 1`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub theorem5: Option<Theorem5Assessment>,
}

/// The Theorem 5 view of an assessment: the rate the counter protocol
/// still guarantees an attacker at the measured `(P_d, P_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Theorem5Assessment {
    /// `C_lower = (1 − P_d)/(1 − P_i) · C_conv`, bits per symbol slot.
    pub lower_bound: BitsPerSymbol,
    /// `lower_bound / N`: the fraction of the synchronous capacity
    /// guaranteed achievable (the paper's relative normalization).
    pub relative: f64,
    /// `traditional × relative`: the physical rate the attacker can
    /// constructively reach despite non-synchrony.
    pub corrected: BitsPerTick,
}

/// Builds an assessment from raw deletion counts: `deletions` symbol
/// losses observed over `attempts` symbol-transfer attempts.
///
/// # Errors
///
/// Returns [`CoreError::Numeric`] when `attempts` is zero or counts
/// are inconsistent, and [`CoreError::BadProbability`] when the
/// traditional capacity is invalid.
///
/// # Example
///
/// ```
/// use nsc_core::estimator::assess_from_counts;
/// use nsc_core::degradation::{Severity, SeverityPolicy};
/// use nsc_info::BitsPerTick;
///
/// let a = assess_from_counts(
///     BitsPerTick(50.0), 300, 1000, &SeverityPolicy::default())?;
/// assert!((a.report.corrected.value() - 35.0).abs() < 1e-9);
/// assert_eq!(a.severity, Severity::Concerning);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn assess_from_counts(
    traditional: BitsPerTick,
    deletions: u64,
    attempts: u64,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    let p_d = wilson_interval(deletions, attempts, nsc_channel::stats::DEFAULT_Z)?;
    let report = DegradationReport::new(traditional, p_d)?;
    let severity = policy.classify(report.corrected);
    Ok(Assessment {
        report,
        severity,
        observations: attempts,
        p_i: None,
        theorem5: None,
    })
}

/// Builds an assessment from an unsynchronized mechanistic run
/// ([`crate::sim::unsync::run_unsynchronized`]): the run's
/// overwrite rate is the measured `P_d`.
///
/// # Errors
///
/// Same conditions as [`assess_from_counts`]; additionally fails when
/// the run performed no writes.
pub fn assess_from_unsync(
    traditional: BitsPerTick,
    outcome: &UnsyncOutcome,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    assess_from_counts(
        traditional,
        outcome.deleted_writes as u64,
        outcome.writes as u64,
        policy,
    )
}

/// Builds an assessment from a ground-truth channel event log
/// (`P_d` = deletions per channel use, `P_i` = insertions per channel
/// use — Definition 1's accounting), for a channel over `bits`-wide
/// symbols.
///
/// Beyond the §4.3 deletion-only correction, the assessment reports
/// the measured `P_i` interval and — when the point estimates lie in
/// Theorem 5's domain — the constructive lower bound
/// `(1 − P_d)/(1 − P_i) · C_conv` and the physical rate it implies.
///
/// # Errors
///
/// Same conditions as [`assess_from_counts`]; additionally fails on
/// an empty log.
pub fn assess_from_event_log(
    traditional: BitsPerTick,
    bits: u32,
    log: &EventLog,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    let mut assessment = assess_from_counts(
        traditional,
        log.deletions() as u64,
        log.uses() as u64,
        policy,
    )?;
    let p_i = wilson_interval(
        log.insertions() as u64,
        log.uses() as u64,
        nsc_channel::stats::DEFAULT_Z,
    )?;
    assessment.theorem5 = theorem5_lower_bound(bits, assessment.report.p_d.estimate, p_i.estimate)
        .ok()
        .map(|lower_bound| {
            let relative = if bits == 0 {
                0.0
            } else {
                lower_bound.value() / bits as f64
            };
            Theorem5Assessment {
                lower_bound,
                relative,
                corrected: traditional * relative,
            }
        });
    assessment.p_i = Some(p_i);
    Ok(assessment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{unsync::run_unsynchronized, BernoulliSchedule};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_pipeline() {
        let a =
            assess_from_counts(BitsPerTick(10.0), 500, 1000, &SeverityPolicy::default()).unwrap();
        assert!((a.report.corrected.value() - 5.0).abs() < 1e-9);
        assert!(a.report.p_d.contains(0.5));
        assert_eq!(a.observations, 1000);
        assert!(assess_from_counts(BitsPerTick(10.0), 5, 0, &SeverityPolicy::default()).is_err());
    }

    #[test]
    fn unsync_pipeline_measures_scheduler_effect() {
        let msg: Vec<Symbol> = (0..20_000).map(|i| Symbol::from_index(i % 2)).collect();
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(3)).unwrap();
        let run = run_unsynchronized(&msg, &mut sched, usize::MAX).unwrap();
        let a = assess_from_unsync(BitsPerTick(100.0), &run, &SeverityPolicy::default()).unwrap();
        // Fair scheduling deletes half the writes: corrected ~ 50.
        assert!((a.report.corrected.value() - 50.0).abs() < 3.0);
        assert_eq!(a.severity, Severity::Concerning);
    }

    #[test]
    fn event_log_pipeline() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.2).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let input = vec![Symbol::from_index(1); 50_000];
        let out = ch.transmit(&input, &mut rng);
        let a = assess_from_event_log(BitsPerTick(1.0), 1, &out.events, &SeverityPolicy::default())
            .unwrap();
        assert!(a.report.p_d.contains(0.2));
        assert!((a.report.corrected.value() - 0.8).abs() < 0.02);
        // Deletion-only channel: P_i measured as ~0, so Theorem 5's
        // constructive rate matches the deletion-only correction.
        let p_i = a.p_i.expect("event logs carry insertion evidence");
        assert!(p_i.estimate < 0.01, "p_i = {}", p_i.estimate);
        let t5 = a.theorem5.expect("estimates inside Theorem 5's domain");
        assert!((t5.relative - 0.8).abs() < 0.02);
        assert!((t5.corrected.value() - a.report.corrected.value()).abs() < 0.02);
    }

    #[test]
    fn event_log_with_insertions_reports_theorem5() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(3).unwrap(),
            DiParams::new(0.2, 0.2, 0.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let input = vec![Symbol::from_index(5); 50_000];
        let out = ch.transmit(&input, &mut rng);
        let a = assess_from_event_log(BitsPerTick(8.0), 3, &out.events, &SeverityPolicy::default())
            .unwrap();
        let p_i = a.p_i.expect("insertions measured");
        assert!(p_i.contains(0.2), "p_i interval {p_i:?}");
        let t5 = a.theorem5.expect("inside Theorem 5's domain");
        // The constructive rate is positive but below the
        // deletion-only correction (insertions cost extra capacity).
        assert!(t5.corrected.value() > 0.0);
        assert!(t5.corrected.value() < a.report.corrected.value());
        assert!(t5.relative > 0.0 && t5.relative < 1.0);
        // Raw-count assessments carry no insertion evidence.
        let raw =
            assess_from_counts(BitsPerTick(8.0), 10, 100, &SeverityPolicy::default()).unwrap();
        assert!(raw.p_i.is_none() && raw.theorem5.is_none());
    }

    #[test]
    fn severity_tracks_corrected_rate_not_traditional() {
        // A "critical" traditional estimate can be negligible after
        // correction when nearly everything is deleted.
        let policy = SeverityPolicy::default();
        let a = assess_from_counts(BitsPerTick(200.0), 9_999, 10_000, &policy).unwrap();
        assert_eq!(a.severity, Severity::Negligible);
        let b = assess_from_counts(BitsPerTick(200.0), 0, 10_000, &policy).unwrap();
        assert_eq!(b.severity, Severity::Critical);
    }
}
