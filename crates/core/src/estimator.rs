//! The end-to-end estimation pipeline of §4.3:
//! traditional capacity → measured `P_d` → corrected capacity →
//! severity.
//!
//! This is the API a security auditor actually calls: feed it a
//! traditional (synchronous-model) capacity estimate for the covert
//! channel plus a measurement of the system's non-synchronous
//! behaviour (an unsynchronized run, an event log, or raw counts),
//! and get back the corrected capacity with confidence intervals and
//! a severity classification.

use crate::degradation::{DegradationReport, Severity, SeverityPolicy};
use crate::error::CoreError;
use crate::sim::unsync::UnsyncOutcome;
use nsc_channel::event::EventLog;
use nsc_info::stats::wilson_interval;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// A complete covert-channel assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// The traditional-vs-corrected capacity report.
    pub report: DegradationReport,
    /// Severity under the supplied policy.
    pub severity: Severity,
    /// Number of observations behind the `P_d` estimate.
    pub observations: u64,
}

/// Builds an assessment from raw deletion counts: `deletions` symbol
/// losses observed over `attempts` symbol-transfer attempts.
///
/// # Errors
///
/// Returns [`CoreError::Numeric`] when `attempts` is zero or counts
/// are inconsistent, and [`CoreError::BadProbability`] when the
/// traditional capacity is invalid.
///
/// # Example
///
/// ```
/// use nsc_core::estimator::assess_from_counts;
/// use nsc_core::degradation::{Severity, SeverityPolicy};
/// use nsc_info::BitsPerTick;
///
/// let a = assess_from_counts(
///     BitsPerTick(50.0), 300, 1000, &SeverityPolicy::default())?;
/// assert!((a.report.corrected.value() - 35.0).abs() < 1e-9);
/// assert_eq!(a.severity, Severity::Concerning);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn assess_from_counts(
    traditional: BitsPerTick,
    deletions: u64,
    attempts: u64,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    let p_d = wilson_interval(deletions, attempts, nsc_channel::stats::DEFAULT_Z)?;
    let report = DegradationReport::new(traditional, p_d)?;
    let severity = policy.classify(report.corrected);
    Ok(Assessment {
        report,
        severity,
        observations: attempts,
    })
}

/// Builds an assessment from an unsynchronized mechanistic run
/// ([`crate::sim::unsync::run_unsynchronized`]): the run's
/// overwrite rate is the measured `P_d`.
///
/// # Errors
///
/// Same conditions as [`assess_from_counts`]; additionally fails when
/// the run performed no writes.
pub fn assess_from_unsync(
    traditional: BitsPerTick,
    outcome: &UnsyncOutcome,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    assess_from_counts(
        traditional,
        outcome.deleted_writes as u64,
        outcome.writes as u64,
        policy,
    )
}

/// Builds an assessment from a ground-truth channel event log
/// (`P_d` = deletions per channel use, Definition 1's accounting).
///
/// # Errors
///
/// Same conditions as [`assess_from_counts`]; additionally fails on
/// an empty log.
pub fn assess_from_event_log(
    traditional: BitsPerTick,
    log: &EventLog,
    policy: &SeverityPolicy,
) -> Result<Assessment, CoreError> {
    assess_from_counts(
        traditional,
        log.deletions() as u64,
        log.uses() as u64,
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{unsync::run_unsynchronized, BernoulliSchedule};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_pipeline() {
        let a =
            assess_from_counts(BitsPerTick(10.0), 500, 1000, &SeverityPolicy::default()).unwrap();
        assert!((a.report.corrected.value() - 5.0).abs() < 1e-9);
        assert!(a.report.p_d.contains(0.5));
        assert_eq!(a.observations, 1000);
        assert!(assess_from_counts(BitsPerTick(10.0), 5, 0, &SeverityPolicy::default()).is_err());
    }

    #[test]
    fn unsync_pipeline_measures_scheduler_effect() {
        let msg: Vec<Symbol> = (0..20_000).map(|i| Symbol::from_index(i % 2)).collect();
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(3)).unwrap();
        let run = run_unsynchronized(&msg, &mut sched, usize::MAX).unwrap();
        let a = assess_from_unsync(BitsPerTick(100.0), &run, &SeverityPolicy::default()).unwrap();
        // Fair scheduling deletes half the writes: corrected ~ 50.
        assert!((a.report.corrected.value() - 50.0).abs() < 3.0);
        assert_eq!(a.severity, Severity::Concerning);
    }

    #[test]
    fn event_log_pipeline() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.2).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let input = vec![Symbol::from_index(1); 50_000];
        let out = ch.transmit(&input, &mut rng);
        let a = assess_from_event_log(BitsPerTick(1.0), &out.events, &SeverityPolicy::default())
            .unwrap();
        assert!(a.report.p_d.contains(0.2));
        assert!((a.report.corrected.value() - 0.8).abs() < 0.02);
    }

    #[test]
    fn severity_tracks_corrected_rate_not_traditional() {
        // A "critical" traditional estimate can be negligible after
        // correction when nearly everything is deleted.
        let policy = SeverityPolicy::default();
        let a = assess_from_counts(BitsPerTick(200.0), 9_999, 10_000, &policy).unwrap();
        assert_eq!(a.severity, Severity::Negligible);
        let b = assess_from_counts(BitsPerTick(200.0), 0, 10_000, &policy).unwrap();
        assert_eq!(b.severity, Severity::Critical);
    }
}
