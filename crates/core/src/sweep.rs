//! Capacity-surface sweeps over the `(P_d, P_i, N)` parameter space.
//!
//! Auditors rarely need one point: they need the *surface* — how the
//! achievable and upper-bound capacities move as the measured rates
//! or the symbol width change (e.g. to pick the shared-variable width
//! a defender should cap, or to see how far a mitigation must push
//! `P_d`). This module evaluates the Theorem 4/5 bounds over
//! parameter grids and produces serializable report structures.

use crate::bounds::{capacity_bounds, CapacityBounds};
use crate::engine::{par_map, EngineConfig, ExecutionReport, RunManifest};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// An inclusive linear grid over one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// First value.
    pub start: f64,
    /// Last value (inclusive).
    pub end: f64,
    /// Number of points (≥ 1; a single point ignores `end`).
    pub points: usize,
}

impl Grid {
    /// Creates a validated grid.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSimulation`] when `points == 0`, the
    /// endpoints are not finite, or `start > end`.
    pub fn new(start: f64, end: f64, points: usize) -> Result<Self, CoreError> {
        if points == 0 {
            return Err(CoreError::BadSimulation("grid needs points".to_owned()));
        }
        if !start.is_finite() || !end.is_finite() || start > end {
            return Err(CoreError::BadSimulation(format!(
                "bad grid range [{start}, {end}]"
            )));
        }
        Ok(Grid { start, end, points })
    }

    /// A single-point grid.
    pub fn fixed(value: f64) -> Self {
        Grid {
            start: value,
            end: value,
            points: 1,
        }
    }

    /// The grid values.
    pub fn values(&self) -> Vec<f64> {
        if self.points == 1 {
            return vec![self.start];
        }
        (0..self.points)
            .map(|i| self.start + (self.end - self.start) * i as f64 / (self.points - 1) as f64)
            .collect()
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Deletion probability.
    pub p_d: f64,
    /// Insertion probability.
    pub p_i: f64,
    /// Symbol width in bits.
    pub bits: u32,
    /// The bounds at this point.
    pub bounds: CapacityBounds,
}

/// A full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacitySweep {
    /// Evaluated points in row-major `(p_d, p_i)` order per width.
    pub points: Vec<SweepPoint>,
    /// Grid points skipped because `p_d + p_i > 1` (outside the
    /// simplex) — reported so that silent truncation cannot be
    /// mistaken for coverage.
    pub skipped: usize,
}

impl CapacitySweep {
    /// The point with the highest achievable (lower-bound) rate — the
    /// attacker's best operating point on the surveyed surface.
    pub fn best_achievable(&self) -> Option<&SweepPoint> {
        self.points.iter().max_by(|a, b| {
            a.bounds
                .lower
                .value()
                .partial_cmp(&b.bounds.lower.value())
                .expect("rates are finite")
        })
    }

    /// The tightest relative gap between the bounds on the surface.
    pub fn best_tightness(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.bounds.tightness())
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Minimum surveyed `p_d` at which the achievable rate falls
    /// below `target` bits/slot for *every* surveyed `p_i` — the
    /// mitigation strength a defender needs, since the attacker
    /// controls neither `p_i` nor is hurt much by it. `None` when no
    /// surveyed `p_d` guarantees the target.
    pub fn mitigation_threshold(&self, target: f64) -> Option<f64> {
        let mut by_p_d: Vec<f64> = self.points.iter().map(|p| p.p_d).collect();
        by_p_d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        by_p_d.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        by_p_d.into_iter().find(|&p_d| {
            self.points
                .iter()
                .filter(|p| (p.p_d - p_d).abs() < 1e-12)
                .all(|p| p.bounds.lower.value() < target)
        })
    }
}

/// Evaluates the Theorem 4/5 bounds over the cartesian product of the
/// given grids and symbol widths. Points outside the parameter
/// simplex (`p_d + p_i > 1` or `p_i = 1`) are counted in
/// [`CapacitySweep::skipped`].
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when `widths` is empty, and
/// propagates bound-evaluation errors for in-simplex points.
pub fn sweep_bounds(
    p_d_grid: &Grid,
    p_i_grid: &Grid,
    widths: &[u32],
) -> Result<CapacitySweep, CoreError> {
    sweep_bounds_with(&EngineConfig::serial(0), p_d_grid, p_i_grid, widths)
}

/// [`sweep_bounds`] evaluated under the trial engine: grid points
/// are spread over `config.threads` workers while the returned
/// surface — point order, values, and skip count — is identical to
/// the serial sweep (bound evaluation is a pure function, so this
/// holds exactly, not just up to rounding). The seed in `config` is
/// ignored; sweeps are deterministic analytic evaluations.
///
/// # Errors
///
/// Same contract as [`sweep_bounds`].
pub fn sweep_bounds_with(
    config: &EngineConfig,
    p_d_grid: &Grid,
    p_i_grid: &Grid,
    widths: &[u32],
) -> Result<CapacitySweep, CoreError> {
    if widths.is_empty() {
        return Err(CoreError::BadSimulation(
            "need at least one symbol width".to_owned(),
        ));
    }
    // Materialize the cartesian product in row-major order, then let
    // the engine chew the in-simplex points; `par_map` returns
    // results in input order so the surface layout is unchanged.
    let mut combos = Vec::new();
    let mut skipped = 0usize;
    for &bits in widths {
        for &p_d in &p_d_grid.values() {
            for &p_i in &p_i_grid.values() {
                if p_d + p_i > 1.0 || p_i >= 1.0 {
                    skipped += 1;
                    continue;
                }
                combos.push((bits, p_d, p_i));
            }
        }
    }
    let evaluated = par_map(config, &combos, |_, &(bits, p_d, p_i)| {
        capacity_bounds(bits, p_d, p_i).map(|bounds| SweepPoint {
            p_d,
            p_i,
            bits,
            bounds,
        })
    })?;
    let points = evaluated.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(CapacitySweep { points, skipped })
}

/// [`sweep_bounds_with`], additionally returning a [`RunManifest`]
/// describing the run: grid descriptor, master seed (recorded even
/// though analytic sweeps never consume randomness, so re-running
/// from the manifest is always well-defined), batch size, evaluated
/// point count, engine version, and total wall-clock. Sweeps report
/// aggregate timing only — per-point batches would dominate the
/// document for fine grids.
///
/// # Errors
///
/// Same contract as [`sweep_bounds`].
pub fn sweep_bounds_manifest(
    config: &EngineConfig,
    p_d_grid: &Grid,
    p_i_grid: &Grid,
    widths: &[u32],
) -> Result<(CapacitySweep, RunManifest), CoreError> {
    // nsc-lint: allow(wall-clock, reason = "sweep wall-clock feeds manifest.execution, which determinism diffs strip")
    let started = Instant::now();
    let sweep = sweep_bounds_with(config, p_d_grid, p_i_grid, widths)?;
    let evaluated = sweep.points.len();
    let plan = format!(
        "sweep(widths={widths:?}, p_d=[{}..{}; {}], p_i=[{}..{}; {}])",
        p_d_grid.start,
        p_d_grid.end,
        p_d_grid.points,
        p_i_grid.start,
        p_i_grid.end,
        p_i_grid.points
    );
    let execution = ExecutionReport::collect(
        config,
        evaluated,
        started.elapsed().as_secs_f64(),
        Vec::new(),
    );
    let manifest = RunManifest::new(config, plan, Some(evaluated)).with_execution(execution);
    Ok((sweep, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_validation_and_values() {
        assert!(Grid::new(0.0, 1.0, 0).is_err());
        assert!(Grid::new(1.0, 0.0, 3).is_err());
        assert!(Grid::new(f64::NAN, 1.0, 3).is_err());
        let g = Grid::new(0.0, 1.0, 5).unwrap();
        assert_eq!(g.values(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Grid::fixed(0.3).values(), vec![0.3]);
    }

    #[test]
    fn sweep_covers_simplex_and_counts_skips() {
        let g = Grid::new(0.0, 1.0, 6).unwrap();
        let sweep = sweep_bounds(&g, &g, &[1, 4]).unwrap();
        // 6x6 grid per width; points with p_d + p_i > 1 or p_i = 1
        // skipped.
        assert_eq!(sweep.points.len() + sweep.skipped, 2 * 36);
        assert!(sweep.skipped > 0);
        for p in &sweep.points {
            assert!(p.bounds.lower.value() <= p.bounds.upper.value() + 1e-9);
        }
    }

    #[test]
    fn best_achievable_is_the_clean_channel() {
        let g = Grid::new(0.0, 0.5, 6).unwrap();
        let sweep = sweep_bounds(&g, &g, &[8]).unwrap();
        let best = sweep.best_achievable().unwrap();
        assert_eq!(best.p_d, 0.0);
        assert_eq!(best.p_i, 0.0);
        assert!((best.bounds.lower.value() - 8.0).abs() < 1e-9);
        assert!(sweep.best_tightness().unwrap() > 0.999);
    }

    #[test]
    fn mitigation_threshold_finds_minimum_p_d() {
        let g = Grid::new(0.0, 0.9, 10).unwrap();
        let sweep = sweep_bounds(&g, &Grid::fixed(0.0), &[1]).unwrap();
        // Achievable = 1 - p_d for N = 1, p_i = 0 ... times C_conv = 1.
        let thr = sweep.mitigation_threshold(0.5).unwrap();
        assert!(thr > 0.4 && thr <= 0.7, "threshold {thr}");
        assert!(sweep.mitigation_threshold(-1.0).is_none());
    }

    #[test]
    fn empty_widths_rejected() {
        let g = Grid::fixed(0.1);
        assert!(sweep_bounds(&g, &g, &[]).is_err());
        assert!(sweep_bounds_with(&EngineConfig::seeded(0), &g, &g, &[]).is_err());
    }

    #[test]
    fn parallel_sweep_identical_to_serial() {
        let g = Grid::new(0.0, 0.95, 12).unwrap();
        let serial = sweep_bounds(&g, &g, &[1, 4, 8]).unwrap();
        for threads in [2, 4, 8] {
            let parallel = sweep_bounds_with(
                &EngineConfig::seeded(0).with_threads(threads),
                &g,
                &g,
                &[1, 4, 8],
            )
            .unwrap();
            // Exact equality including NaN-free floats: the bound
            // evaluation is pure, so parallelism is invisible.
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn sweep_manifest_counts_evaluated_points() {
        let g = Grid::new(0.0, 1.0, 6).unwrap();
        let cfg = EngineConfig::seeded(5).with_threads(2);
        let (sweep, manifest) = sweep_bounds_manifest(&cfg, &g, &g, &[1, 4]).unwrap();
        assert_eq!(manifest.trials, Some(sweep.points.len()));
        assert_eq!(manifest.master_seed, 5);
        assert!(manifest.plan.starts_with("sweep("), "{}", manifest.plan);
        assert!(manifest.plan.contains("[0..1; 6]"), "{}", manifest.plan);
        let exec = manifest.execution.as_ref().expect("sweeps report timing");
        assert_eq!(exec.threads_requested, 2);
        assert!(exec.batches.is_empty());
        // Deterministic payload identical to a serial run's.
        let (serial_sweep, serial) =
            sweep_bounds_manifest(&EngineConfig::serial(5), &g, &g, &[1, 4]).unwrap();
        assert_eq!(sweep, serial_sweep);
        assert_eq!(manifest.deterministic(), serial.deterministic());
    }

    #[test]
    fn sweep_types_are_serializable() {
        // Compile-time check that the report types implement Serde.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<CapacitySweep>();
        assert_serde::<SweepPoint>();
        assert_serde::<Grid>();
    }
}
