//! The practical estimation recipe of §4.3: traditional capacity
//! times `(1 − P_d)`.
//!
//! > *"For a given covert channel, one could first use traditional
//! > methods to estimate the physical capacity `C`. The probability of
//! > deletion `P_d` should then be estimated. The real capacity can
//! > then be estimated as `C·(1 − P_d)`."*
//!
//! The correction is independent of the synchronization mechanism in
//! use and does not include mechanism-specific overhead — it is the
//! *inherent* cost of non-synchrony.

use crate::error::{check_prob, CoreError};
use nsc_info::stats::ProportionInterval;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Applies the paper's correction: `C_real = C_traditional · (1 − P_d)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
///
/// # Example
///
/// ```
/// use nsc_core::degradation::corrected_capacity;
/// use nsc_info::BitsPerTick;
///
/// let traditional = BitsPerTick(100.0);
/// let real = corrected_capacity(traditional, 0.3)?;
/// assert_eq!(real.value(), 70.0);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn corrected_capacity(traditional: BitsPerTick, p_d: f64) -> Result<BitsPerTick, CoreError> {
    check_prob("p_d", p_d)?;
    Ok(traditional * (1.0 - p_d))
}

/// A traditional-vs-corrected capacity report for one covert channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// The physical capacity a synchronous-model analysis reports.
    pub traditional: BitsPerTick,
    /// Measured deletion probability with its confidence interval.
    pub p_d: ProportionInterval,
    /// Corrected point estimate `traditional · (1 − p_d)`.
    pub corrected: BitsPerTick,
    /// Corrected capacity at the interval's bounds, ordered
    /// `(pessimistic-for-attacker, optimistic-for-attacker)` — i.e.
    /// using the upper and lower ends of the `P_d` interval.
    pub corrected_interval: (BitsPerTick, BitsPerTick),
}

impl DegradationReport {
    /// Builds a report from a traditional estimate and a measured
    /// deletion-probability interval.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadProbability`] when the traditional
    /// capacity is negative/non-finite or the interval is malformed.
    pub fn new(traditional: BitsPerTick, p_d: ProportionInterval) -> Result<Self, CoreError> {
        if !traditional.is_valid_capacity() {
            return Err(CoreError::BadProbability {
                name: "traditional capacity",
                value: traditional.value(),
            });
        }
        let corrected = corrected_capacity(traditional, p_d.estimate)?;
        let low = corrected_capacity(traditional, p_d.upper)?;
        let high = corrected_capacity(traditional, p_d.lower)?;
        Ok(DegradationReport {
            traditional,
            p_d,
            corrected,
            corrected_interval: (low, high),
        })
    }

    /// The fraction of capacity lost to non-synchrony,
    /// `1 − corrected/traditional` (zero for a zero-capacity
    /// channel).
    pub fn loss_fraction(&self) -> f64 {
        if self.traditional.value() == 0.0 {
            0.0
        } else {
            1.0 - self.corrected.value() / self.traditional.value()
        }
    }
}

/// TCSEC-style severity buckets for an estimated covert-channel
/// capacity. The thresholds follow the Light-Pink-Book convention of
/// judging channels by order of magnitude; they are configurable
/// because acceptable rates are policy, not physics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityPolicy {
    /// Rates below this are considered negligible.
    pub negligible_below: f64,
    /// Rates above this are considered critical.
    pub critical_above: f64,
}

impl Default for SeverityPolicy {
    fn default() -> Self {
        // In bits per tick of the simulated system; the classic
        // guidance uses 0.1 b/s and 100 b/s for real-time systems.
        SeverityPolicy {
            negligible_below: 0.1,
            critical_above: 100.0,
        }
    }
}

/// Severity classification of a covert channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Too slow to matter under the policy.
    Negligible,
    /// Worth auditing; should be documented and possibly throttled.
    Concerning,
    /// Fast enough to exfiltrate meaningful data; must be handled.
    Critical,
}

impl SeverityPolicy {
    /// Classifies a corrected capacity estimate.
    pub fn classify(&self, rate: BitsPerTick) -> Severity {
        if rate.value() < self.negligible_below {
            Severity::Negligible
        } else if rate.value() > self.critical_above {
            Severity::Critical
        } else {
            Severity::Concerning
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(est: f64, lo: f64, hi: f64) -> ProportionInterval {
        ProportionInterval {
            estimate: est,
            lower: lo,
            upper: hi,
        }
    }

    #[test]
    fn correction_formula() {
        let c = corrected_capacity(BitsPerTick(10.0), 0.4).unwrap();
        assert!((c.value() - 6.0).abs() < 1e-12);
        assert!(corrected_capacity(BitsPerTick(10.0), 1.4).is_err());
    }

    #[test]
    fn report_orders_interval() {
        let r = DegradationReport::new(BitsPerTick(100.0), interval(0.3, 0.25, 0.35)).unwrap();
        assert!((r.corrected.value() - 70.0).abs() < 1e-12);
        let (lo, hi) = r.corrected_interval;
        assert!(lo.value() <= r.corrected.value());
        assert!(hi.value() >= r.corrected.value());
        assert!((lo.value() - 65.0).abs() < 1e-12);
        assert!((hi.value() - 75.0).abs() < 1e-12);
        assert!((r.loss_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn report_rejects_bad_capacity() {
        assert!(DegradationReport::new(BitsPerTick(-1.0), interval(0.1, 0.0, 0.2)).is_err());
        assert!(DegradationReport::new(BitsPerTick(f64::NAN), interval(0.1, 0.0, 0.2)).is_err());
    }

    #[test]
    fn zero_capacity_channel_loses_nothing() {
        let r = DegradationReport::new(BitsPerTick(0.0), interval(0.5, 0.4, 0.6)).unwrap();
        assert_eq!(r.loss_fraction(), 0.0);
        assert_eq!(r.corrected.value(), 0.0);
    }

    #[test]
    fn severity_classification() {
        let policy = SeverityPolicy::default();
        assert_eq!(policy.classify(BitsPerTick(0.01)), Severity::Negligible);
        assert_eq!(policy.classify(BitsPerTick(5.0)), Severity::Concerning);
        assert_eq!(policy.classify(BitsPerTick(500.0)), Severity::Critical);
    }

    #[test]
    fn custom_policy() {
        let strict = SeverityPolicy {
            negligible_below: 1e-6,
            critical_above: 1.0,
        };
        assert_eq!(strict.classify(BitsPerTick(0.01)), Severity::Concerning);
        assert_eq!(strict.classify(BitsPerTick(2.0)), Severity::Critical);
    }
}
