//! Error type for the capacity-estimation core.

use nsc_channel::ChannelError;
use nsc_info::InfoError;
use std::fmt;

/// Errors produced by bounds, protocols, and the estimation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A probability argument was invalid.
    BadProbability {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A protocol was configured against an unsupported channel (e.g.
    /// the resend protocol of Theorem 3 requires a deletion-only
    /// channel).
    UnsupportedChannel(String),
    /// A simulation argument was invalid (e.g. empty message, zero
    /// tick budget).
    BadSimulation(String),
    /// An underlying channel-model error.
    Channel(ChannelError),
    /// An underlying numerical error.
    Numeric(InfoError),
    /// The trial engine failed to execute a run (e.g. a worker died
    /// before delivering its batch).
    Engine(String),
    /// A lower capacity bound numerically exceeded an upper bound.
    ///
    /// Mathematically impossible inside one consistent model, but
    /// reachable once *multiple* bound families with different
    /// assumptions (feedback vs none, series expansions with
    /// truncation error) are evaluated on the same channel point —
    /// exactly the situation the capacity atlas creates. Surfacing it
    /// as a typed error keeps a crossing from hiding inside a
    /// silently negative interval width.
    CrossedBounds {
        /// The offending lower bound, bits per symbol slot.
        lower: f64,
        /// The upper bound it exceeded, bits per symbol slot.
        upper: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadProbability { name, value } => {
                write!(f, "{name} = {value} is not a valid probability")
            }
            CoreError::UnsupportedChannel(msg) => write!(f, "unsupported channel: {msg}"),
            CoreError::BadSimulation(msg) => write!(f, "bad simulation setup: {msg}"),
            CoreError::Channel(e) => write!(f, "channel error: {e}"),
            CoreError::Numeric(e) => write!(f, "numerical error: {e}"),
            CoreError::Engine(msg) => write!(f, "engine failure: {msg}"),
            CoreError::CrossedBounds { lower, upper } => write!(
                f,
                "crossed capacity bounds: lower bound {lower} bits/slot exceeds \
                 upper bound {upper} bits/slot"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Channel(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChannelError> for CoreError {
    fn from(e: ChannelError) -> Self {
        CoreError::Channel(e)
    }
}

impl From<InfoError> for CoreError {
    fn from(e: InfoError) -> Self {
        CoreError::Numeric(e)
    }
}

/// Validates a probability argument.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `value` is not a finite
/// number in `[0, 1]`.
pub(crate) fn check_prob(name: &'static str, value: f64) -> Result<f64, CoreError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(CoreError::BadProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<CoreError> = vec![
            CoreError::BadProbability {
                name: "p_d",
                value: -1.0,
            },
            CoreError::UnsupportedChannel("insertions present".to_owned()),
            CoreError::BadSimulation("empty message".to_owned()),
            CoreError::Channel(ChannelError::BadSymbolWidth(0)),
            CoreError::Numeric(InfoError::InvalidProbability(3.0)),
            CoreError::Engine("batch 3 produced no result".to_owned()),
            CoreError::CrossedBounds {
                lower: 1.5,
                upper: 1.0,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn check_prob_validates() {
        assert!(check_prob("p", 0.5).is_ok());
        assert!(check_prob("p", 0.0).is_ok());
        assert!(check_prob("p", 1.0).is_ok());
        assert!(check_prob("p", -0.1).is_err());
        assert!(check_prob("p", f64::NAN).is_err());
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = CoreError::Channel(ChannelError::BadSymbolWidth(0));
        assert!(e.source().is_some());
    }
}
