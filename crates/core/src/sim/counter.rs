//! Appendix A's counter (skip) protocol — the constructive proof of
//! Theorem 5.
//!
//! The receiver counts every symbol it believes it received and
//! reports the count back over a perfect feedback path. On each
//! sender operation:
//!
//! * receiver count `R` **equals** the sender count `S` — the last
//!   symbol arrived; send `message[S]` and advance;
//! * `R < S` — the last symbol has not been read yet; **wait**
//!   (this is how deletions are avoided, at the cost of time);
//! * `R > S` — insertions occurred; **skip** to `message[R]` so the
//!   next symbol lands at the right position in the received stream.
//!
//! This state machine has a bitsliced twin
//! ([`crate::sim::bitsliced::run_counter_lanes`], 64 trials per
//! `u64` lane) that must stay in lockstep: any semantic change here
//! needs the mirror change there, and `tests/kernel_equivalence.rs`
//! plus the in-crate bitsliced suite will fail until the two agree
//! bit-for-bit.
//!
//! The result is a *synchronous but substituted* channel: position
//! `k` of the received stream equals `message[k]` unless it was
//! filled by a stale read — the converted M-ary symmetric channel of
//! Figure 5.

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Measurements from a counter-protocol run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterOutcome {
    /// The receiver's stream, aligned with the message: `received[k]`
    /// is the receiver's belief about `message[k]`.
    pub received: Vec<Symbol>,
    /// Total operations consumed.
    pub ops: usize,
    /// Sender operations.
    pub sender_ops: usize,
    /// Receiver operations.
    pub receiver_ops: usize,
    /// Sender operations spent waiting (`R < S`).
    pub waits: usize,
    /// Message symbols skipped (never physically sent).
    pub skipped: usize,
    /// Positions filled by stale reads (ground truth).
    pub stale_fills: usize,
}

impl CounterOutcome {
    /// Symbol positions delivered per operation — the physical rate
    /// the paper charges wasted waiting time against.
    pub fn symbols_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.ops as f64
        }
    }

    /// Empirical symbol error rate against the original message.
    ///
    /// # Panics
    ///
    /// Panics when `message` is shorter than the received stream.
    pub fn symbol_error_rate(&self, message: &[Symbol]) -> f64 {
        assert!(message.len() >= self.received.len());
        if self.received.is_empty() {
            return 0.0;
        }
        let errors = self
            .received
            .iter()
            .zip(message)
            .filter(|(r, m)| r != m)
            .count();
        errors as f64 / self.received.len() as f64
    }

    /// Reliable information rate in bits per operation: the converted
    /// channel's per-symbol capacity (M-ary symmetric at the measured
    /// error rate) times the symbol rate. This is the quantity
    /// experiment E4 compares against Theorem 5.
    pub fn reliable_rate(&self, bits: u32, message: &[Symbol]) -> BitsPerTick {
        let e = self.symbol_error_rate(message);
        let per_symbol = nsc_channel::dmc::closed_form::mary_symmetric(bits, e);
        BitsPerTick(per_symbol * self.symbols_per_op())
    }
}

/// Runs the Appendix A counter protocol over a shared mailbox with a
/// perfect feedback path, until the whole message is delivered, the
/// schedule ends, or `max_ops` operations elapse.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_counter_protocol<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
) -> Result<CounterOutcome, CoreError> {
    run_counter_protocol_observed(message, schedule, max_ops, &mut NullObserver)
}

/// [`run_counter_protocol`], reporting every channel event to
/// `observer`: `Send` for each physical write, `Recv`/`Insert` for
/// each fresh/stale read, and `Ack` for each count publication the
/// feedback path carries back (one per receiver read).
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_counter_protocol_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
) -> Result<CounterOutcome, CoreError> {
    run_counter_protocol_into(
        message,
        schedule,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_counter_protocol_observed`], reusing `scratch`'s received
/// buffer instead of allocating one. The outcome takes ownership of
/// the buffer; move `outcome.received` back into `scratch.received`
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_counter_protocol_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<CounterOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    let mut out = CounterOutcome {
        received,
        ops: 0,
        sender_ops: 0,
        receiver_ops: 0,
        waits: 0,
        skipped: 0,
        stale_fills: 0,
    };
    // Sender-side count of symbols sent or skipped; `message[s]` is
    // the next symbol to place.
    let mut s_count = 0usize;
    // Receiver-side count, visible to the sender via perfect
    // feedback.
    let mut r_count = 0usize;
    while out.ops < max_ops && r_count < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender => {
                out.sender_ops += 1;
                match r_count.cmp(&s_count) {
                    std::cmp::Ordering::Less => out.waits += 1,
                    std::cmp::Ordering::Equal => {
                        if s_count < message.len() {
                            mailbox.write(message[s_count]);
                            observer.observe(SimEvent {
                                tick,
                                kind: SimEventKind::Send(message[s_count]),
                            });
                            s_count += 1;
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        // Insertions filled positions s_count..r_count;
                        // skip those message symbols and place the one
                        // for position r_count.
                        out.skipped += r_count - s_count;
                        if r_count < message.len() {
                            mailbox.write(message[r_count]);
                            observer.observe(SimEvent {
                                tick,
                                kind: SimEventKind::Send(message[r_count]),
                            });
                        }
                        s_count = r_count + 1;
                    }
                }
            }
            Party::Receiver => {
                out.receiver_ops += 1;
                let (value, fresh) = mailbox.read();
                if !fresh {
                    out.stale_fills += 1;
                }
                observer.observe(SimEvent {
                    tick,
                    kind: if fresh {
                        SimEventKind::Recv(value)
                    } else {
                        SimEventKind::Insert(value)
                    },
                });
                // The count publication the feedback path carries.
                observer.observe(SimEvent {
                    tick,
                    kind: SimEventKind::Ack,
                });
                out.received.push(value);
                r_count += 1;
            }
        }
    }
    out.received.truncate(message.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule, TraceSchedule};
    use nsc_channel::alphabet::Alphabet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_msg(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        assert!(run_counter_protocol(&[], &mut s, 10).is_err());
        assert!(run_counter_protocol(&[Symbol::from_index(0)], &mut s, 0).is_err());
    }

    #[test]
    fn alternating_schedule_is_perfect() {
        let m = random_msg(2, 100, 1);
        let out = run_counter_protocol(&m, &mut RoundRobinSchedule::new(), 10_000).unwrap();
        assert_eq!(out.received, m);
        assert_eq!(out.waits, 0);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.stale_fills, 0);
        assert_eq!(out.symbol_error_rate(&m), 0.0);
    }

    #[test]
    fn sender_heavy_schedule_waits_but_never_corrupts() {
        // Sender-dominated scheduling can only cost time: with no
        // consecutive receiver ops there are no stale reads, so the
        // message arrives intact.
        let trace: Vec<Party> = (0..4000)
            .map(|i| {
                if i % 4 == 3 {
                    Party::Receiver
                } else {
                    Party::Sender
                }
            })
            .collect();
        let m = random_msg(2, 500, 2);
        let out = run_counter_protocol(&m, &mut TraceSchedule::new(trace), 100_000).unwrap();
        assert_eq!(out.received, m[..out.received.len()].to_vec());
        assert!(out.waits > 0);
        assert_eq!(out.stale_fills, 0);
    }

    #[test]
    fn receiver_heavy_schedule_substitutes_but_stays_aligned() {
        let trace: Vec<Party> = (0..40_000)
            .map(|i| {
                if i % 4 == 0 {
                    Party::Sender
                } else {
                    Party::Receiver
                }
            })
            .collect();
        let m = random_msg(4, 2000, 3);
        let out = run_counter_protocol(&m, &mut TraceSchedule::new(trace), 100_000).unwrap();
        assert_eq!(out.received.len(), m.len());
        // Errors happen exactly at stale fills that landed a wrong
        // value; ground truth says stale fills >= errors.
        let errors = out
            .received
            .iter()
            .zip(&m)
            .filter(|(r, mm)| r != mm)
            .count();
        assert!(out.stale_fills > 0);
        assert!(errors <= out.stale_fills);
        // With 4-bit symbols nearly every stale fill is an error
        // (alpha = 15/16).
        assert!(errors as f64 >= 0.7 * out.stale_fills as f64);
        assert!(out.skipped > 0);
    }

    #[test]
    fn fair_schedule_error_rate_matches_alpha_model() {
        // With q = 1/2, the fraction of positions filled by stale
        // reads is about 1/2; each stale fill errs with probability
        // alpha = 1 - 2^-N for a uniform random message.
        let bits = 3u32;
        let m = random_msg(bits, 60_000, 4);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(8)).unwrap();
        let out = run_counter_protocol(&m, &mut sched, usize::MAX).unwrap();
        let stale_frac = out.stale_fills as f64 / out.received.len() as f64;
        let err = out.symbol_error_rate(&m);
        let alpha = crate::bounds::alpha(bits);
        assert!(
            (err - alpha * stale_frac).abs() < 0.02,
            "err = {err}, alpha*stale = {}",
            alpha * stale_frac
        );
    }

    #[test]
    fn delivered_positions_count_sent_plus_skipped() {
        let mut sched = BernoulliSchedule::new(0.3, StdRng::seed_from_u64(9)).unwrap();
        let m = random_msg(2, 5000, 5);
        let out = run_counter_protocol(&m, &mut sched, usize::MAX).unwrap();
        assert_eq!(out.received.len(), m.len());
        assert_eq!(out.ops, out.sender_ops + out.receiver_ops);
    }

    #[test]
    fn reliable_rate_is_positive_and_below_symbol_rate_times_n() {
        let bits = 4u32;
        let m = random_msg(bits, 20_000, 6);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(10)).unwrap();
        let out = run_counter_protocol(&m, &mut sched, usize::MAX).unwrap();
        let rate = out.reliable_rate(bits, &m);
        assert!(rate.value() > 0.0);
        assert!(rate.value() <= bits as f64 * out.symbols_per_op() + 1e-12);
    }

    #[test]
    fn ops_budget_truncates_run() {
        let m = random_msg(2, 10_000, 7);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(11)).unwrap();
        let out = run_counter_protocol(&m, &mut sched, 100).unwrap();
        assert_eq!(out.ops, 100);
        assert!(out.received.len() < m.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let m = random_msg(2, 1000, 8);
        let run = |seed| {
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(seed)).unwrap();
            run_counter_protocol(&m, &mut sched, usize::MAX).unwrap()
        };
        assert_eq!(run(42), run(42));
        // Different schedules usually differ.
        let a = run(42);
        let b = run(43);
        assert!(a.ops != b.ops || a.received != b.received || a.stale_fills != b.stale_fills);
    }

    #[test]
    fn random_rng_message_never_panics_error_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let n = rng.gen_range(1..50);
            let m = random_msg(1, n, rng.gen());
            let out =
                run_counter_protocol(&m, &mut RoundRobinSchedule::new(), 10 * n + 10).unwrap();
            let _ = out.symbol_error_rate(&m);
        }
    }
}
