//! Bitsliced trial kernels: 64 trials per `u64` lane.
//!
//! The scalar runners in [`super::unsync`], [`super::counter`] and
//! [`super::slotted`] spend most of their time on one unpredictable
//! branch per tick — *who got the operation* — plus the boolean
//! mailbox bookkeeping hanging off it. This module runs **64
//! independent trials in lockstep**, one trial per bit of a `u64`:
//! every Boolean of per-trial state (mailbox freshness, slot
//! acted-flags, liveness) becomes one word, every per-tick decision
//! becomes straight-line mask algebra, and per-trial tallies live in
//! carry-save [`VerticalCounter`]s so that counting across all 64
//! trials costs a handful of word operations per tick. Integer state
//! that must stay addressable (the counter protocol's cursors) is
//! kept in structure-of-arrays form so its update loops
//! autovectorize. No `std::simd`, no `#[cfg(target_feature)]`: plain
//! `u64` array code that LLVM lowers the same way on every target,
//! which is what keeps the results cross-platform deterministic (see
//! the `kernel-divergence` nsc-lint rule).
//!
//! # Exact equivalence with the scalar oracle
//!
//! The scalar path stays the oracle; these kernels must reproduce its
//! per-trial statistics **bit for bit**. Three facts make that
//! possible without simulating anything approximately:
//!
//! 1. **Lockstep ops.** Each converted mechanism consumes exactly one
//!    schedule operation per loop iteration (there is no
//!    pause-without-consuming), so a trial's local `ops` count equals
//!    the global tick index for as long as the trial is live. One
//!    shared tick loop is therefore exact — and the slotted
//!    mechanism's slot index `tick / slot_len` is common to all
//!    lanes.
//! 2. **Exact Bernoulli thresholding.** The scalar schedule draws
//!    `rng.gen::<f64>() < q`, where `rand`'s `Standard` f64 is
//!    `(next_u64() >> 11) as f64 * 2^-53`. Because multiplying by a
//!    power of two is exact, that comparison is *identical* to the
//!    integer test `(next_u64() >> 11) < ceil(q * 2^53)` — see
//!    [`bernoulli_threshold`]. One xoshiro step per lane thus yields
//!    the lane's schedule draw with zero floating-point involvement.
//! 3. **Per-lane generator replay.** Each lane carries the full
//!    xoshiro256** state of its trial's schedule RNG
//!    (structure-of-arrays across lanes, stepped in lockstep), so
//!    lane `l` consumes *the same stream* the scalar trial would.
//!    Inactive lanes keep stepping — their draws are masked out, and
//!    a finished trial's statistics are already frozen, so the extra
//!    draws cannot be observed.
//!
//! # Lane packing and the tail
//!
//! A block packs up to [`LANES`] consecutive trials; a campaign whose
//! trial count is not a multiple of 64 ends with a partial block.
//! Tail lanes beyond `n_lanes` are simply never in the `active`
//! mask: their RNG draws and state updates happen (keeping every
//! loop a fixed-trip-count, vectorizable `0..LANES`) but are masked
//! out of every statistic. Because each lane's outcome is a pure
//! function of its own seeded state — lanes never exchange
//! information — the packing (which trial sits in which lane, how
//! many lanes a block has) is unobservable in the results: this is
//! what makes the bitsliced path packing-invariant and lets it share
//! the scalar path's determinism contract.

/// Trials per block: one per bit of the `u64` lane masks.
pub const LANES: usize = 64;

/// Mask with the low `n` lane bits set (`n <= 64`).
#[must_use]
pub fn lane_mask(n: usize) -> u64 {
    if n >= LANES {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The integer threshold equivalent to the scalar Bernoulli draw
/// `rng.gen::<f64>() < q`.
///
/// `rand`'s `Standard` distribution for `f64` produces
/// `(next_u64() >> 11) as f64 * 2^-53`. Scaling by `2^53` is exact
/// (a pure exponent shift), so for the 53-bit integer
/// `m = next_u64() >> 11`:
///
/// ```text
/// m * 2^-53 < q  ⇔  m < q * 2^53  ⇔  m < ceil(q * 2^53)
/// ```
///
/// (the last step because `m` is an integer and the comparison is
/// strict). `q = 1` gives `2^53`, which every `m` is below; `q = 0`
/// gives `0`, which no `m` is below.
#[must_use]
pub fn bernoulli_threshold(q: f64) -> u64 {
    (q * 9_007_199_254_740_992.0).ceil() as u64
}

/// A 64-lane vertical counter: plane `p` holds bit `p` of every
/// lane's tally, so "increment these lanes" is a carry-save ripple
/// add of the lane mask — a couple of word operations amortized,
/// independent of how many lanes incremented. This is what lets the
/// kernels tally per-trial statistics every tick without a 64-wide
/// accumulation loop.
#[derive(Debug, Clone)]
pub struct VerticalCounter {
    planes: [u64; 64],
    used: usize,
}

impl Default for VerticalCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl VerticalCounter {
    /// All lanes at zero.
    #[must_use]
    pub fn new() -> Self {
        VerticalCounter {
            planes: [0; 64],
            used: 0,
        }
    }

    /// Adds 1 to every lane whose bit is set in `mask`.
    #[inline]
    pub fn add(&mut self, mask: u64) {
        let mut carry = mask;
        let mut p = 0;
        while carry != 0 {
            let sum = self.planes[p] ^ carry;
            carry &= self.planes[p];
            self.planes[p] = sum;
            p += 1;
        }
        if p > self.used {
            self.used = p;
        }
    }

    /// The tally of one lane.
    #[must_use]
    pub fn get(&self, lane: usize) -> u64 {
        let mut v = 0u64;
        for p in 0..self.used {
            v |= ((self.planes[p] >> lane) & 1) << p;
        }
        v
    }

    /// All 64 tallies, lane-indexed.
    #[must_use]
    pub fn to_array(&self) -> [u64; LANES] {
        let mut out = [0u64; LANES];
        for (lane, v) in out.iter_mut().enumerate() {
            *v = self.get(lane);
        }
        out
    }

    /// Lanes whose tally equals `c` exactly.
    ///
    /// The kernels use this to catch a cursor *arriving* at a
    /// boundary (e.g. `next_to_send == len - 1` just before the write
    /// that completes the message), replacing a per-tick 64-wide
    /// `>= len` recomputation with a handful of plane comparisons.
    #[must_use]
    pub fn eq_mask(&self, c: u64) -> u64 {
        let needed = (64 - c.leading_zeros()) as usize;
        let top = self.used.max(needed);
        let mut eq = u64::MAX;
        for p in 0..top {
            let plane = self.planes[p];
            eq &= if (c >> p) & 1 == 1 { plane } else { !plane };
        }
        eq
    }
}

/// 64 xoshiro256** generators in structure-of-arrays form, stepped in
/// lockstep.
///
/// Each lane replays exactly the stream of one
/// [`TrialRng`](crate::engine::rng::TrialRng): the recurrence below
/// is the same one, applied to every lane per call so the state
/// arrays stay contiguous and the step loop autovectorizes. The
/// scrambler's `* 5` / `* 9` are spelled as shift-adds — the same
/// value on every input, but cheap vector shifts and adds where a
/// generic 64-bit vector multiply is a slow multi-µop instruction.
#[derive(Debug, Clone)]
pub struct LaneRng {
    s0: [u64; LANES],
    s1: [u64; LANES],
    s2: [u64; LANES],
    s3: [u64; LANES],
}

impl Default for LaneRng {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneRng {
    /// All lanes in an arbitrary nonzero state (never used for
    /// results; lanes are re-seeded per block).
    #[must_use]
    pub fn new() -> Self {
        LaneRng {
            s0: [1; LANES],
            s1: [2; LANES],
            s2: [3; LANES],
            s3: [4; LANES],
        }
    }

    /// Installs one lane's xoshiro256** state (word order as
    /// [`TrialRng`](crate::engine::rng::TrialRng) holds it).
    pub fn set_lane(&mut self, lane: usize, state: [u64; 4]) {
        self.s0[lane] = state[0];
        self.s1[lane] = state[1];
        self.s2[lane] = state[2];
        self.s3[lane] = state[3];
    }

    /// Steps every lane once and packs the 64 Bernoulli outcomes into
    /// one mask: bit `l` is set iff lane `l`'s draw satisfies
    /// `(word >> 11) < threshold` — i.e. the scalar schedule would
    /// have granted the **sender** the operation (see
    /// [`bernoulli_threshold`]).
    ///
    /// The comparison is computed as the sign bit of
    /// `(word >> 11) - threshold`: both operands are at most `2^53`,
    /// so the subtraction cannot wrap and the sign bit *is* the
    /// strict `<`. Vector ISAs without unsigned 64-bit compares
    /// (plain SSE2) still lower subtract-and-shift cheaply, so the
    /// draw stays a couple of vector ops on every target.
    #[inline]
    pub fn next_sender_mask(&mut self, threshold: u64) -> u64 {
        let mut mask = 0u64;
        for l in 0..LANES {
            let x = self.s1[l];
            let x5 = (x << 2).wrapping_add(x);
            let rot = x5.rotate_left(7);
            let result = (rot << 3).wrapping_add(rot);
            let t = x << 17;
            self.s2[l] ^= self.s0[l];
            self.s3[l] ^= x;
            self.s1[l] ^= self.s2[l];
            self.s0[l] ^= self.s3[l];
            self.s2[l] ^= t;
            self.s3[l] = self.s3[l].rotate_left(45);
            mask |= ((result >> 11).wrapping_sub(threshold) >> 63) << l;
        }
        mask
    }
}

/// In-place 64×64 bit-matrix transpose (recursive delta-swaps à la
/// Hacker's Delight §7-3, oriented so that afterwards bit `j` of
/// word `i` is the old bit `i` of word `j`). The kernels use it to
/// turn 64 per-tick lane masks into 64 per-lane tick words.
fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        // Swap the high-bit half-block of each low word with the
        // low-bit half-block of its partner `j` words below.
        let mut k = 0usize;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Batched per-lane event counter: per-tick lane masks are buffered
/// and, once 64 have accumulated, transposed and popcounted into the
/// per-lane tallies — a few amortized operations per tick, cheaper
/// than rippling a [`VerticalCounter`] when nothing needs the running
/// value mid-run. Use it for statistics that are only read at the end
/// of a block; use `VerticalCounter` when the kernel must compare the
/// running count every tick.
struct MaskAccumulator {
    buf: [u64; 64],
    fill: usize,
    counts: [u64; LANES],
}

impl MaskAccumulator {
    fn new() -> Self {
        MaskAccumulator {
            buf: [0; 64],
            fill: 0,
            counts: [0; LANES],
        }
    }

    #[inline]
    fn push(&mut self, mask: u64) {
        self.buf[self.fill] = mask;
        self.fill += 1;
        if self.fill == 64 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let mut t = self.buf;
        transpose64(&mut t);
        for (l, c) in self.counts.iter_mut().enumerate() {
            *c += u64::from(t[l].count_ones());
        }
        // Re-zero so a final partial flush sees empty tail slots.
        self.buf = [0; 64];
        self.fill = 0;
    }

    fn finish(mut self) -> [u64; LANES] {
        if self.fill > 0 {
            self.flush();
        }
        self.counts
    }
}

/// Per-lane statistics from [`run_unsync_lanes`], mirroring
/// [`super::unsync::UnsyncOutcome`]'s counters (the received stream
/// itself is not materialized — no campaign statistic reads its
/// contents).
#[derive(Debug, Clone)]
pub struct UnsyncLanes {
    /// Operations consumed per lane.
    pub ops: [u64; LANES],
    /// Writes per lane (equals the final send cursor).
    pub writes: [u64; LANES],
    /// Overwrites of an unread symbol per lane (deletions).
    pub deleted_writes: [u64; LANES],
    /// Receiver operations per lane.
    pub reads: [u64; LANES],
    /// Reads of an already-read value per lane (insertions).
    pub stale_reads: [u64; LANES],
}

/// Runs up to [`LANES`] unsynchronized trials in lockstep — the
/// bitsliced twin of [`super::unsync::run_unsynchronized_into`]
/// restricted to a Bernoulli schedule. Lane `l`'s counters are
/// bit-identical to a scalar run whose schedule RNG starts from the
/// state installed in `rng` lane `l`.
// nsc-lint: hot
#[must_use]
pub fn run_unsync_lanes(
    rng: &mut LaneRng,
    n_lanes: usize,
    len: usize,
    threshold: u64,
    max_ops: usize,
) -> UnsyncLanes {
    let len = len as u64;
    let mut ops = [0u64; LANES];
    // The send cursor must be comparable against `len - 1` every
    // tick (it decides `sent_all`), so it lives in a ripple-carry
    // vertical counter; the pure statistics only matter at the end
    // and go through batched transpose-popcount accumulators.
    let mut next = VerticalCounter::new();
    let mut deleted = MaskAccumulator::new();
    let mut reads = MaskAccumulator::new();
    let mut stale = MaskAccumulator::new();
    // One bit per lane: mailbox freshness, "message fully written",
    // liveness.
    let mut fresh: u64 = 0;
    let mut sent_all: u64 = if len == 0 { u64::MAX } else { 0 };
    let last = len.wrapping_sub(1);
    let mut active: u64 = lane_mask(n_lanes);
    let budget = max_ops as u64;
    let mut tick: u64 = 0;
    while tick < budget {
        // Scalar loop top: stop once everything was written and the
        // last write consumed. A lane leaving here has consumed
        // exactly `tick` operations.
        let mut done = sent_all & !fresh & active;
        active &= !done;
        while done != 0 {
            let l = done.trailing_zeros() as usize;
            ops[l] = tick;
            done &= done - 1;
        }
        if active == 0 {
            break;
        }
        let sender = rng.next_sender_mask(threshold);
        // Sender with symbols left: write (an idle post-message
        // sender still consumes the op).
        let write = sender & active & !sent_all;
        deleted.push(write & fresh);
        fresh |= write;
        // A lane writing its last symbol has sent everything; catch
        // the cursor at len-1 *before* incrementing it.
        sent_all |= write & next.eq_mask(last);
        next.add(write);
        // Receiver: read, stale iff the mailbox was not fresh.
        let recv = !sender & active;
        stale.push(recv & !fresh);
        reads.push(recv);
        fresh &= !recv;
        tick += 1;
    }
    // Lanes still live when the budget ran out consumed every op.
    while active != 0 {
        let l = active.trailing_zeros() as usize;
        ops[l] = budget;
        active &= active - 1;
    }
    UnsyncLanes {
        ops,
        // A write happens exactly when the cursor advances.
        writes: next.to_array(),
        deleted_writes: deleted.finish(),
        reads: reads.finish(),
        stale_reads: stale.finish(),
    }
}

/// Per-lane statistics from [`run_counter_lanes`], mirroring the
/// fields of [`super::counter::CounterOutcome`] that campaign
/// statistics consume, plus the symbol-error count the scalar path
/// derives by comparing `received` against the message.
#[derive(Debug, Clone)]
pub struct CounterLanes {
    /// Operations consumed per lane.
    pub ops: [u64; LANES],
    /// Positions delivered per lane (the scalar `received.len()`
    /// after truncation).
    pub delivered: [u64; LANES],
    /// Positions filled by stale reads per lane.
    pub stale_fills: [u64; LANES],
    /// Delivered positions that differ from the message per lane.
    pub errors: [u64; LANES],
}

/// Runs up to [`LANES`] counter-protocol trials — the bitsliced twin
/// of [`super::counter::run_counter_protocol_into`] restricted to a
/// Bernoulli schedule.
///
/// Unlike the two Boolean-state mechanisms, the counter protocol
/// needs a per-lane message gather on every tick (the written symbol
/// and the delivery check both read `message[R]`), so running the
/// lanes in strict lockstep buys nothing: the per-tick work is
/// already O(lanes). Instead the kernel keeps the bitsliced part
/// where it pays — the schedule RNG, 64 Bernoulli draws per xoshiro
/// sweep — and *transposes* each 64-tick chunk of lane masks into 64
/// per-lane tick words, which every live lane then replays with a
/// branch-free scalar loop (select-based writes, no 3-way
/// `R ⋛ S` branch, sequential slab access). Lanes retire
/// individually the moment their `R` reaches the message length.
///
/// `symbols` is the lane-major message slab: lane `l`'s message
/// occupies `symbols[l * len .. (l + 1) * len]`, one `u16` symbol
/// index per position (the alphabet is at most 16 bits wide). Only
/// the first `n_lanes` regions are read.
///
/// # Panics
///
/// Panics when the slab is smaller than `n_lanes * len` or the
/// message is empty (the campaign layer validates both).
// nsc-lint: hot
#[must_use]
pub fn run_counter_lanes(
    rng: &mut LaneRng,
    symbols: &[u16],
    n_lanes: usize,
    len: usize,
    threshold: u64,
    max_ops: usize,
) -> CounterLanes {
    assert!(symbols.len() >= n_lanes * len, "lane-major slab too small");
    assert!(len > 0, "message is empty");
    let len_u = len as u64;
    let last = len - 1;
    let budget = max_ops as u64;
    // Lanes still running when the budget ran out consumed every op;
    // retiring lanes overwrite their slot with the exact tick.
    let mut ops = [budget; LANES];
    // Sender count `S` and receiver count `R` of Appendix A, plus
    // the per-lane mailbox (value, freshness) and tallies — all
    // horizontal: the replay walks one lane at a time.
    let mut s = [0u64; LANES];
    let mut r = [0u64; LANES];
    let mut mbox = [0u16; LANES];
    let mut fresh = [0u64; LANES];
    let mut stale = [0u64; LANES];
    let mut errors = [0u64; LANES];
    // Tail lanes are born retired.
    let mut finished: u64 = !lane_mask(n_lanes);
    let mut masks = [0u64; 64];
    let mut base: u64 = 0;
    while base < budget && finished != u64::MAX {
        let lim = (budget - base).min(64);
        for m in masks.iter_mut().take(lim as usize) {
            *m = rng.next_sender_mask(threshold);
        }
        for m in masks.iter_mut().skip(lim as usize) {
            *m = 0;
        }
        // masks[t] bit l  →  masks[l] bit t: each live lane now owns
        // one word of schedule draws for this chunk.
        transpose64(&mut masks);
        for l in 0..LANES {
            if finished & (1 << l) != 0 {
                continue;
            }
            let lane_msg = &symbols[l * len..(l + 1) * len];
            let mut w = masks[l];
            let mut rl = r[l];
            let mut sl = s[l];
            let mut mb = mbox[l];
            let mut fr = fresh[l];
            let mut er = errors[l];
            let mut st = stale[l];
            let mut t: u64 = 0;
            while t < lim {
                // Scalar loop top: the run ends once R reaches the
                // message length.
                if rl >= len_u {
                    ops[l] = base + t;
                    finished |= 1 << l;
                    break;
                }
                let draw = w & 1;
                w >>= 1;
                // R == S → send message[S]; R > S → skip ahead and
                // send message[R]; R < S → wait. In both writing
                // branches message[R] lands in the mailbox and the
                // cursor at R + 1 (for R == S they coincide), so one
                // in-bounds load at R serves the write — and it is
                // the same word the delivery check compares against.
                let v = lane_msg[(rl as usize).min(last)];
                let wr = draw & u64::from(rl >= sl);
                let sel16 = (wr as u16).wrapping_neg();
                let sel64 = wr.wrapping_neg();
                mb = (mb & !sel16) | (v & sel16);
                sl = (sl & !sel64) | ((rl + 1) & sel64);
                // Receiver: the read fills position R; stale iff the
                // mailbox was not fresh, an error iff the value
                // differs from message[R].
                let rd = draw ^ 1;
                st += rd & (fr ^ 1);
                er += rd & u64::from(mb != v);
                fr = (fr | wr) & (rd ^ 1);
                rl += rd;
                t += 1;
            }
            r[l] = rl;
            s[l] = sl;
            mbox[l] = mb;
            fresh[l] = fr;
            errors[l] = er;
            stale[l] = st;
        }
        base += lim;
    }
    CounterLanes {
        ops,
        // Every receiver op fills exactly one position.
        delivered: r,
        stale_fills: stale,
        errors,
    }
}

/// Per-lane statistics from [`run_slotted_lanes`], mirroring the
/// fields of [`super::slotted::SlottedOutcome`] that campaign
/// statistics consume (`delivered` is the scalar `received.len()`).
#[derive(Debug, Clone)]
pub struct SlottedLanes {
    /// Operations consumed per lane.
    pub ops: [u64; LANES],
    /// Writes per lane (equals the final send cursor).
    pub writes: [u64; LANES],
    /// Overwrites of an unread symbol per lane (deletions).
    pub deleted_writes: [u64; LANES],
    /// Serviced read slots per lane.
    pub delivered: [u64; LANES],
    /// Stale reads per lane (insertions).
    pub stale_reads: [u64; LANES],
}

/// Runs up to [`LANES`] slotted trials in lockstep — the bitsliced
/// twin of [`super::slotted::run_slotted_into`] restricted to a
/// Bernoulli schedule.
///
/// Because every live lane's `ops` equals the global tick, the slot
/// index `tick / slot_len` and its send/read parity are common
/// knowledge across lanes; only the per-slot acted flag is per-lane.
///
/// # Panics
///
/// Panics when `slot_len` is zero (the campaign layer validates it).
// nsc-lint: hot
#[must_use]
pub fn run_slotted_lanes(
    rng: &mut LaneRng,
    n_lanes: usize,
    len: usize,
    slot_len: usize,
    threshold: u64,
    max_ops: usize,
) -> SlottedLanes {
    assert!(slot_len > 0, "slot_len is zero");
    let len = len as u64;
    let slot_len = slot_len as u64;
    let mut ops = [0u64; LANES];
    // Send cursor vertical (compared against len-1 every write);
    // pure statistics batched.
    let mut next = VerticalCounter::new();
    let mut deleted = MaskAccumulator::new();
    let mut delivered = MaskAccumulator::new();
    let mut stale = MaskAccumulator::new();
    let mut fresh: u64 = 0;
    let mut acted: u64 = 0;
    let mut finished: u64 = if len == 0 { u64::MAX } else { 0 };
    let last = len.wrapping_sub(1);
    let mut active: u64 = lane_mask(n_lanes);
    let budget = max_ops as u64;
    let mut tick: u64 = 0;
    while tick < budget {
        // Scalar loop top: the run ends once the message is fully
        // written.
        let mut done = finished & active;
        active &= !done;
        while done != 0 {
            let l = done.trailing_zeros() as usize;
            ops[l] = tick;
            done &= done - 1;
        }
        if active == 0 {
            break;
        }
        // Slot boundaries are global (lockstep ops): a new slot
        // resets every lane's acted flag.
        if tick > 0 && tick % slot_len == 0 {
            acted = 0;
        }
        let slot = tick / slot_len;
        let is_send_slot = slot % 2 == 0;
        let sender = rng.next_sender_mask(threshold);
        if is_send_slot {
            // First sender op of the slot writes; everything else in
            // the slot is wasted.
            let write = sender & active & !acted;
            deleted.push(write & fresh);
            fresh |= write;
            acted |= write;
            finished |= write & next.eq_mask(last);
            next.add(write);
        } else {
            // First receiver op of the slot reads.
            let read = !sender & active & !acted;
            stale.push(read & !fresh);
            delivered.push(read);
            fresh &= !read;
            acted |= read;
        }
        tick += 1;
    }
    while active != 0 {
        let l = active.trailing_zeros() as usize;
        ops[l] = budget;
        active &= active - 1;
    }
    SlottedLanes {
        ops,
        // A write happens exactly when the cursor advances.
        writes: next.to_array(),
        deleted_writes: deleted.finish(),
        delivered: delivered.finish(),
        stale_reads: stale.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::rng::TrialRng;
    use crate::sim::counter::run_counter_protocol;
    use crate::sim::slotted::run_slotted;
    use crate::sim::unsync::run_unsynchronized;
    use crate::sim::BernoulliSchedule;
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use rand::{Rng, RngCore, SeedableRng};

    const Q: f64 = 0.55;
    const LEN: usize = 64;
    const MAX_OPS: usize = 4_000;

    /// The satellite pin: the threshold-mask draw must agree with the
    /// scalar `TrialRng` f64 draw on the *same* words, for easy and
    /// adversarial probabilities alike.
    #[test]
    fn threshold_mask_matches_scalar_f64_draws() {
        let probs = [
            0.0,
            1.0,
            0.5,
            0.55,
            0.25,
            1e-17,
            1.0 - 1e-16,
            f64::from_bits(0x3FE5_5555_5555_5555), // near 2/3, odd mantissa
        ];
        for q in probs {
            let t = bernoulli_threshold(q);
            let mut ints = TrialRng::seed_from_u64(0xC0FF_EE00 ^ q.to_bits());
            let mut floats = ints.clone();
            for _ in 0..4_096 {
                let masked = (ints.next_u64() >> 11) < t;
                let scalar = floats.gen::<f64>() < q;
                assert_eq!(masked, scalar, "q = {q}");
            }
        }
    }

    #[test]
    fn threshold_endpoints() {
        assert_eq!(bernoulli_threshold(0.0), 0);
        assert_eq!(bernoulli_threshold(1.0), 1u64 << 53);
    }

    /// Each lane's packed bit stream must equal the scalar Bernoulli
    /// schedule drawn from the same starting state.
    #[test]
    fn lane_rng_replays_trial_rng_streams() {
        let t = bernoulli_threshold(Q);
        let mut lanes = LaneRng::new();
        let scalars: Vec<TrialRng> = (0..LANES as u64)
            .map(|l| TrialRng::from_trial(99, l))
            .collect();
        for (l, s) in scalars.iter().enumerate() {
            lanes.set_lane(l, s.state());
        }
        let mut scalars = scalars;
        for _ in 0..512 {
            let mask = lanes.next_sender_mask(t);
            for (l, s) in scalars.iter_mut().enumerate() {
                let expect = s.gen::<f64>() < Q;
                assert_eq!((mask >> l) & 1 == 1, expect, "lane {l}");
            }
        }
    }

    #[test]
    fn vertical_counter_tallies_and_compares() {
        let mut c = VerticalCounter::new();
        let mut reference = [0u64; LANES];
        let mut mask = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..1000 {
            mask = mask.rotate_left(9) ^ 0x5DEE_CE66_D519_B2BAu64;
            c.add(mask);
            for (l, v) in reference.iter_mut().enumerate() {
                *v += (mask >> l) & 1;
            }
        }
        assert_eq!(c.to_array(), reference);
        for probe in [0u64, 1, 250, 500, reference[0]] {
            let mut expect = 0u64;
            for (l, v) in reference.iter().enumerate() {
                expect |= u64::from(*v == probe) << l;
            }
            assert_eq!(c.eq_mask(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn transpose64_matches_naive() {
        let mut m = [0u64; 64];
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for w in m.iter_mut() {
            x = x.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
            *w = x;
        }
        let mut t = m;
        transpose64(&mut t);
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!((t[i] >> j) & 1, (m[j] >> i) & 1, "({i},{j})");
            }
        }
        // An involution: transposing back restores the original.
        transpose64(&mut t);
        assert_eq!(t, m);
    }

    fn lane_message(bits: u32, seed: u64, lane: u64, len: usize) -> (Vec<Symbol>, TrialRng) {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = TrialRng::from_trial(seed, lane);
        let mut msg = Vec::new();
        a.fill_random(&mut rng, &mut msg, len);
        (msg, rng)
    }

    /// Seeds `n` lanes the way the campaign driver does and returns
    /// the per-lane messages for scalar reference runs.
    fn seed_lanes(
        rng: &mut LaneRng,
        bits: u32,
        seed: u64,
        n: usize,
        len: usize,
    ) -> Vec<Vec<Symbol>> {
        let mut msgs = Vec::new();
        for l in 0..n {
            let (msg, mut trial_rng) = lane_message(bits, seed, l as u64, len);
            let sched = TrialRng::seed_from_u64(trial_rng.gen());
            rng.set_lane(l, sched.state());
            msgs.push(msg);
        }
        msgs
    }

    fn scalar_schedule(bits: u32, seed: u64, lane: u64, len: usize) -> BernoulliSchedule<TrialRng> {
        let (_, mut trial_rng) = lane_message(bits, seed, lane, len);
        BernoulliSchedule::new(Q, TrialRng::seed_from_u64(trial_rng.gen())).unwrap()
    }

    #[test]
    fn unsync_lanes_match_scalar_runner() {
        for seed in [1u64, 2, 7] {
            for n in [LANES, 7, 1] {
                let mut rng = LaneRng::new();
                let msgs = seed_lanes(&mut rng, 2, seed, n, LEN);
                let t = bernoulli_threshold(Q);
                let out = run_unsync_lanes(&mut rng, n, LEN, t, MAX_OPS);
                for l in 0..n {
                    let mut sched = scalar_schedule(2, seed, l as u64, LEN);
                    let base = run_unsynchronized(&msgs[l], &mut sched, MAX_OPS).unwrap();
                    assert_eq!(out.ops[l], base.ops as u64, "seed {seed} lane {l}");
                    assert_eq!(out.writes[l], base.writes as u64, "seed {seed} lane {l}");
                    assert_eq!(out.deleted_writes[l], base.deleted_writes as u64);
                    assert_eq!(out.reads[l], base.reads as u64);
                    assert_eq!(out.stale_reads[l], base.stale_reads as u64);
                }
            }
        }
    }

    #[test]
    fn counter_lanes_match_scalar_runner() {
        for seed in [1u64, 2, 7] {
            for n in [LANES, 7, 1] {
                let mut rng = LaneRng::new();
                let msgs = seed_lanes(&mut rng, 3, seed, n, LEN);
                let mut slab = vec![0u16; LANES * LEN];
                for (l, msg) in msgs.iter().enumerate() {
                    for (i, sym) in msg.iter().enumerate() {
                        slab[l * LEN + i] = sym.index() as u16;
                    }
                }
                let t = bernoulli_threshold(Q);
                let out = run_counter_lanes(&mut rng, &slab, n, LEN, t, MAX_OPS);
                for l in 0..n {
                    let mut sched = scalar_schedule(3, seed, l as u64, LEN);
                    let base = run_counter_protocol(&msgs[l], &mut sched, MAX_OPS).unwrap();
                    let errors = base
                        .received
                        .iter()
                        .zip(&msgs[l])
                        .filter(|(r, m)| r != m)
                        .count();
                    assert_eq!(out.ops[l], base.ops as u64, "seed {seed} lane {l}");
                    assert_eq!(out.delivered[l], base.received.len() as u64);
                    assert_eq!(out.stale_fills[l], base.stale_fills as u64);
                    assert_eq!(out.errors[l], errors as u64, "seed {seed} lane {l}");
                }
            }
        }
    }

    #[test]
    fn slotted_lanes_match_scalar_runner() {
        for seed in [1u64, 2, 7] {
            for slot_len in [1usize, 3, 8] {
                for n in [LANES, 7, 1] {
                    let mut rng = LaneRng::new();
                    let msgs = seed_lanes(&mut rng, 2, seed, n, LEN);
                    let t = bernoulli_threshold(Q);
                    let out = run_slotted_lanes(&mut rng, n, LEN, slot_len, t, MAX_OPS);
                    for l in 0..n {
                        let mut sched = scalar_schedule(2, seed, l as u64, LEN);
                        let base = run_slotted(&msgs[l], &mut sched, slot_len, MAX_OPS).unwrap();
                        assert_eq!(out.ops[l], base.ops as u64, "slot {slot_len} lane {l}");
                        assert_eq!(out.writes[l], base.writes as u64);
                        assert_eq!(out.deleted_writes[l], base.deleted_writes as u64);
                        assert_eq!(out.delivered[l], base.received.len() as u64);
                        assert_eq!(out.stale_reads[l], base.stale_reads as u64);
                    }
                }
            }
        }
    }

    /// Lane-order invariance: permuting which trial sits in which
    /// lane permutes the outputs and changes nothing else.
    #[test]
    fn lane_packing_is_invariant() {
        let t = bernoulli_threshold(Q);
        let states: Vec<[u64; 4]> = (0..LANES as u64)
            .map(|l| TrialRng::from_trial(5, l).state())
            .collect();
        let mut fwd = LaneRng::new();
        let mut rev = LaneRng::new();
        for (l, st) in states.iter().enumerate() {
            fwd.set_lane(l, *st);
            rev.set_lane(LANES - 1 - l, *st);
        }
        let a = run_unsync_lanes(&mut fwd, LANES, LEN, t, MAX_OPS);
        let b = run_unsync_lanes(&mut rev, LANES, LEN, t, MAX_OPS);
        for l in 0..LANES {
            let m = LANES - 1 - l;
            assert_eq!(a.ops[l], b.ops[m]);
            assert_eq!(a.writes[l], b.writes[m]);
            assert_eq!(a.deleted_writes[l], b.deleted_writes[m]);
            assert_eq!(a.reads[l], b.reads[m]);
            assert_eq!(a.stale_reads[l], b.stale_reads[m]);
        }
    }

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
    }
}
