//! The unsynchronized baseline: no mechanism at all.
//!
//! The sender writes its next symbol on every operation it gets; the
//! receiver reads on every operation it gets. Scheduling then produces
//! deletions (overwrites) and insertions (stale reads) exactly as §3.1
//! describes. This run *measures* the `P_d` and `P_i` a system induces
//! — the inputs to the paper's estimation recipe.
//!
//! This state machine has a bitsliced twin
//! ([`crate::sim::bitsliced::run_unsync_lanes`], 64 trials per `u64`
//! lane) that must stay in lockstep: any semantic change here needs
//! the mirror change there, and `tests/kernel_equivalence.rs` plus
//! the in-crate bitsliced suite will fail until the two agree
//! bit-for-bit.

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use serde::{Deserialize, Serialize};

/// Ground-truth measurements from an unsynchronized run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnsyncOutcome {
    /// What the receiver collected (stale repeats included).
    pub received: Vec<Symbol>,
    /// Total operations consumed from the schedule.
    pub ops: usize,
    /// Sender operations that wrote a symbol.
    pub writes: usize,
    /// Writes that overwrote an unread symbol — deletions.
    pub deleted_writes: usize,
    /// Receiver operations (every one reads).
    pub reads: usize,
    /// Reads of an already-read value — insertions.
    pub stale_reads: usize,
}

impl UnsyncOutcome {
    /// Empirical deletion probability per write, the `P_d` the paper
    /// says to measure (zero when nothing was written).
    pub fn p_d(&self) -> f64 {
        ratio(self.deleted_writes, self.writes)
    }

    /// Empirical insertion probability per read (zero when nothing
    /// was read).
    pub fn p_i(&self) -> f64 {
        ratio(self.stale_reads, self.reads)
    }

    /// Symbols genuinely delivered (fresh reads).
    pub fn fresh_reads(&self) -> usize {
        self.reads - self.stale_reads
    }

    /// Raw symbol throughput in symbols per operation: fresh reads
    /// over total operations. Note this counts *delivered* symbols,
    /// not *correctly decodable* information — without
    /// synchronization the receiver cannot tell fresh from stale.
    pub fn raw_throughput(&self) -> f64 {
        ratio(self.fresh_reads(), self.ops)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the unsynchronized baseline until the message is fully
/// written and read once more, the schedule ends, or `max_ops`
/// operations elapse.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
///
/// # Example
///
/// A perfectly alternating schedule never deletes or inserts:
///
/// ```
/// use nsc_core::sim::{unsync::run_unsynchronized, RoundRobinSchedule};
/// use nsc_channel::alphabet::Symbol;
///
/// let msg: Vec<Symbol> = (0..10).map(Symbol::from_index).collect();
/// let out = run_unsynchronized(&msg, &mut RoundRobinSchedule::new(), 1000)?;
/// assert_eq!(out.p_d(), 0.0);
/// assert_eq!(out.p_i(), 0.0);
/// assert_eq!(out.received, msg);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn run_unsynchronized<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
) -> Result<UnsyncOutcome, CoreError> {
    run_unsynchronized_observed(message, schedule, max_ops, &mut NullObserver)
}

/// [`run_unsynchronized`], reporting every channel event to `observer`.
///
/// Per tick: an overwriting write emits `Delete(old)` then
/// `Send(new)`; a plain write emits `Send`; a fresh read emits `Recv`
/// and a stale read `Insert`. Observation never touches the schedule
/// or RNG, so the outcome is identical to the unobserved run.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_unsynchronized_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
) -> Result<UnsyncOutcome, CoreError> {
    run_unsynchronized_into(
        message,
        schedule,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_unsynchronized_observed`], reusing `scratch`'s received
/// buffer instead of allocating one. The outcome takes ownership of
/// the buffer; move `outcome.received` back into `scratch.received`
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_unsynchronized_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<UnsyncOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    let mut out = UnsyncOutcome {
        received,
        ops: 0,
        writes: 0,
        deleted_writes: 0,
        reads: 0,
        stale_reads: 0,
    };
    let mut next_to_send = 0usize;
    while out.ops < max_ops {
        // Stop once everything was written and the last write consumed.
        if next_to_send >= message.len() && !mailbox.is_fresh() {
            break;
        }
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender => {
                if next_to_send < message.len() {
                    let sym = message[next_to_send];
                    let old = mailbox.value();
                    if mailbox.write(sym) {
                        out.deleted_writes += 1;
                        observer.observe(SimEvent {
                            tick,
                            kind: SimEventKind::Delete(old),
                        });
                    }
                    out.writes += 1;
                    next_to_send += 1;
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Send(sym),
                    });
                }
                // After the message ends the sender idles.
            }
            Party::Receiver => {
                let (value, fresh) = mailbox.read();
                out.reads += 1;
                if !fresh {
                    out.stale_reads += 1;
                }
                observer.observe(SimEvent {
                    tick,
                    kind: if fresh {
                        SimEventKind::Recv(value)
                    } else {
                        SimEventKind::Insert(value)
                    },
                });
                out.received.push(value);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule, TraceSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index(i as u32 % 4)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        assert!(run_unsynchronized(&[], &mut s, 100).is_err());
        assert!(run_unsynchronized(&msg(5), &mut s, 0).is_err());
    }

    #[test]
    fn alternating_schedule_is_lossless() {
        let m = msg(50);
        let out = run_unsynchronized(&m, &mut RoundRobinSchedule::new(), 10_000).unwrap();
        assert_eq!(out.received, m);
        assert_eq!(out.deleted_writes, 0);
        assert_eq!(out.stale_reads, 0);
        assert_eq!(out.ops, 100);
    }

    #[test]
    fn sender_heavy_schedule_deletes() {
        // Sender twice, receiver once, repeated: every second write
        // overwrites.
        let trace: Vec<Party> = (0..300)
            .map(|i| match i % 3 {
                0 | 1 => Party::Sender,
                _ => Party::Receiver,
            })
            .collect();
        let out = run_unsynchronized(&msg(200), &mut TraceSchedule::new(trace), 10_000).unwrap();
        assert!(out.p_d() > 0.4, "p_d = {}", out.p_d());
        assert_eq!(out.stale_reads, 0);
    }

    #[test]
    fn receiver_heavy_schedule_inserts() {
        let trace: Vec<Party> = (0..300)
            .map(|i| match i % 3 {
                0 => Party::Sender,
                _ => Party::Receiver,
            })
            .collect();
        let out = run_unsynchronized(&msg(100), &mut TraceSchedule::new(trace), 10_000).unwrap();
        assert!(out.p_i() > 0.4, "p_i = {}", out.p_i());
        assert_eq!(out.deleted_writes, 0);
        // Stale repeats lengthen the received stream.
        assert!(out.received.len() > out.fresh_reads());
    }

    #[test]
    fn fair_bernoulli_schedule_has_matching_rates() {
        // With q = 1/2, a write is deleted iff the next effective op
        // is another write: P_d -> 1/2, and symmetrically P_i -> 1/2.
        let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(5)).unwrap();
        let out = run_unsynchronized(&msg(50_000), &mut s, usize::MAX).unwrap();
        assert!((out.p_d() - 0.5).abs() < 0.02, "p_d = {}", out.p_d());
        assert!((out.p_i() - 0.5).abs() < 0.02, "p_i = {}", out.p_i());
    }

    #[test]
    fn conservation_fresh_reads_equal_undeleted_writes() {
        let mut s = BernoulliSchedule::new(0.4, StdRng::seed_from_u64(6)).unwrap();
        let out = run_unsynchronized(&msg(10_000), &mut s, usize::MAX).unwrap();
        // Every written symbol is eventually either overwritten or
        // read fresh (the run ends with the mailbox consumed).
        assert_eq!(out.writes - out.deleted_writes, out.fresh_reads());
    }

    #[test]
    fn ops_budget_is_respected() {
        let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(7)).unwrap();
        let out = run_unsynchronized(&msg(1_000_000), &mut s, 500).unwrap();
        assert_eq!(out.ops, 500);
    }

    #[test]
    fn observer_sees_ground_truth_counts() {
        use crate::sim::{EventRecorder, SimEventKind};
        let m = msg(5_000);
        let mut rec = EventRecorder::default();
        let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(13)).unwrap();
        let out = run_unsynchronized_observed(&m, &mut s, usize::MAX, &mut rec).unwrap();
        // Observation is passive: same outcome as the unobserved run.
        let mut s2 = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(13)).unwrap();
        assert_eq!(out, run_unsynchronized(&m, &mut s2, usize::MAX).unwrap());
        let count = |f: fn(&SimEventKind) -> bool| rec.events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, SimEventKind::Send(_))), out.writes);
        assert_eq!(
            count(|k| matches!(k, SimEventKind::Delete(_))),
            out.deleted_writes
        );
        assert_eq!(
            count(|k| matches!(k, SimEventKind::Insert(_))),
            out.stale_reads
        );
        assert_eq!(
            count(|k| matches!(k, SimEventKind::Recv(_))),
            out.fresh_reads()
        );
        // Ticks are non-decreasing.
        assert!(rec.events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn exhausted_trace_stops_run() {
        let out = run_unsynchronized(
            &msg(100),
            &mut TraceSchedule::new(vec![Party::Sender, Party::Receiver]),
            10_000,
        )
        .unwrap();
        assert_eq!(out.ops, 2);
        assert_eq!(out.received.len(), 1);
    }
}
