//! Figure 3(b)/Figure 4's synchronization mechanism: a common event
//! source.
//!
//! Both parties observe a shared event counter `E` (e.g. a
//! self-incrementing clock) and agree on a slotted discipline: the
//! sender writes during even slots, the receiver reads during odd
//! slots, at most once per slot. Unlike feedback, `E` tells neither
//! party what the *other* actually did: if the scheduler never ran
//! the sender during its slot, the receiver's next read is stale
//! (insertion); if the receiver missed its slot, the sender's next
//! write overwrites (deletion). §4.2.2 argues such a mechanism can
//! never beat perfect feedback — experiment E7 measures the gap.
//!
//! This state machine has a bitsliced twin
//! ([`crate::sim::bitsliced::run_slotted_lanes`], 64 trials per
//! `u64` lane) that must stay in lockstep: any semantic change here
//! needs the mirror change there, and `tests/kernel_equivalence.rs`
//! plus the in-crate bitsliced suite will fail until the two agree
//! bit-for-bit.

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Measurements from a slotted (common-event-source) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlottedOutcome {
    /// One entry per receiver *read slot* that the receiver serviced:
    /// the value it read (it cannot tell fresh from stale).
    pub received: Vec<Symbol>,
    /// Total operations consumed (each advances the event counter by
    /// one: operations are the time base).
    pub ops: usize,
    /// Writes that overwrote an unread symbol (deletions).
    pub deleted_writes: usize,
    /// Reads of an already-read value (insertions).
    pub stale_reads: usize,
    /// Sender slots in which the sender never got an operation.
    pub missed_send_slots: usize,
    /// Receiver slots in which the receiver never got an operation.
    pub missed_read_slots: usize,
    /// Total writes performed.
    pub writes: usize,
}

impl SlottedOutcome {
    /// Delivered read-slot values per operation.
    pub fn symbols_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.ops as f64
        }
    }

    /// Fraction of receiver readings that were stale.
    pub fn stale_fraction(&self) -> f64 {
        if self.received.is_empty() {
            0.0
        } else {
            self.stale_reads as f64 / self.received.len() as f64
        }
    }

    /// Reliable rate in bits per operation, charging stale reads as
    /// M-ary symmetric substitutions (same accounting as the counter
    /// protocol, so mechanisms are comparable).
    pub fn reliable_rate(&self, bits: u32) -> BitsPerTick {
        let e = crate::bounds::alpha(bits) * self.stale_fraction();
        let per_symbol = nsc_channel::dmc::closed_form::mary_symmetric(bits, e);
        BitsPerTick(per_symbol * self.symbols_per_op())
    }
}

/// Runs the slotted discipline with slots of `slot_len` operations:
/// slot `2k` is a send slot, slot `2k + 1` a read slot. Runs until the
/// message is exhausted *and* read, the schedule ends, or `max_ops`
/// operations elapse.
///
/// Longer slots make it likelier that each party gets at least one
/// operation inside its slot (fewer deletions/insertions) but
/// halve-per-`slot_len` the raw symbol rate — the trade-off the
/// experiment harness sweeps.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty,
/// `slot_len` is zero, or `max_ops` is zero.
pub fn run_slotted<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    slot_len: usize,
    max_ops: usize,
) -> Result<SlottedOutcome, CoreError> {
    run_slotted_observed(message, schedule, slot_len, max_ops, &mut NullObserver)
}

/// [`run_slotted`], reporting every channel event to `observer`: an
/// overwriting write emits `Delete(old)` then `Send(new)`, a fresh
/// read `Recv`, a stale read `Insert`. The event counter is common
/// knowledge, not feedback, so no `Ack` events occur.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty,
/// `slot_len` is zero, or `max_ops` is zero.
pub fn run_slotted_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    slot_len: usize,
    max_ops: usize,
    observer: &mut O,
) -> Result<SlottedOutcome, CoreError> {
    run_slotted_into(
        message,
        schedule,
        slot_len,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_slotted_observed`], reusing `scratch`'s received buffer
/// instead of allocating one. The outcome takes ownership of the
/// buffer; move `outcome.received` back into `scratch.received`
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty,
/// `slot_len` is zero, or `max_ops` is zero.
pub fn run_slotted_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    slot_len: usize,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<SlottedOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if slot_len == 0 {
        return Err(CoreError::BadSimulation("slot_len is zero".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    let mut out = SlottedOutcome {
        received,
        ops: 0,
        deleted_writes: 0,
        stale_reads: 0,
        missed_send_slots: 0,
        missed_read_slots: 0,
        writes: 0,
    };
    let mut next_to_send = 0usize;
    // Per-slot "already acted" flags, reset at slot boundaries.
    let mut acted_this_slot = false;
    let mut current_slot = 0usize;
    while out.ops < max_ops && next_to_send < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        let slot = out.ops / slot_len;
        let is_send_slot = slot.is_multiple_of(2);
        if slot != current_slot {
            // Account for slots that elapsed without their owner
            // acting (slot may jump by more than one only at loop
            // granularity of 1 op, so this fires per boundary).
            if !acted_this_slot {
                if current_slot.is_multiple_of(2) {
                    out.missed_send_slots += 1;
                } else {
                    out.missed_read_slots += 1;
                }
            }
            acted_this_slot = false;
            current_slot = slot;
        }
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender if is_send_slot && !acted_this_slot => {
                let sym = message[next_to_send];
                let old = mailbox.value();
                if mailbox.write(sym) {
                    out.deleted_writes += 1;
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Delete(old),
                    });
                }
                out.writes += 1;
                next_to_send += 1;
                observer.observe(SimEvent {
                    tick,
                    kind: SimEventKind::Send(sym),
                });
                acted_this_slot = true;
            }
            Party::Receiver if !is_send_slot && !acted_this_slot => {
                let (value, fresh) = mailbox.read();
                if !fresh {
                    out.stale_reads += 1;
                }
                observer.observe(SimEvent {
                    tick,
                    kind: if fresh {
                        SimEventKind::Recv(value)
                    } else {
                        SimEventKind::Insert(value)
                    },
                });
                out.received.push(value);
                acted_this_slot = true;
            }
            _ => {
                // Off-slot or already-acted operations are wasted —
                // the cost of slotting.
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index(i as u32 % 4)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        assert!(run_slotted(&[], &mut s, 1, 10).is_err());
        assert!(run_slotted(&msg(5), &mut s, 0, 10).is_err());
        assert!(run_slotted(&msg(5), &mut s, 1, 0).is_err());
    }

    #[test]
    fn alternating_schedule_slot1_is_clean() {
        // Round-robin starting with the sender aligns perfectly with
        // slot_len = 1: sender slot gets a sender op, receiver slot a
        // receiver op.
        let m = msg(100);
        let out = run_slotted(&m, &mut RoundRobinSchedule::new(), 1, 10_000).unwrap();
        assert_eq!(out.deleted_writes, 0);
        assert_eq!(out.stale_reads, 0);
        assert_eq!(out.received.len(), m.len() - 1);
        assert!(out.received.iter().zip(&m).all(|(a, b)| a == b));
    }

    #[test]
    fn longer_slots_reduce_error_rates() {
        let mut stale_fracs = Vec::new();
        for slot_len in [1usize, 2, 4, 8, 16] {
            let m = msg(5_000);
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(5)).unwrap();
            let out = run_slotted(&m, &mut sched, slot_len, usize::MAX).unwrap();
            stale_fracs.push(out.stale_fraction());
        }
        // Stale fraction shrinks as slots lengthen.
        assert!(
            stale_fracs.windows(2).all(|w| w[1] <= w[0] + 0.02),
            "{stale_fracs:?}"
        );
        assert!(stale_fracs[0] > 0.2);
        assert!(*stale_fracs.last().unwrap() < 0.05);
    }

    #[test]
    fn longer_slots_reduce_raw_rate() {
        let mut rates = Vec::new();
        for slot_len in [1usize, 4, 16] {
            let m = msg(5_000);
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(6)).unwrap();
            let out = run_slotted(&m, &mut sched, slot_len, usize::MAX).unwrap();
            rates.push(out.symbols_per_op());
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
    }

    #[test]
    fn deletions_happen_when_reader_misses_slots() {
        // Heavily sender-biased schedule: receiver often misses its
        // slot, so the sender overwrites.
        let m = msg(5_000);
        let mut sched = BernoulliSchedule::new(0.95, StdRng::seed_from_u64(7)).unwrap();
        let out = run_slotted(&m, &mut sched, 2, usize::MAX).unwrap();
        assert!(out.deleted_writes > 0);
        assert!(out.missed_read_slots > 0);
    }

    #[test]
    fn reliable_rate_monotone_tradeoff_has_interior_optimum_or_boundary() {
        // The reliable rate combines the two effects; just check it is
        // finite, non-negative and not identically zero across slot
        // lengths.
        let mut any_positive = false;
        for slot_len in [1usize, 2, 4, 8] {
            let m = msg(4_000);
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(8)).unwrap();
            let out = run_slotted(&m, &mut sched, slot_len, usize::MAX).unwrap();
            let r = out.reliable_rate(2).value();
            assert!(r.is_finite() && r >= 0.0);
            if r > 0.0 {
                any_positive = true;
            }
        }
        assert!(any_positive);
    }

    #[test]
    fn budget_respected() {
        let m = msg(1_000_000);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(9)).unwrap();
        let out = run_slotted(&m, &mut sched, 4, 333).unwrap();
        assert_eq!(out.ops, 333);
    }
}
