//! Torn writes: the mechanistic origin of `P_s`.
//!
//! §3.1 gives deletions and insertions mechanistic origins (scheduler
//! interleavings). Definition 1's fourth parameter — the substitution
//! probability `P_s` — also has one in real systems: a *wide* shared
//! variable (several flags, a multi-word region, separate cache
//! lines) cannot be written atomically by a process that is
//! descheduled between stores. If the receiver samples mid-update it
//! observes a **torn symbol**: part old value, part new. This module
//! simulates that channel, completing the story that every Definition
//! 1 parameter is scheduler-induced.
//!
//! The sender needs one operation per *bit*; the receiver reads the
//! whole region in one operation. Events map onto Definition 1 as:
//! a fully-written symbol read once = transmission; read mid-write =
//! transmission with substitution (torn); overwritten before any read
//! = deletion; re-read = insertion.

use crate::error::CoreError;
use crate::sim::{
    NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::{Alphabet, Symbol};
use serde::{Deserialize, Serialize};

/// Measurements from a wide-variable (torn-write) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WideOutcome {
    /// What the receiver sampled, in order (torn values included).
    pub received: Vec<Symbol>,
    /// Ground truth per received sample: the index of the message
    /// symbol most recently *started* by the sender, and whether the
    /// read was torn (mid-update) or a stale repeat.
    pub sample_truth: Vec<SampleKind>,
    /// Total operations consumed.
    pub ops: usize,
    /// Message symbols whose writes completed.
    pub symbols_written: usize,
    /// Message symbols never observed by any read (deletions).
    pub deletions: usize,
}

/// What a receiver sample actually was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleKind {
    /// A clean read of a fully-written symbol, first time.
    Clean {
        /// Index of the message symbol observed.
        index: usize,
    },
    /// A read taken while the sender was mid-update: bits mix the
    /// incoming symbol with the previous contents.
    Torn {
        /// Index of the message symbol being written.
        index: usize,
    },
    /// A re-read with no intervening completed write (insertion).
    Stale,
}

impl WideOutcome {
    /// Fraction of samples that were torn — the measured mechanistic
    /// `P_s`.
    pub fn torn_rate(&self) -> f64 {
        if self.sample_truth.is_empty() {
            return 0.0;
        }
        let torn = self
            .sample_truth
            .iter()
            .filter(|k| matches!(k, SampleKind::Torn { .. }))
            .count();
        torn as f64 / self.sample_truth.len() as f64
    }

    /// Fraction of samples that were stale repeats (insertions).
    pub fn stale_rate(&self) -> f64 {
        if self.sample_truth.is_empty() {
            return 0.0;
        }
        let stale = self
            .sample_truth
            .iter()
            .filter(|k| matches!(k, SampleKind::Stale))
            .count();
        stale as f64 / self.sample_truth.len() as f64
    }

    /// Deletion rate per written symbol.
    pub fn deletion_rate(&self) -> f64 {
        if self.symbols_written == 0 {
            0.0
        } else {
            self.deletions as f64 / self.symbols_written as f64
        }
    }
}

/// Runs the unsynchronized wide-variable channel: the sender writes
/// `message` one *bit per operation* into a `bits`-wide region; the
/// receiver snapshots the region on each of its operations.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message, a
/// symbol outside the `bits`-wide alphabet, or zero `max_ops`.
pub fn run_wide_unsynchronized<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    bits: u32,
    schedule: &mut S,
    max_ops: usize,
) -> Result<WideOutcome, CoreError> {
    run_wide_unsynchronized_observed(message, bits, schedule, max_ops, &mut NullObserver)
}

/// [`run_wide_unsynchronized`], reporting every channel event to
/// `observer`: `Send` when a symbol's last bit lands (the write
/// *completes*), `Delete` when an unread completed symbol starts
/// being overwritten, `Recv` for clean *and torn* samples (a torn
/// sample is a delivered-but-substituted symbol — `nsc-trace/v1` has
/// no substitution kind), and `Insert` for stale re-reads.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message, a
/// symbol outside the `bits`-wide alphabet, or zero `max_ops`.
pub fn run_wide_unsynchronized_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    bits: u32,
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
) -> Result<WideOutcome, CoreError> {
    run_wide_unsynchronized_into(
        message,
        bits,
        schedule,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_wide_unsynchronized_observed`], reusing `scratch`'s
/// received, sample-truth and bit-region buffers instead of
/// allocating them. The region is restored to the scratch before
/// returning; the outcome takes ownership of the other two — move
/// `outcome.received` / `outcome.sample_truth` back into the scratch
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message, a
/// symbol outside the `bits`-wide alphabet, or zero `max_ops`.
pub fn run_wide_unsynchronized_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    bits: u32,
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<WideOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let alphabet = Alphabet::new(bits).map_err(|e| CoreError::BadSimulation(e.to_string()))?;
    for &s in message {
        if !alphabet.contains(s) {
            // nsc-lint: allow(hot-alloc, reason = "cold validation path: a bad symbol aborts the trial before the op loop starts")
            return Err(CoreError::BadSimulation(format!(
                "symbol {s} outside the {bits}-bit alphabet"
            )));
        }
    }
    let width = bits as usize;
    let mut region = std::mem::take(&mut scratch.region);
    region.clear();
    region.resize(width, false);
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut sample_truth = std::mem::take(&mut scratch.sample_truth);
    sample_truth.clear();
    let mut out = WideOutcome {
        received,
        sample_truth,
        ops: 0,
        symbols_written: 0,
        deletions: 0,
    };
    // Sender cursor: which message symbol, and the next bit to store.
    let mut sym_idx = 0usize;
    let mut bit_idx = 0usize;
    // Per in-flight symbol: has any read observed it since completion?
    let mut observed_current = true; // nothing written yet
    let mut completed_index: Option<usize> = None;
    while out.ops < max_ops && sym_idx < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender => {
                if bit_idx == 0 && completed_index.is_some() && !observed_current {
                    // Starting to overwrite a never-read symbol.
                    out.deletions += 1;
                    if let Some(idx) = completed_index {
                        observer.observe(SimEvent {
                            tick,
                            kind: SimEventKind::Delete(message[idx]),
                        });
                    }
                }
                region[bit_idx] = message[sym_idx].bit(bit_idx as u32);
                bit_idx += 1;
                if bit_idx == width {
                    bit_idx = 0;
                    completed_index = Some(sym_idx);
                    observed_current = false;
                    out.symbols_written += 1;
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Send(message[sym_idx]),
                    });
                    sym_idx += 1;
                }
            }
            Party::Receiver => {
                let mut value = 0u32;
                for (i, &b) in region.iter().enumerate() {
                    if b {
                        value |= 1 << i;
                    }
                }
                let sample = Symbol::from_index(value);
                out.received.push(sample);
                let kind = if bit_idx != 0 {
                    SampleKind::Torn { index: sym_idx }
                } else if let Some(idx) = completed_index {
                    if observed_current {
                        SampleKind::Stale
                    } else {
                        observed_current = true;
                        SampleKind::Clean { index: idx }
                    }
                } else {
                    SampleKind::Stale
                };
                observer.observe(SimEvent {
                    tick,
                    kind: if matches!(kind, SampleKind::Stale) {
                        SimEventKind::Insert(sample)
                    } else {
                        SimEventKind::Recv(sample)
                    },
                });
                out.sample_truth.push(kind);
            }
        }
    }
    scratch.region = region;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BernoulliSchedule, TraceSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    #[test]
    fn validation() {
        let mut s = TraceSchedule::new(vec![Party::Sender]);
        assert!(run_wide_unsynchronized(&[], 4, &mut s, 10).is_err());
        assert!(run_wide_unsynchronized(&[Symbol::from_index(99)], 4, &mut s, 10).is_err());
        assert!(run_wide_unsynchronized(&[Symbol::from_index(1)], 4, &mut s, 0).is_err());
    }

    #[test]
    fn atomic_interleaving_is_clean() {
        // Sender gets exactly `width` consecutive ops, then the
        // receiver reads: no tears, no stales, no deletions.
        let bits = 4u32;
        let m = msg(bits, 50, 1);
        let trace: Vec<Party> = (0..50)
            .flat_map(|_| {
                std::iter::repeat_n(Party::Sender, bits as usize)
                    .chain(std::iter::once(Party::Receiver))
            })
            .collect();
        let mut sched = TraceSchedule::new(trace);
        let out = run_wide_unsynchronized(&m, bits, &mut sched, usize::MAX).unwrap();
        assert_eq!(out.torn_rate(), 0.0);
        assert_eq!(out.stale_rate(), 0.0);
        assert_eq!(out.deletions, 0);
        // Every clean read matches the message.
        for (value, kind) in out.received.iter().zip(&out.sample_truth) {
            if let SampleKind::Clean { index } = kind {
                assert_eq!(*value, m[*index]);
            }
        }
    }

    #[test]
    fn interleaved_reads_observe_tears() {
        // Receiver reads after every sender op: most samples are torn.
        let bits = 4u32;
        let m = msg(bits, 200, 2);
        let trace: Vec<Party> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    Party::Sender
                } else {
                    Party::Receiver
                }
            })
            .collect();
        let mut sched = TraceSchedule::new(trace);
        let out = run_wide_unsynchronized(&m, bits, &mut sched, usize::MAX).unwrap();
        assert!(out.torn_rate() > 0.5, "torn = {}", out.torn_rate());
        // Torn values really are mixtures: every torn sample's value
        // combines the in-flight prefix with old suffix bits — verify
        // it is at least *sometimes* unequal to both neighbours.
        let mut impossible = 0;
        for (value, kind) in out.received.iter().zip(&out.sample_truth) {
            if let SampleKind::Torn { index } = kind {
                let cur = m[*index];
                let prev = if *index > 0 {
                    Some(m[*index - 1])
                } else {
                    None
                };
                if Some(*value) != prev && *value != cur {
                    impossible += 1;
                }
            }
        }
        assert!(impossible > 0, "expected genuinely torn values");
    }

    #[test]
    fn wider_symbols_tear_more() {
        let mut torn = Vec::new();
        for bits in [1u32, 2, 4, 8] {
            let m = msg(bits, 3000, 3);
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(4)).unwrap();
            let out = run_wide_unsynchronized(&m, bits, &mut sched, usize::MAX).unwrap();
            torn.push(out.torn_rate());
        }
        assert!(
            torn.windows(2).all(|w| w[1] >= w[0] - 0.02),
            "torn rates {torn:?}"
        );
        assert!(torn[3] > torn[0] + 0.1, "torn rates {torn:?}");
    }

    #[test]
    fn single_bit_region_never_tears() {
        let m = msg(1, 2000, 5);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(6)).unwrap();
        let out = run_wide_unsynchronized(&m, 1, &mut sched, usize::MAX).unwrap();
        assert_eq!(out.torn_rate(), 0.0);
        // It still deletes and inserts like the narrow channel.
        assert!(out.deletion_rate() > 0.1);
        assert!(out.stale_rate() > 0.1);
    }

    #[test]
    fn rates_partition_the_samples() {
        let m = msg(4, 2000, 7);
        let mut sched = BernoulliSchedule::new(0.4, StdRng::seed_from_u64(8)).unwrap();
        let out = run_wide_unsynchronized(&m, 4, &mut sched, usize::MAX).unwrap();
        let clean = out
            .sample_truth
            .iter()
            .filter(|k| matches!(k, SampleKind::Clean { .. }))
            .count() as f64
            / out.sample_truth.len() as f64;
        assert!((clean + out.torn_rate() + out.stale_rate() - 1.0).abs() < 1e-12);
        assert_eq!(out.received.len(), out.sample_truth.len());
    }
}
