//! Closed-form predictions for the mechanistic runners under
//! memoryless (Bernoulli-`q`) scheduling.
//!
//! Every quantity the simulators in this module's siblings *measure*
//! can be predicted analytically when the operation schedule is
//! i.i.d. with sender probability `q`. Keeping the two side by side
//! turns the experiment harness's agreement checks into genuine
//! theory-vs-implementation tests:
//!
//! * unsynchronized (§3.1): a write is overwritten iff the next
//!   operation is another write, so `P_d = q`; symmetrically
//!   `P_i = 1 − q`.
//! * counter protocol (Appendix A): every receiver operation fills a
//!   position, so positions fill at rate `1 − q` per operation; a
//!   position is fresh iff the operation before it was the sender's
//!   catch-up write, which happens with probability `q` — so the
//!   stale fraction is `1 − q`, the converted-channel error is
//!   `α·(1 − q)` (Figure 5), and the reliable rate is
//!   `(1 − q) · C_mary(N, α(1 − q))`.
//! * Figure 1 handshake: each symbol needs one geometric(q) wait for
//!   the write plus one geometric(1 − q) wait for the read —
//!   `1/q + 1/(1 − q)` operations per symbol, i.e. a rate of
//!   `N·q·(1 − q)` bits per operation.
//! * fixed slotting (Figure 3(b)) with slot length `L`: a party
//!   misses its slot with probability `q^L` (receiver) or
//!   `(1 − q)^L` (sender); a renewal argument over missed slots gives
//!   the exact stale fraction below.

use crate::bounds::alpha;
use crate::error::{check_prob, CoreError};
use nsc_channel::dmc::closed_form;

/// Predicted unsynchronized deletion rate per write: `P_d = q`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn unsync_p_d(q: f64) -> Result<f64, CoreError> {
    check_prob("q", q)
}

/// Predicted unsynchronized insertion rate per read: `P_i = 1 − q`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn unsync_p_i(q: f64) -> Result<f64, CoreError> {
    Ok(1.0 - check_prob("q", q)?)
}

/// Predicted counter-protocol stale-fill fraction: `1 − q`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn counter_stale_fraction(q: f64) -> Result<f64, CoreError> {
    Ok(1.0 - check_prob("q", q)?)
}

/// Predicted counter-protocol symbol error rate: `α(N)·(1 − q)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn counter_error_rate(bits: u32, q: f64) -> Result<f64, CoreError> {
    Ok(alpha(bits) * counter_stale_fraction(q)?)
}

/// Predicted counter-protocol reliable rate in bits per operation:
/// `(1 − q) · C_mary(N, α(1 − q))`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn counter_reliable_rate(bits: u32, q: f64) -> Result<f64, CoreError> {
    let stale = counter_stale_fraction(q)?;
    Ok((1.0 - q) * closed_form::mary_symmetric(bits, alpha(bits) * stale))
}

/// Predicted Figure 1 handshake cost: `1/q + 1/(1 − q)` operations
/// per symbol.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability, and [`CoreError::BadSimulation`] at the degenerate
/// endpoints `q ∈ {0, 1}` (one party never runs).
pub fn stop_wait_ops_per_symbol(q: f64) -> Result<f64, CoreError> {
    check_prob("q", q)?;
    if q == 0.0 || q == 1.0 {
        return Err(CoreError::BadSimulation(
            "a party never runs at q = 0 or q = 1".to_owned(),
        ));
    }
    Ok(1.0 / q + 1.0 / (1.0 - q))
}

/// Predicted Figure 1 handshake rate: `N · q · (1 − q)` bits per
/// operation (the reciprocal of [`stop_wait_ops_per_symbol`] times
/// `N`).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability.
pub fn stop_wait_rate(bits: u32, q: f64) -> Result<f64, CoreError> {
    check_prob("q", q)?;
    Ok(bits as f64 * q * (1.0 - q))
}

/// Predicted fixed-slotting stale fraction for slot length `L`.
///
/// Per cycle the sender writes with probability
/// `p_w = 1 − (1 − q)^L` and the receiver reads with probability
/// `p_r = 1 − q^L`. A read is stale iff no write happened since the
/// previous read; with `G` (geometric, success `p_r`) send slots
/// between consecutive reads, the renewal average is
/// `p_r (1 − p_w) / (1 − (1 − p_r)(1 − p_w))`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `q` is not a
/// probability, and [`CoreError::BadSimulation`] when `slot_len` is
/// zero.
pub fn slotted_stale_fraction(q: f64, slot_len: usize) -> Result<f64, CoreError> {
    check_prob("q", q)?;
    if slot_len == 0 {
        return Err(CoreError::BadSimulation("slot_len is zero".to_owned()));
    }
    let p_w = 1.0 - (1.0 - q).powi(slot_len as i32);
    let p_r = 1.0 - q.powi(slot_len as i32);
    let denom = 1.0 - (1.0 - p_r) * (1.0 - p_w);
    if denom <= 0.0 {
        // q in {0, 1}: one party never acts; every read (if any) is
        // stale.
        return Ok(1.0);
    }
    Ok(p_r * (1.0 - p_w) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::counter::run_counter_protocol;
    use crate::sim::slotted::run_slotted;
    use crate::sim::stop_wait::run_stop_and_wait;
    use crate::sim::unsync::run_unsynchronized;
    use crate::sim::BernoulliSchedule;
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    fn sched(q: f64, seed: u64) -> BernoulliSchedule<StdRng> {
        BernoulliSchedule::new(q, StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(unsync_p_d(1.5).is_err());
        assert!(counter_reliable_rate(4, -0.1).is_err());
        assert!(stop_wait_ops_per_symbol(0.0).is_err());
        assert!(stop_wait_ops_per_symbol(1.0).is_err());
        assert!(slotted_stale_fraction(0.5, 0).is_err());
    }

    #[test]
    fn unsync_predictions_match_simulation() {
        for &q in &[0.3, 0.5, 0.7] {
            let m = msg(1, 40_000, 1);
            let mut s = sched(q, 2);
            let out = run_unsynchronized(&m, &mut s, usize::MAX).unwrap();
            assert!(
                (out.p_d() - unsync_p_d(q).unwrap()).abs() < 0.02,
                "q = {q}: {} vs {}",
                out.p_d(),
                q
            );
            assert!((out.p_i() - unsync_p_i(q).unwrap()).abs() < 0.02, "q = {q}");
        }
    }

    #[test]
    fn counter_predictions_match_simulation() {
        let bits = 4u32;
        for &q in &[0.35, 0.5, 0.65] {
            let m = msg(bits, 40_000, 3);
            let mut s = sched(q, 4);
            let out = run_counter_protocol(&m, &mut s, usize::MAX).unwrap();
            let stale = out.stale_fills as f64 / out.received.len() as f64;
            assert!(
                (stale - counter_stale_fraction(q).unwrap()).abs() < 0.02,
                "q = {q}"
            );
            assert!(
                (out.symbol_error_rate(&m) - counter_error_rate(bits, q).unwrap()).abs() < 0.02,
                "q = {q}"
            );
            assert!(
                (out.reliable_rate(bits, &m).value() - counter_reliable_rate(bits, q).unwrap())
                    .abs()
                    < 0.03,
                "q = {q}"
            );
        }
    }

    #[test]
    fn stop_wait_predictions_match_simulation() {
        let bits = 4u32;
        for &q in &[0.25, 0.5, 0.75] {
            let m = msg(bits, 20_000, 5);
            let mut s = sched(q, 6);
            let out = run_stop_and_wait(&m, &mut s, usize::MAX).unwrap();
            let ops_per = out.ops as f64 / out.received.len() as f64;
            assert!(
                (ops_per - stop_wait_ops_per_symbol(q).unwrap()).abs() < 0.1,
                "q = {q}"
            );
            assert!(
                (out.rate(bits).value() - stop_wait_rate(bits, q).unwrap()).abs() < 0.03,
                "q = {q}"
            );
        }
    }

    #[test]
    fn slotted_stale_prediction_tracks_simulation() {
        let q = 0.5;
        for &slot_len in &[2usize, 4, 8] {
            let m = msg(2, 10_000, 7);
            let mut s = sched(q, 8);
            let out = run_slotted(&m, &mut s, slot_len, usize::MAX).unwrap();
            let predicted = slotted_stale_fraction(q, slot_len).unwrap();
            assert!(
                (out.stale_fraction() - predicted).abs() < 0.05,
                "L = {slot_len}: {} vs {predicted}",
                out.stale_fraction()
            );
        }
    }

    #[test]
    fn counter_rate_peaks_at_interior_q() {
        // The analytic rate is zero at both endpoints and positive
        // inside: the attacker wants the receiver scheduled often but
        // not exclusively.
        let ends = [counter_reliable_rate(4, 0.0).unwrap(), {
            // q = 1: stale = 0, but receiver never runs — symbols/op
            // term (1 - q) vanishes.
            counter_reliable_rate(4, 1.0).unwrap()
        }];
        let mid = counter_reliable_rate(4, 0.6).unwrap();
        assert!(mid > ends[0] - 1e-12 && mid > ends[1]);
    }
}
