//! Mechanistic simulation of a shared-resource covert channel.
//!
//! §3.1 of the paper motivates non-synchrony with a uniprocessor: the
//! sender writes a shared variable, the receiver reads it, and *the
//! scheduler* decides who runs. If the sender runs twice before the
//! receiver, a symbol is overwritten (**deletion**); if the receiver
//! runs twice before the sender, it re-reads a stale value
//! (**insertion**).
//!
//! This module reifies that mechanism:
//!
//! * [`Party`] / [`OpSchedule`] — who gets the next operation
//!   opportunity. [`BernoulliSchedule`] models a memoryless scheduler;
//!   [`TraceSchedule`] replays a concrete trace (e.g. produced by the
//!   `nsc-sched` crate's OS-scheduler simulator); [`RoundRobinSchedule`]
//!   alternates perfectly.
//! * [`Mailbox`] — the shared variable, which knows whether its
//!   current value has been read (so the simulation can log
//!   ground-truth deletion/insertion events).
//! * Protocol runners, one per synchronization mechanism in the
//!   paper:
//!   [`unsync::run_unsynchronized`] (no mechanism — measures
//!   `P_d`/`P_i`), [`counter::run_counter_protocol`] (Appendix A's
//!   feedback protocol, Theorem 5),
//!   [`stop_wait::run_stop_and_wait`] (Figure 1's two-sync-variable
//!   handshake), [`slotted::run_slotted`] (Figure 3(b)'s common
//!   event source) and [`adaptive::run_adaptive_slotted`]
//!   (Figure 4(b): an event source with feedback into it).
//! * Ablation runners: [`noisy_feedback::run_noisy_counter`]
//!   (imperfect feedback) and [`wide::run_wide_unsynchronized`]
//!   (torn writes — the mechanistic origin of `P_s`).
//! * Closed-form predictions for all of the above under Bernoulli
//!   scheduling ([`analysis`]), so theory-vs-simulation agreement is
//!   itself tested.

pub mod adaptive;
pub mod analysis;
pub mod bitsliced;
pub mod counter;
pub mod noisy_feedback;
pub mod slotted;
pub mod stop_wait;
pub mod unsync;
pub mod wide;

use nsc_channel::alphabet::Symbol;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The two communicating subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// The (high) process leaking information.
    Sender,
    /// The (low) process receiving it.
    Receiver,
}

/// A source of operation opportunities: which party runs next.
///
/// Implementations model the system's scheduler from the covert
/// pair's point of view. `None` means the schedule is exhausted (e.g.
/// a finite trace ran out).
pub trait OpSchedule {
    /// The party granted the next operation, or `None` when the
    /// schedule has ended.
    fn next_op(&mut self) -> Option<Party>;
}

/// Memoryless scheduler: each operation goes to the sender with
/// probability `q`, independently.
///
/// # Example
///
/// ```
/// use nsc_core::sim::{BernoulliSchedule, OpSchedule, Party};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut s = BernoulliSchedule::new(1.0, StdRng::seed_from_u64(0)).unwrap();
/// assert_eq!(s.next_op(), Some(Party::Sender));
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliSchedule<R> {
    sender_prob: f64,
    rng: R,
}

impl<R: Rng> BernoulliSchedule<R> {
    /// Creates a memoryless schedule granting the sender each
    /// operation with probability `sender_prob`.
    ///
    /// Returns `None`-never; the schedule is infinite.
    ///
    /// # Errors
    ///
    /// Returns `None` (as `Option`) — rather, this constructor returns
    /// `Option<Self>`: `None` when `sender_prob` is not a probability.
    pub fn new(sender_prob: f64, rng: R) -> Option<Self> {
        if sender_prob.is_finite() && (0.0..=1.0).contains(&sender_prob) {
            Some(BernoulliSchedule { sender_prob, rng })
        } else {
            None
        }
    }

    /// The sender-operation probability.
    pub fn sender_prob(&self) -> f64 {
        self.sender_prob
    }
}

impl<R: Rng> OpSchedule for BernoulliSchedule<R> {
    fn next_op(&mut self) -> Option<Party> {
        Some(if self.rng.gen::<f64>() < self.sender_prob {
            Party::Sender
        } else {
            Party::Receiver
        })
    }
}

/// Replays a fixed operation trace (ends when the trace does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSchedule {
    ops: Vec<Party>,
    next: usize,
}

impl TraceSchedule {
    /// Creates a schedule that replays `ops` once.
    pub fn new(ops: Vec<Party>) -> Self {
        TraceSchedule { ops, next: 0 }
    }

    /// Remaining operations.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.next
    }
}

impl OpSchedule for TraceSchedule {
    fn next_op(&mut self) -> Option<Party> {
        let op = self.ops.get(self.next).copied();
        if op.is_some() {
            self.next += 1;
        }
        op
    }
}

impl FromIterator<Party> for TraceSchedule {
    fn from_iter<T: IntoIterator<Item = Party>>(iter: T) -> Self {
        TraceSchedule::new(iter.into_iter().collect())
    }
}

/// Perfect alternation sender/receiver/sender/… — the synchronous
/// ideal that traditional capacity estimation implicitly assumes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinSchedule {
    next_is_sender: bool,
}

impl RoundRobinSchedule {
    /// Creates an alternating schedule starting with the sender.
    pub fn new() -> Self {
        RoundRobinSchedule {
            next_is_sender: true,
        }
    }
}

impl OpSchedule for RoundRobinSchedule {
    fn next_op(&mut self) -> Option<Party> {
        let p = if self.next_is_sender {
            Party::Sender
        } else {
            Party::Receiver
        };
        self.next_is_sender = !self.next_is_sender;
        Some(p)
    }
}

/// The shared variable through which the covert pair communicates.
///
/// The mailbox tracks whether its current value has been read, so the
/// *simulation* can log ground-truth overwrite/stale-read events. The
/// communicating parties must not peek at [`Mailbox::is_fresh`] unless
/// the modelled mechanism provides that information (e.g. the
/// Figure 1 handshake's sync variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mailbox {
    value: Symbol,
    fresh: bool,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox {
            value: Symbol::from_index(0),
            fresh: false,
        }
    }
}

impl Mailbox {
    /// Creates a mailbox holding a stale default symbol.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Writes a value. Returns `true` when this write *overwrote an
    /// unread value* — a deletion event in Definition 1's terms.
    pub fn write(&mut self, value: Symbol) -> bool {
        let overwrote = self.fresh;
        self.value = value;
        self.fresh = true;
        overwrote
    }

    /// Reads the value. Returns `(value, was_fresh)`; a stale read
    /// (`was_fresh == false`) is an insertion event in Definition 1's
    /// terms.
    pub fn read(&mut self) -> (Symbol, bool) {
        let fresh = self.fresh;
        self.fresh = false;
        (self.value, fresh)
    }

    /// Whether the current value has not been read yet (simulation
    /// ground truth — see the type-level docs).
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// The value currently held, without consuming its freshness
    /// (simulation ground truth: used to name the symbol destroyed by
    /// an overwriting [`Mailbox::write`]).
    pub fn value(&self) -> Symbol {
        self.value
    }
}

/// What happened at one simulation step, from the channel's point of
/// view.
///
/// Runners report these through a [`SimObserver`] so a run can be
/// captured as an `nsc-trace/v1` event stream (see the `nsc-trace`
/// crate) without perturbing the simulation: observation never touches
/// the RNG, so an observed run is bit-identical to an unobserved one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEventKind {
    /// The sender committed a symbol to the shared medium.
    Send(Symbol),
    /// The receiver obtained a fresh (correctly delivered) symbol.
    Recv(Symbol),
    /// A committed-but-unread symbol was destroyed (overwritten) — a
    /// Definition 1 deletion.
    Delete(Symbol),
    /// The receiver obtained a stale or spurious symbol — a
    /// Definition 1 insertion.
    Insert(Symbol),
    /// A feedback action (counter publication, handshake flag, ack)
    /// became visible to the other party.
    Ack,
}

/// A [`SimEventKind`] stamped with the operation index (tick) at which
/// it occurred. Ticks count schedule operations from 0 and are
/// non-decreasing within a run; one tick can carry several events
/// (e.g. a `Delete` followed by the `Send` that caused it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Operation index within the run, starting at 0.
    pub tick: u64,
    /// What happened.
    pub kind: SimEventKind,
}

/// Receives ground-truth channel events from a protocol runner.
///
/// Implementations must be passive: a conforming runner produces the
/// same outcome whether it reports to a real observer or to
/// [`NullObserver`].
pub trait SimObserver {
    /// Called once per channel event, in tick order.
    fn observe(&mut self, event: SimEvent);
}

/// Discards every event — the zero-cost default for unobserved runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    #[inline]
    fn observe(&mut self, _event: SimEvent) {}
}

/// Buffers events in memory, in arrival (tick) order.
#[derive(Debug, Clone, Default)]
pub struct EventRecorder {
    /// The recorded events.
    pub events: Vec<SimEvent>,
}

impl SimObserver for EventRecorder {
    fn observe(&mut self, event: SimEvent) {
        self.events.push(event);
    }
}

impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn observe(&mut self, event: SimEvent) {
        (**self).observe(event);
    }
}

/// Reusable buffers for the protocol runners' `run_*_into` entry
/// points — the engine's allocation-free hot path.
///
/// Each runner *takes* the buffers it needs (leaving empty vectors
/// behind), runs with them, and either restores internal buffers
/// itself (ack queue, bit region) or hands ownership to its outcome
/// (received stream, sample truth), in which case the caller is
/// expected to move them back once it has reduced the outcome —
/// see `engine::campaign`. Because a taken-and-never-restored buffer
/// is just an empty `Vec`, forgetting to restore costs a fresh
/// allocation on the next trial, never correctness.
///
/// Buffers are observational state: a runner's outcome is identical
/// whether the scratch arrives hot (capacity from a previous trial)
/// or cold ([`TrialScratch::default`]).
#[derive(Debug, Clone, Default)]
pub struct TrialScratch {
    /// Message under transmission (filled by the campaign driver).
    pub message: Vec<Symbol>,
    /// The receiver's symbol stream.
    pub received: Vec<Symbol>,
    /// Ground-truth sample classification (wide/torn-write runs).
    pub sample_truth: Vec<wide::SampleKind>,
    /// In-flight feedback publications (noisy-counter runs).
    pub acks: VecDeque<usize>,
    /// The wide shared region's bit array.
    pub region: Vec<bool>,
    /// Event log for traced runs.
    pub events: Vec<SimEvent>,
}

impl TrialScratch {
    /// Empty scratch; buffers grow to steady-state capacity during
    /// the first trial that uses them.
    #[must_use]
    pub fn new() -> Self {
        TrialScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_schedule_respects_probability() {
        let mut s = BernoulliSchedule::new(0.3, StdRng::seed_from_u64(1)).unwrap();
        let n = 100_000;
        let senders = (0..n)
            .filter(|_| s.next_op() == Some(Party::Sender))
            .count();
        let rate = senders as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "sender rate {rate}");
    }

    #[test]
    fn bernoulli_schedule_rejects_bad_probability() {
        assert!(BernoulliSchedule::new(1.5, StdRng::seed_from_u64(0)).is_none());
        assert!(BernoulliSchedule::new(f64::NAN, StdRng::seed_from_u64(0)).is_none());
    }

    #[test]
    fn trace_schedule_replays_and_ends() {
        let mut t: TraceSchedule = [Party::Sender, Party::Receiver].into_iter().collect();
        assert_eq!(t.remaining(), 2);
        assert_eq!(t.next_op(), Some(Party::Sender));
        assert_eq!(t.next_op(), Some(Party::Receiver));
        assert_eq!(t.next_op(), None);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn round_robin_alternates() {
        let mut s = RoundRobinSchedule::new();
        assert_eq!(s.next_op(), Some(Party::Sender));
        assert_eq!(s.next_op(), Some(Party::Receiver));
        assert_eq!(s.next_op(), Some(Party::Sender));
    }

    #[test]
    fn mailbox_tracks_freshness() {
        let mut m = Mailbox::new();
        assert!(!m.is_fresh());
        // Writing to an empty mailbox is not an overwrite.
        assert!(!m.write(Symbol::from_index(3)));
        assert!(m.is_fresh());
        // Writing again deletes the unread value.
        assert!(m.write(Symbol::from_index(4)));
        let (v, fresh) = m.read();
        assert_eq!(v, Symbol::from_index(4));
        assert!(fresh);
        // Second read is stale (insertion).
        let (v2, fresh2) = m.read();
        assert_eq!(v2, Symbol::from_index(4));
        assert!(!fresh2);
    }
}
