//! The counter protocol under *imperfect* feedback — an ablation of
//! the paper's perfection assumption.
//!
//! §4.2 assumes "that the feedback path … is perfect. This
//! simplifies the analysis, and is also a requirement for deriving
//! the maximum information rate." This runner relaxes that: the
//! sender's view of the receiver count is **stale** (updated only
//! with probability `1 − p_loss` per receiver operation) and
//! **delayed** (the sender reads the count published `delay` receiver
//! operations ago). Experiment E12 sweeps both knobs.
//!
//! The protocol still terminates, because the sender's view is a
//! monotone *underestimate* of the receiver count: underestimates
//! cause extra waiting, never deadlock. But Appendix A's alignment
//! invariant is genuinely lost: a *late skip* writes `message[v]`
//! for a stale view `v` while the receiver has already advanced past
//! position `v`, so even fresh reads can land at the wrong position.
//! Measured: error rates exceed the stale-fill fraction once loss or
//! delay are non-trivial — evidence for the paper's remark that
//! perfect feedback "is a requirement for deriving the maximum
//! information rate".

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Feedback imperfection knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackQuality {
    /// Probability that a receiver operation's count update is lost
    /// before the sender sees it.
    pub p_loss: f64,
    /// The sender reads the count published this many receiver
    /// operations ago (0 = current).
    pub delay: usize,
}

impl FeedbackQuality {
    /// Perfect feedback: no loss, no delay.
    pub fn perfect() -> Self {
        FeedbackQuality {
            p_loss: 0.0,
            delay: 0,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadProbability`] when `p_loss` is not a
    /// probability.
    pub fn validated(self) -> Result<Self, CoreError> {
        crate::error::check_prob("p_loss", self.p_loss)?;
        Ok(self)
    }
}

/// Measurements from a noisy-feedback counter run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyCounterOutcome {
    /// Aligned received stream (length ≤ message length).
    pub received: Vec<Symbol>,
    /// Total operations consumed.
    pub ops: usize,
    /// Sender waits.
    pub waits: usize,
    /// Positions filled by stale reads.
    pub stale_fills: usize,
    /// Feedback updates the sender actually observed.
    pub feedback_updates: usize,
}

impl NoisyCounterOutcome {
    /// Delivered positions per operation.
    pub fn symbols_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.ops as f64
        }
    }

    /// Empirical symbol error rate against the message prefix.
    ///
    /// # Panics
    ///
    /// Panics when `message` is shorter than the received stream.
    pub fn symbol_error_rate(&self, message: &[Symbol]) -> f64 {
        assert!(message.len() >= self.received.len());
        if self.received.is_empty() {
            return 0.0;
        }
        self.received
            .iter()
            .zip(message)
            .filter(|(r, m)| r != m)
            .count() as f64
            / self.received.len() as f64
    }

    /// Reliable rate, same accounting as the perfect-feedback
    /// counter protocol (M-ary symmetric at the measured error rate).
    pub fn reliable_rate(&self, bits: u32, message: &[Symbol]) -> BitsPerTick {
        let e = self.symbol_error_rate(message);
        BitsPerTick(nsc_channel::dmc::closed_form::mary_symmetric(bits, e) * self.symbols_per_op())
    }
}

/// Runs the counter protocol with imperfect feedback. The receiver
/// publishes its count after every read; updates are lost i.i.d. with
/// probability `quality.p_loss`, and the sender observes the
/// `quality.delay`-operations-old surviving value.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message or zero
/// `max_ops`, and propagates [`FeedbackQuality::validated`] errors.
pub fn run_noisy_counter<S, R>(
    message: &[Symbol],
    schedule: &mut S,
    quality: FeedbackQuality,
    rng: &mut R,
    max_ops: usize,
) -> Result<NoisyCounterOutcome, CoreError>
where
    S: OpSchedule + ?Sized,
    R: rand::Rng + ?Sized,
{
    run_noisy_counter_observed(message, schedule, quality, rng, max_ops, &mut NullObserver)
}

/// [`run_noisy_counter`], reporting every channel event to `observer`:
/// `Send` per physical write, `Recv`/`Insert` per fresh/stale read,
/// and `Ack` only for count publications that *survive* the lossy
/// feedback path — lost updates produce no event, which is exactly
/// the imperfection E12 measures.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message or zero
/// `max_ops`, and propagates [`FeedbackQuality::validated`] errors.
pub fn run_noisy_counter_observed<S, R, O>(
    message: &[Symbol],
    schedule: &mut S,
    quality: FeedbackQuality,
    rng: &mut R,
    max_ops: usize,
    observer: &mut O,
) -> Result<NoisyCounterOutcome, CoreError>
where
    S: OpSchedule + ?Sized,
    R: rand::Rng + ?Sized,
    O: SimObserver + ?Sized,
{
    run_noisy_counter_into(
        message,
        schedule,
        quality,
        rng,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_noisy_counter_observed`], reusing `scratch`'s received
/// buffer and ack queue instead of allocating them. The ack queue is
/// restored to the scratch before returning; the outcome takes
/// ownership of the received buffer — move `outcome.received` back
/// into `scratch.received` after reducing the outcome to keep
/// subsequent trials allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] for an empty message or zero
/// `max_ops`, and propagates [`FeedbackQuality::validated`] errors.
#[allow(clippy::too_many_arguments)]
pub fn run_noisy_counter_into<S, R, O>(
    message: &[Symbol],
    schedule: &mut S,
    quality: FeedbackQuality,
    rng: &mut R,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<NoisyCounterOutcome, CoreError>
where
    S: OpSchedule + ?Sized,
    R: rand::Rng + ?Sized,
    O: SimObserver + ?Sized,
{
    let quality = quality.validated()?;
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    let mut out = NoisyCounterOutcome {
        received,
        ops: 0,
        waits: 0,
        stale_fills: 0,
        feedback_updates: 0,
    };
    let mut s_count = 0usize;
    let mut r_count = 0usize;
    // Pipeline of published counts; the sender sees the front.
    let mut pipeline = std::mem::take(&mut scratch.acks);
    pipeline.clear();
    let mut sender_view = 0usize;
    while out.ops < max_ops && r_count < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender => {
                // Drain everything older than the delay horizon.
                while pipeline.len() > quality.delay {
                    let v = pipeline.pop_front().expect("non-empty");
                    // Monotone views only: feedback can be stale but
                    // never contradicts earlier observations.
                    if v > sender_view {
                        sender_view = v;
                        out.feedback_updates += 1;
                    }
                }
                match sender_view.cmp(&s_count) {
                    std::cmp::Ordering::Less => out.waits += 1,
                    std::cmp::Ordering::Equal => {
                        if s_count < message.len() {
                            mailbox.write(message[s_count]);
                            observer.observe(SimEvent {
                                tick,
                                kind: SimEventKind::Send(message[s_count]),
                            });
                            s_count += 1;
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        if sender_view < message.len() {
                            mailbox.write(message[sender_view]);
                            observer.observe(SimEvent {
                                tick,
                                kind: SimEventKind::Send(message[sender_view]),
                            });
                        }
                        s_count = sender_view + 1;
                    }
                }
            }
            Party::Receiver => {
                let (value, fresh) = mailbox.read();
                if !fresh {
                    out.stale_fills += 1;
                }
                observer.observe(SimEvent {
                    tick,
                    kind: if fresh {
                        SimEventKind::Recv(value)
                    } else {
                        SimEventKind::Insert(value)
                    },
                });
                out.received.push(value);
                r_count += 1;
                // Publish the new count unless the update is lost.
                if quality.p_loss == 0.0 || rng.gen::<f64>() >= quality.p_loss {
                    pipeline.push_back(r_count);
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Ack,
                    });
                }
            }
        }
    }
    out.received.truncate(message.len());
    scratch.acks = pipeline;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::counter::run_counter_protocol;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule};
    use nsc_channel::alphabet::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        let mut rng = StdRng::seed_from_u64(0);
        let q = FeedbackQuality::perfect();
        assert!(run_noisy_counter(&[], &mut s, q, &mut rng, 10).is_err());
        assert!(run_noisy_counter(&[Symbol::from_index(0)], &mut s, q, &mut rng, 0).is_err());
        let bad = FeedbackQuality {
            p_loss: 1.5,
            delay: 0,
        };
        assert!(bad.validated().is_err());
    }

    #[test]
    fn perfect_quality_matches_counter_protocol() {
        let m = msg(3, 20_000, 1);
        let mut s1 = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(2)).unwrap();
        let base = run_counter_protocol(&m, &mut s1, usize::MAX).unwrap();
        let mut s2 = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = run_noisy_counter(
            &m,
            &mut s2,
            FeedbackQuality::perfect(),
            &mut rng,
            usize::MAX,
        )
        .unwrap();
        assert_eq!(noisy.received, base.received);
        assert_eq!(noisy.ops, base.ops);
        assert_eq!(noisy.stale_fills, base.stale_fills);
    }

    #[test]
    fn never_deadlocks_under_loss() {
        // Even with 70% feedback loss, surviving updates eventually
        // arrive and the run completes.
        let m = msg(2, 5_000, 4);
        let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let q = FeedbackQuality {
            p_loss: 0.7,
            delay: 0,
        };
        let out = run_noisy_counter(&m, &mut s, q, &mut rng, usize::MAX).unwrap();
        assert_eq!(out.received.len(), m.len());
    }

    #[test]
    fn loss_and_delay_reduce_rate_not_alignment() {
        let bits = 4u32;
        let m = msg(bits, 30_000, 7);
        let run = |p_loss: f64, delay: usize| {
            let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(8)).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            run_noisy_counter(
                &m,
                &mut s,
                FeedbackQuality { p_loss, delay },
                &mut rng,
                usize::MAX,
            )
            .unwrap()
        };
        let clean = run(0.0, 0);
        let lossy = run(0.5, 0);
        let delayed = run(0.0, 8);
        // Imperfection costs reliable rate: positions still fill at
        // the receiver's pace (stale reads fill them), but more of
        // them are stale, so the converted channel is noisier.
        assert!(
            lossy.reliable_rate(bits, &m).value() <= clean.reliable_rate(bits, &m).value() + 1e-9
        );
        assert!(delayed.stale_fills > clean.stale_fills);
        assert!(delayed.reliable_rate(bits, &m).value() < clean.reliable_rate(bits, &m).value());
        // With perfect feedback every error is a stale fill
        // (Appendix A's alignment invariant)…
        let errors = |out: &NoisyCounterOutcome| {
            out.received
                .iter()
                .zip(&m)
                .filter(|(r, mm)| r != mm)
                .count()
        };
        assert!(errors(&clean) <= clean.stale_fills);
        // …while imperfect feedback also misaligns fresh writes via
        // late skips: errors exceed the stale-fill count.
        assert!(
            errors(&delayed) > delayed.stale_fills,
            "expected misalignment beyond stale fills"
        );
    }

    #[test]
    fn delay_increases_waits() {
        let m = msg(2, 20_000, 10);
        let run = |delay: usize| {
            let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(11)).unwrap();
            let mut rng = StdRng::seed_from_u64(12);
            run_noisy_counter(
                &m,
                &mut s,
                FeedbackQuality { p_loss: 0.0, delay },
                &mut rng,
                usize::MAX,
            )
            .unwrap()
        };
        assert!(run(16).waits > run(0).waits);
    }
}
