//! Figure 1's synchronization mechanism: two synchronization
//! variables.
//!
//! The sender toggles a *data-ready* variable once a symbol is
//! written; the receiver reads only when it sees fresh data, then
//! toggles an *ack* variable; the sender writes the next symbol only
//! once acked. No symbol is ever lost or duplicated — but "it is very
//! likely that the sender finds that the previous symbol has not been
//! read … and it has to give up the CPU and wait for the next chance.
//! In other words, some time is wasted" (§3.2). This runner measures
//! exactly that wasted time.

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Measurements from a stop-and-wait (two-sync-variable) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StopWaitOutcome {
    /// The receiver's stream — always an exact prefix of the message.
    pub received: Vec<Symbol>,
    /// Total operations consumed.
    pub ops: usize,
    /// Sender operations spent waiting for the ack.
    pub sender_waits: usize,
    /// Receiver operations spent finding no fresh data.
    pub receiver_waits: usize,
}

impl StopWaitOutcome {
    /// Delivered symbols per operation.
    pub fn symbols_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.ops as f64
        }
    }

    /// Information rate in bits per operation; since delivery is
    /// error-free, every delivered symbol carries its full `N` bits.
    pub fn rate(&self, bits: u32) -> BitsPerTick {
        BitsPerTick(bits as f64 * self.symbols_per_op())
    }

    /// Fraction of all operations wasted waiting.
    pub fn waste_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            (self.sender_waits + self.receiver_waits) as f64 / self.ops as f64
        }
    }
}

/// Runs the Figure 1 handshake until the message is delivered, the
/// schedule ends, or `max_ops` operations elapse.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
///
/// # Example
///
/// ```
/// use nsc_core::sim::{stop_wait::run_stop_and_wait, RoundRobinSchedule};
/// use nsc_channel::alphabet::Symbol;
///
/// let msg: Vec<Symbol> = (0..8).map(Symbol::from_index).collect();
/// let out = run_stop_and_wait(&msg, &mut RoundRobinSchedule::new(), 1000)?;
/// assert_eq!(out.received, msg);       // never corrupted
/// assert_eq!(out.waste_fraction(), 0.0); // alternation wastes nothing
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn run_stop_and_wait<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
) -> Result<StopWaitOutcome, CoreError> {
    run_stop_and_wait_observed(message, schedule, max_ops, &mut NullObserver)
}

/// [`run_stop_and_wait`], reporting every channel event to `observer`:
/// `Send` per symbol written, then `Recv` and `Ack` when the receiver
/// consumes it and toggles the ack variable. The handshake never
/// deletes or inserts, so those kinds never occur.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_stop_and_wait_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
) -> Result<StopWaitOutcome, CoreError> {
    run_stop_and_wait_into(
        message,
        schedule,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_stop_and_wait_observed`], reusing `scratch`'s received
/// buffer instead of allocating one. The outcome takes ownership of
/// the buffer; move `outcome.received` back into `scratch.received`
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_stop_and_wait_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<StopWaitOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    // The two synchronization variables of Figure 1. `data_ready`
    // is written by the sender, read by the receiver; `acked` the
    // other way round. Initially the channel is idle and acked.
    let mut data_ready = false;
    let mut out = StopWaitOutcome {
        received,
        ops: 0,
        sender_waits: 0,
        receiver_waits: 0,
    };
    let mut next_to_send = 0usize;
    while out.ops < max_ops && out.received.len() < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match party {
            Party::Sender => {
                if !data_ready && next_to_send < message.len() {
                    mailbox.write(message[next_to_send]);
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Send(message[next_to_send]),
                    });
                    next_to_send += 1;
                    data_ready = true;
                } else {
                    out.sender_waits += 1;
                }
            }
            Party::Receiver => {
                if data_ready {
                    let (value, fresh) = mailbox.read();
                    debug_assert!(fresh, "handshake admitted a stale read");
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Recv(value),
                    });
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Ack,
                    });
                    out.received.push(value);
                    data_ready = false;
                } else {
                    out.receiver_waits += 1;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule, TraceSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::from_index(i as u32 % 8)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        assert!(run_stop_and_wait(&[], &mut s, 10).is_err());
        assert!(run_stop_and_wait(&msg(3), &mut s, 0).is_err());
    }

    #[test]
    fn delivery_is_always_exact() {
        for seed in 0..5u64 {
            let m = msg(2000);
            let mut sched =
                BernoulliSchedule::new(0.3 + 0.1 * seed as f64, StdRng::seed_from_u64(seed))
                    .unwrap();
            let out = run_stop_and_wait(&m, &mut sched, usize::MAX).unwrap();
            assert_eq!(out.received, m, "seed {seed}");
        }
    }

    #[test]
    fn alternating_schedule_has_no_waste() {
        let m = msg(100);
        let out = run_stop_and_wait(&m, &mut RoundRobinSchedule::new(), 10_000).unwrap();
        assert_eq!(out.ops, 200);
        assert_eq!(out.waste_fraction(), 0.0);
        assert!((out.rate(3).value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn biased_schedule_wastes_time_but_not_data() {
        let trace: Vec<Party> = (0..10_000)
            .map(|i| {
                if i % 5 == 4 {
                    Party::Receiver
                } else {
                    Party::Sender
                }
            })
            .collect();
        let m = msg(1000);
        let out = run_stop_and_wait(&m, &mut TraceSchedule::new(trace), usize::MAX).unwrap();
        assert_eq!(out.received, m);
        assert!(out.sender_waits > 0);
        assert!(out.waste_fraction() > 0.4);
    }

    #[test]
    fn fair_schedule_throughput_matches_theory() {
        // A symbol needs one successful write then one successful
        // read; under Bernoulli(q) each phase is geometric, so the
        // expected ops per symbol is 1/q + 1/(1-q) = 4 at q = 1/2.
        let m = msg(40_000);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(9)).unwrap();
        let out = run_stop_and_wait(&m, &mut sched, usize::MAX).unwrap();
        let ops_per_symbol = out.ops as f64 / m.len() as f64;
        assert!((ops_per_symbol - 4.0).abs() < 0.1, "{ops_per_symbol}");
    }

    #[test]
    fn unfair_schedule_throughput_matches_theory() {
        let q: f64 = 0.2;
        let m = msg(20_000);
        let mut sched = BernoulliSchedule::new(q, StdRng::seed_from_u64(10)).unwrap();
        let out = run_stop_and_wait(&m, &mut sched, usize::MAX).unwrap();
        let ops_per_symbol = out.ops as f64 / m.len() as f64;
        let expected = 1.0 / q + 1.0 / (1.0 - q);
        assert!(
            (ops_per_symbol - expected).abs() < 0.15,
            "{ops_per_symbol} vs {expected}"
        );
    }

    #[test]
    fn budget_respected() {
        let m = msg(1_000_000);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(11)).unwrap();
        let out = run_stop_and_wait(&m, &mut sched, 777).unwrap();
        assert_eq!(out.ops, 777);
        assert!(out.received.len() < m.len());
    }
}
