//! Figure 4(b): a common event source *with feedback into it*.
//!
//! §4.2.2 argues that a common event source `E` cannot beat perfect
//! feedback, because in the best case — when the receiver can inform
//! `E` (the extra `R → E` path of Figure 4(b)) — "they indeed can be
//! regarded as one single party and such a configuration actually
//! becomes the synchronization method using feedback".
//!
//! This runner makes that argument executable. The event source is an
//! *adaptive slotter*: instead of fixed-length slots, it flips the
//! slot parity exactly when the owning party has acted — which it can
//! only know because the receiver (and sender) report their actions
//! to it. The result is behaviourally identical to the Figure 1
//! handshake, and experiment E7's extension verifies the measured
//! rates coincide.

use crate::error::CoreError;
use crate::sim::{
    Mailbox, NullObserver, OpSchedule, Party, SimEvent, SimEventKind, SimObserver, TrialScratch,
};
use nsc_channel::alphabet::Symbol;
use nsc_info::BitsPerTick;
use serde::{Deserialize, Serialize};

/// Measurements from an adaptive-slotted (Figure 4(b)) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The receiver's stream — an exact prefix of the message (the
    /// adaptive event source eliminates both deletions and
    /// insertions).
    pub received: Vec<Symbol>,
    /// Total operations consumed.
    pub ops: usize,
    /// Operations wasted because the scheduled party was off-turn.
    pub off_turn_ops: usize,
}

impl AdaptiveOutcome {
    /// Delivered symbols per operation.
    pub fn symbols_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.ops as f64
        }
    }

    /// Error-free information rate in bits per operation.
    pub fn rate(&self, bits: u32) -> BitsPerTick {
        BitsPerTick(bits as f64 * self.symbols_per_op())
    }
}

/// Runs the adaptive-slotted mechanism: the event source grants the
/// *send turn* until the sender has written once, then the *read
/// turn* until the receiver has read once, and so on — state it can
/// only maintain thanks to the feedback paths into `E`.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_adaptive_slotted<S: OpSchedule + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
) -> Result<AdaptiveOutcome, CoreError> {
    run_adaptive_slotted_observed(message, schedule, max_ops, &mut NullObserver)
}

/// [`run_adaptive_slotted`], reporting every channel event to
/// `observer`: `Send` per write, then `Recv` and `Ack` when the
/// receiver reads and its report advances the event source's turn.
/// The mechanism eliminates deletions and insertions, so those kinds
/// never occur.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_adaptive_slotted_observed<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
) -> Result<AdaptiveOutcome, CoreError> {
    run_adaptive_slotted_into(
        message,
        schedule,
        max_ops,
        observer,
        &mut TrialScratch::new(),
    )
}

/// [`run_adaptive_slotted_observed`], reusing `scratch`'s received
/// buffer instead of allocating one. The outcome takes ownership of
/// the buffer; move `outcome.received` back into `scratch.received`
/// after reducing the outcome to keep subsequent trials
/// allocation-free.
///
/// # Errors
///
/// Returns [`CoreError::BadSimulation`] when the message is empty or
/// `max_ops` is zero.
pub fn run_adaptive_slotted_into<S: OpSchedule + ?Sized, O: SimObserver + ?Sized>(
    message: &[Symbol],
    schedule: &mut S,
    max_ops: usize,
    observer: &mut O,
    scratch: &mut TrialScratch,
) -> Result<AdaptiveOutcome, CoreError> {
    if message.is_empty() {
        return Err(CoreError::BadSimulation("message is empty".to_owned()));
    }
    if max_ops == 0 {
        return Err(CoreError::BadSimulation("max_ops is zero".to_owned()));
    }
    let mut received = std::mem::take(&mut scratch.received);
    received.clear();
    let mut mailbox = Mailbox::new();
    let mut out = AdaptiveOutcome {
        received,
        ops: 0,
        off_turn_ops: 0,
    };
    // The event source's state: whose turn it is. It advances only
    // when the owning party reports having acted — the R→E / S→E
    // feedback of Figure 4(b).
    let mut send_turn = true;
    let mut next_to_send = 0usize;
    while out.ops < max_ops && out.received.len() < message.len() {
        let Some(party) = schedule.next_op() else {
            break;
        };
        out.ops += 1;
        let tick = (out.ops - 1) as u64;
        match (party, send_turn) {
            (Party::Sender, true) => {
                if next_to_send < message.len() {
                    mailbox.write(message[next_to_send]);
                    observer.observe(SimEvent {
                        tick,
                        kind: SimEventKind::Send(message[next_to_send]),
                    });
                    next_to_send += 1;
                    send_turn = false;
                }
            }
            (Party::Receiver, false) => {
                let (value, fresh) = mailbox.read();
                debug_assert!(fresh, "adaptive slotting admitted a stale read");
                observer.observe(SimEvent {
                    tick,
                    kind: SimEventKind::Recv(value),
                });
                observer.observe(SimEvent {
                    tick,
                    kind: SimEventKind::Ack,
                });
                out.received.push(value);
                send_turn = true;
            }
            _ => out.off_turn_ops += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::stop_wait::run_stop_and_wait;
    use crate::sim::{BernoulliSchedule, RoundRobinSchedule};
    use nsc_channel::alphabet::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(n: usize, seed: u64) -> Vec<Symbol> {
        let a = Alphabet::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| a.random(&mut rng)).collect()
    }

    #[test]
    fn validation() {
        let mut s = RoundRobinSchedule::new();
        assert!(run_adaptive_slotted(&[], &mut s, 10).is_err());
        assert!(run_adaptive_slotted(&msg(3, 0), &mut s, 0).is_err());
    }

    #[test]
    fn delivery_is_always_exact() {
        for seed in 0..5u64 {
            let m = msg(1000, seed);
            let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(100 + seed)).unwrap();
            let out = run_adaptive_slotted(&m, &mut sched, usize::MAX).unwrap();
            assert_eq!(out.received, m);
        }
    }

    #[test]
    fn figure_4_claim_matches_stop_and_wait_exactly() {
        // The paper: E with feedback "actually becomes the
        // synchronization method using feedback". Same schedule, same
        // message: identical op counts and delivery.
        let m = msg(5000, 7);
        let mut s1 = BernoulliSchedule::new(0.4, StdRng::seed_from_u64(8)).unwrap();
        let adaptive = run_adaptive_slotted(&m, &mut s1, usize::MAX).unwrap();
        let mut s2 = BernoulliSchedule::new(0.4, StdRng::seed_from_u64(8)).unwrap();
        let handshake = run_stop_and_wait(&m, &mut s2, usize::MAX).unwrap();
        assert_eq!(adaptive.received, handshake.received);
        assert_eq!(adaptive.ops, handshake.ops);
        assert_eq!(
            adaptive.off_turn_ops,
            handshake.sender_waits + handshake.receiver_waits
        );
    }

    #[test]
    fn rate_matches_waiting_theory() {
        let m = msg(30_000, 9);
        let q: f64 = 0.5;
        let mut sched = BernoulliSchedule::new(q, StdRng::seed_from_u64(10)).unwrap();
        let out = run_adaptive_slotted(&m, &mut sched, usize::MAX).unwrap();
        let predicted = 3.0 / (1.0 / q + 1.0 / (1.0 - q));
        assert!((out.rate(3).value() - predicted).abs() < 0.05);
    }

    #[test]
    fn budget_respected() {
        let m = msg(1_000_000, 11);
        let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(12)).unwrap();
        let out = run_adaptive_slotted(&m, &mut sched, 123).unwrap();
        assert_eq!(out.ops, 123);
    }
}
