//! Capacity bounds for non-synchronous covert channels — the paper's
//! Theorems 1–5 and equations (1)–(7).
//!
//! All bounds are in the paper's normalization: **relative to the
//! synchronous capacity**, i.e. bits per symbol slot of a traditional
//! (synchronous) estimate. §4.3 is explicit that `N·(1 − P_d)` "is not
//! a physical information rate; it is a relative ratio of the physical
//! capacity estimated using traditional methods" — the
//! [`crate::degradation`] module performs that final conversion.
//!
//! * [`erasure_upper_bound`] — Theorem 1 / Theorem 4: the
//!   deletion-insertion capacity (with or without perfect feedback)
//!   is at most the matched (extended) erasure channel's
//!   `N·(1 − P_d)`.
//! * [`feedback_deletion_capacity`] — Theorems 2–3: with perfect
//!   feedback over a pure deletion channel the bound is *tight*; the
//!   resend protocol achieves `N·(1 − p_d)` exactly.
//! * [`converted_channel_capacity`] — Appendix A: the counter (skip)
//!   protocol converts the deletion-insertion channel with feedback
//!   into a synchronous M-ary symmetric DMC with error `α·P_i`,
//!   `α = 1 − 2^{−N}` (Figure 5); its capacity is `C_conv`
//!   (equations (2)–(4)).
//! * [`theorem5_lower_bound`] — Theorem 5: the achieved rate
//!   `(1 − P_d)/(1 − P_i) · C_conv`.
//! * [`convergence_ratio`] — equations (6)–(7): with `P_i = P_d` and
//!   `N → ∞` the lower and upper bounds converge.
//!
//! # Bound families beyond the paper
//!
//! Theorem 5 is one point in a literature of tighter results; two of
//! them (both retrieved in PAPERS.md) are implemented here so the
//! capacity atlas can report where the paper's bound is loose:
//!
//! * [`kanoria_montanari_expansion`] — Kanoria–Montanari's
//!   small-deletion-probability series for the binary deletion
//!   channel, `C = 1 + p·log2(p) − A₁·p + O(p^{2−ε})`, lifted to
//!   `N`-bit symbols.
//! * [`vtr_achievable_rate`] — a Venkataramanan–Tatikonda–Ramchandran
//!   style achievable rate for combined deletion+insertion channels
//!   without feedback, from the Gallager-form random-coding baseline
//!   their results dominate: `1 − H₃(p_d, p_i, 1 − p_d − p_i)` per
//!   bit.
//!
//! [`capacity_bound_families`] evaluates every family at one channel
//! point with per-family domain gating, and — because independently
//! derived bounds under different assumptions *can* numerically cross
//! — reports a crossing as the typed
//! [`CoreError::CrossedBounds`] instead of a silently negative gap.
//! Each family's formula carries a version in
//! [`BOUND_FAMILY_VERSIONS`]; the atlas embeds those versions in its
//! cell manifests so a formula change invalidates cached cells.

use crate::error::{check_prob, CoreError};
use nsc_info::entropy::binary_entropy;
use nsc_info::BitsPerSymbol;
use serde::{Deserialize, Serialize};

/// A certified capacity interval in bits per symbol slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityBounds {
    /// Constructively achievable rate (Theorem 5).
    pub lower: BitsPerSymbol,
    /// Erasure-channel upper bound (Theorems 1/4).
    pub upper: BitsPerSymbol,
}

/// Numerical slack granted before two bounds are declared *crossed*:
/// a lower bound may exceed an upper bound by at most this much and
/// still be attributed to floating-point round-off.
const CROSSING_TOLERANCE: f64 = 1e-9;

impl CapacityBounds {
    /// Builds a certified interval, rejecting a crossed pair.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CrossedBounds`] when `lower` exceeds
    /// `upper` by more than floating-point round-off slack.
    pub fn checked(lower: BitsPerSymbol, upper: BitsPerSymbol) -> Result<Self, CoreError> {
        if lower.value() > upper.value() + CROSSING_TOLERANCE {
            return Err(CoreError::CrossedBounds {
                lower: lower.value(),
                upper: upper.value(),
            });
        }
        Ok(CapacityBounds { lower, upper })
    }

    /// Width of the interval.
    pub fn gap(&self) -> f64 {
        self.upper.value() - self.lower.value()
    }

    /// Ratio `lower / upper` (1.0 when the upper bound is zero, since
    /// then both are zero).
    pub fn tightness(&self) -> f64 {
        if self.upper.value() == 0.0 {
            1.0
        } else {
            self.lower.value() / self.upper.value()
        }
    }
}

/// Theorem 1 (and Theorem 4's feedback upper bound): the capacity of
/// a deletion-insertion channel is at most the matched erasure
/// channel's `C_max = N·(1 − P_d)` — the paper's equation (1).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
///
/// # Example
///
/// ```
/// use nsc_core::bounds::erasure_upper_bound;
/// let c = erasure_upper_bound(8, 0.25)?;
/// assert_eq!(c.value(), 6.0);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn erasure_upper_bound(bits: u32, p_d: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    Ok(BitsPerSymbol(bits as f64 * (1.0 - p_d)))
}

/// Theorems 2–3: the capacity of a pure deletion channel with perfect
/// feedback *equals* the erasure capacity `N·(1 − p_d)`; the simple
/// resend protocol achieves it ([`crate::protocols::resend`]).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
pub fn feedback_deletion_capacity(bits: u32, p_d: f64) -> Result<BitsPerSymbol, CoreError> {
    erasure_upper_bound(bits, p_d)
}

/// The `α` of the paper's equation (4): the probability that a
/// uniformly random inserted symbol *differs* from the symbol it
/// replaces, `α = 1 − 2^{−N}` for `N` bits per symbol.
pub fn alpha(bits: u32) -> f64 {
    1.0 - 0.5f64.powi(bits as i32)
}

/// Effective symbol-replacement error probability of the converted
/// channel: `α · p_i`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_channel_error(bits: u32, p_i: f64) -> Result<f64, CoreError> {
    check_prob("p_i", p_i)?;
    Ok(alpha(bits) * p_i)
}

/// `C_conv` of equations (2)–(4): the capacity of the synchronous
/// channel the counter protocol converts a deletion-insertion channel
/// into — an M-ary symmetric DMC over `M = 2^N` symbols with error
/// probability `α·p_i`:
///
/// `C_conv = N − α·p_i·log2(2^N − 1) − H(α·p_i)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
///
/// # Example
///
/// With no insertions the converted channel is noiseless:
///
/// ```
/// use nsc_core::bounds::converted_channel_capacity;
/// assert_eq!(converted_channel_capacity(4, 0.0)?.value(), 4.0);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn converted_channel_capacity(bits: u32, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    let e = converted_channel_error(bits, p_i)?;
    let n = bits as f64;
    let m_minus_1 = (1u64 << bits) as f64 - 1.0;
    let c = n
        - binary_entropy(e)
        - if m_minus_1 > 0.0 {
            e * m_minus_1.log2()
        } else {
            0.0
        };
    Ok(BitsPerSymbol(c.max(0.0)))
}

/// Equation (5): the large-`N` approximation
/// `C_conv ≈ N·(1 − p_i) − H(p_i)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_capacity_large_n(bits: u32, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_i", p_i)?;
    let n = bits as f64;
    Ok(BitsPerSymbol(
        (n * (1.0 - p_i) - binary_entropy(p_i)).max(0.0),
    ))
}

/// The transition matrix of the converted channel (Figure 5): an
/// M-ary symmetric DMC over `M = 2^N` symbols where a symbol is
/// replaced by any *specific* other symbol with probability
/// `p_i / 2^N` (total replacement probability `α·p_i`). Cross-checked
/// against [`converted_channel_capacity`] by Blahut–Arimoto in tests.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_channel_matrix(bits: u32, p_i: f64) -> Result<Vec<Vec<f64>>, CoreError> {
    check_prob("p_i", p_i)?;
    let m = 1usize << bits;
    let off = p_i / m as f64;
    let mut w = vec![vec![off; m]; m];
    for (i, row) in w.iter_mut().enumerate() {
        row[i] = 1.0 - alpha(bits) * p_i;
    }
    Ok(w)
}

/// Theorem 5: the constructive lower bound on the capacity of a
/// deletion-insertion channel with perfect feedback,
///
/// `C_lower = (1 − P_d) / (1 − P_i) · C_conv` — equation (2).
///
/// The prefactor converts from the synchronous model's accounting to
/// the paper's relative normalization: waiting uses wasted on
/// deletions are charged (`1 − P_d` in the numerator) while skipped
/// symbols cost no time (`1 − P_i` in the denominator).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] for invalid probabilities,
/// and [`CoreError::UnsupportedChannel`] when `p_i = 1` (the channel
/// only ever inserts) or `p_d + p_i > 1`.
pub fn theorem5_lower_bound(bits: u32, p_d: f64, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    check_prob("p_i", p_i)?;
    if p_i >= 1.0 {
        return Err(CoreError::UnsupportedChannel(
            "p_i = 1: the queue never drains".to_owned(),
        ));
    }
    if p_d + p_i > 1.0 + 1e-12 {
        return Err(CoreError::UnsupportedChannel(format!(
            "p_d + p_i = {} exceeds 1",
            p_d + p_i
        )));
    }
    let conv = converted_channel_capacity(bits, p_i)?;
    Ok(BitsPerSymbol((1.0 - p_d) / (1.0 - p_i) * conv.value()))
}

/// Both Theorem 5's lower bound and Theorem 4's upper bound for a
/// deletion-insertion channel with perfect feedback.
///
/// # Errors
///
/// Propagates the errors of [`theorem5_lower_bound`] and
/// [`erasure_upper_bound`], and returns
/// [`CoreError::CrossedBounds`] if the two ever numerically cross
/// (instead of a silently negative [`CapacityBounds::gap`]).
pub fn capacity_bounds(bits: u32, p_d: f64, p_i: f64) -> Result<CapacityBounds, CoreError> {
    CapacityBounds::checked(
        theorem5_lower_bound(bits, p_d, p_i)?,
        erasure_upper_bound(bits, p_d)?,
    )
}

/// Formula versions of every implemented bound family, as
/// `(family name, version)` pairs in a fixed order.
///
/// The atlas embeds this map in each cell manifest (and therefore in
/// each cell's cache key), so bumping a version here invalidates every
/// cached cell that was computed with the older formula. Bump a
/// family's version whenever its numerical output changes for *any*
/// input.
pub const BOUND_FAMILY_VERSIONS: &[(&str, u32)] = &[
    ("erasure", 1),
    ("theorem5", 1),
    ("kanoria-montanari", 1),
    ("vtr", 1),
];

/// Largest deletion probability at which the Kanoria–Montanari series
/// is served: the expansion is proved for `p → 0` with an `O(p^{2−ε})`
/// remainder, and past `p ≈ 0.1` the dropped terms are no longer
/// negligible at the precision the atlas reports.
pub const KM_MAX_P_D: f64 = 0.1;

/// The first-order coefficient `A₁` of the Kanoria–Montanari
/// expansion,
///
/// `A₁ = log2(2e) − Σ_{l≥1} 2^{−l−1} · l · log2(l) ≈ 1.15416`,
///
/// evaluated by direct summation (the tail beyond `l = 64` is below
/// `2^{−58}` and cannot move an `f64`).
pub fn kanoria_montanari_a1() -> f64 {
    let mut sum = 0.0;
    for l in 1u32..=64 {
        let lf = f64::from(l);
        sum += 0.5f64.powi(l as i32 + 1) * lf * lf.log2();
    }
    (2.0 * std::f64::consts::E).log2() - sum
}

/// Kanoria–Montanari small-deletion-probability expansion of the
/// deletion-channel capacity, lifted to `N`-bit symbols.
///
/// For the *binary* deletion channel Kanoria–Montanari prove
///
/// `C(p) = 1 + p·log2(p) − A₁·p + O(p^{2−ε})`,
///
/// with `A₁` as in [`kanoria_montanari_a1`]. An `N`-bit symbol
/// deletion channel is a binary deletion channel on the first bit
/// track plus `N − 1` further bit tracks that are erased exactly when
/// the symbol is deleted, giving the lift
///
/// `C_N(p) = (N − 1)·(1 − p) + C(p)`.
///
/// This is a deletion-only family: the caller
/// ([`capacity_bound_families`]) only serves it at `P_i = 0`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability and [`CoreError::UnsupportedChannel`] when
/// `p_d > `[`KM_MAX_P_D`] (outside the expansion's trust region).
pub fn kanoria_montanari_expansion(bits: u32, p_d: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    if p_d > KM_MAX_P_D {
        return Err(CoreError::UnsupportedChannel(format!(
            "Kanoria-Montanari expansion is only trusted for p_d <= {KM_MAX_P_D}, got {p_d}"
        )));
    }
    // p·log2(p) → 0 as p → 0; define the limit value explicitly so
    // p_d = 0 does not produce 0 · (−inf) = NaN.
    let p_log_p = if p_d > 0.0 { p_d * p_d.log2() } else { 0.0 };
    let binary = 1.0 + p_log_p - kanoria_montanari_a1() * p_d;
    Ok(BitsPerSymbol(
        (f64::from(bits) - 1.0) * (1.0 - p_d) + binary,
    ))
}

/// A Venkataramanan–Tatikonda–Ramchandran style achievable rate for
/// the combined deletion-insertion channel *without* feedback: the
/// Gallager-form random-coding baseline their Theorem 1 dominates,
///
/// `C ≥ N · max(0, 1 − H₃(P_d, P_i, 1 − P_d − P_i))`,
///
/// where `H₃` is the ternary entropy of the per-slot event
/// (deleted / insertion-replaced / clean). Unlike
/// [`theorem5_lower_bound`] this needs no feedback channel, so it
/// lower-bounds a *harder* operating regime; where it exceeds
/// Theorem 5 the paper's protocol is provably leaving rate unused.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] for invalid probabilities and
/// [`CoreError::UnsupportedChannel`] when `p_d > 0.5` or `p_i > 0.5`
/// (outside the random-coding derivation's regime; also exactly the
/// region where `H(p) ≥ p` makes the rate provably at most the
/// erasure upper bound).
pub fn vtr_achievable_rate(bits: u32, p_d: f64, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    check_prob("p_i", p_i)?;
    if p_d > 0.5 || p_i > 0.5 {
        return Err(CoreError::UnsupportedChannel(format!(
            "VTR achievable rate is only derived for p_d, p_i <= 0.5, got p_d = {p_d}, p_i = {p_i}"
        )));
    }
    let term = |p: f64| if p > 0.0 { -p * p.log2() } else { 0.0 };
    let clean = (1.0 - p_d - p_i).max(0.0);
    let h3 = term(p_d) + term(p_i) + term(clean);
    Ok(BitsPerSymbol((f64::from(bits) * (1.0 - h3)).max(0.0)))
}

/// Every implemented bound family evaluated at one channel point.
///
/// Lower-bound families whose derivation does not cover the point
/// (e.g. Kanoria–Montanari at `P_i > 0`, VTR at `P_d > 0.5`) are
/// `None` rather than extrapolated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundFamilies {
    /// Erasure-channel upper bound (Theorems 1/4), always defined.
    pub upper: BitsPerSymbol,
    /// Theorem 5 lower bound, `None` when `p_i = 1` or
    /// `p_d + p_i > 1`.
    pub theorem5: Option<BitsPerSymbol>,
    /// Kanoria–Montanari expansion, `None` unless `p_i = 0` and
    /// `p_d ≤ `[`KM_MAX_P_D`].
    pub kanoria_montanari: Option<BitsPerSymbol>,
    /// VTR-style achievable rate, `None` when `p_d > 0.5` or
    /// `p_i > 0.5`.
    pub vtr: Option<BitsPerSymbol>,
}

impl BoundFamilies {
    /// The best (largest) defined lower bound and the name of the
    /// family that provides it, or `None` if no family covers this
    /// point. Ties go to the family listed first in
    /// [`BOUND_FAMILY_VERSIONS`] order, keeping the winner
    /// deterministic.
    pub fn best_lower(&self) -> Option<(&'static str, BitsPerSymbol)> {
        let candidates = [
            ("theorem5", self.theorem5),
            ("kanoria-montanari", self.kanoria_montanari),
            ("vtr", self.vtr),
        ];
        let mut best: Option<(&'static str, BitsPerSymbol)> = None;
        for (name, bound) in candidates {
            if let Some(b) = bound {
                if best.is_none_or(|(_, cur)| b.value() > cur.value()) {
                    best = Some((name, b));
                }
            }
        }
        best
    }

    /// Validates that no lower bound crosses the upper bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CrossedBounds`] carrying the offending
    /// pair when the best lower bound exceeds the upper bound by more
    /// than floating-point round-off slack.
    pub fn checked(self) -> Result<Self, CoreError> {
        if let Some((_, lower)) = self.best_lower() {
            if lower.value() > self.upper.value() + CROSSING_TOLERANCE {
                return Err(CoreError::CrossedBounds {
                    lower: lower.value(),
                    upper: self.upper.value(),
                });
            }
        }
        Ok(self)
    }
}

/// Evaluates all bound families of [`BOUND_FAMILY_VERSIONS`] at one
/// channel point, with per-family domain gating: a lower-bound family
/// that does not cover `(p_d, p_i)` is reported as `None` instead of
/// being extrapolated outside its derivation.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] for invalid probabilities and
/// [`CoreError::CrossedBounds`] if a served lower bound numerically
/// exceeds the upper bound.
pub fn capacity_bound_families(bits: u32, p_d: f64, p_i: f64) -> Result<BoundFamilies, CoreError> {
    check_prob("p_d", p_d)?;
    check_prob("p_i", p_i)?;
    let upper = erasure_upper_bound(bits, p_d)?;
    let theorem5 = theorem5_lower_bound(bits, p_d, p_i).ok();
    let kanoria_montanari = if p_i == 0.0 {
        kanoria_montanari_expansion(bits, p_d).ok()
    } else {
        None
    };
    let vtr = vtr_achievable_rate(bits, p_d, p_i).ok();
    BoundFamilies {
        upper,
        theorem5,
        kanoria_montanari,
        vtr,
    }
    .checked()
}

/// Equations (6)–(7): with `P_i = P_d = p`, the ratio
/// `C_lower / C_upper → 1` as `N → ∞`. Returns the ratio at finite
/// `N`.
///
/// # Errors
///
/// Propagates the errors of [`capacity_bounds`].
pub fn convergence_ratio(bits: u32, p: f64) -> Result<f64, CoreError> {
    Ok(capacity_bounds(bits, p, p)?.tightness())
}

/// The inherent degradation factor of §4.3 and §5: the capacity of a
/// synchronized non-synchronous channel degrades "roughly
/// proportional to `P_d`", i.e. by the factor `1 − P_d`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
pub fn degradation_factor(p_d: f64) -> Result<f64, CoreError> {
    check_prob("p_d", p_d)?;
    Ok(1.0 - p_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_info::blahut::{blahut_arimoto, BlahutOptions};

    #[test]
    fn equation_1_upper_bound() {
        assert_eq!(erasure_upper_bound(1, 0.0).unwrap().value(), 1.0);
        assert_eq!(erasure_upper_bound(8, 0.5).unwrap().value(), 4.0);
        assert_eq!(erasure_upper_bound(4, 1.0).unwrap().value(), 0.0);
        assert!(erasure_upper_bound(4, 1.5).is_err());
    }

    #[test]
    fn theorem_3_equals_theorem_1() {
        for &p in &[0.0, 0.1, 0.7] {
            assert_eq!(
                feedback_deletion_capacity(3, p).unwrap(),
                erasure_upper_bound(3, p).unwrap()
            );
        }
    }

    #[test]
    fn alpha_values() {
        assert_eq!(alpha(1), 0.5);
        assert_eq!(alpha(2), 0.75);
        assert!((alpha(16) - (1.0 - 1.0 / 65536.0)).abs() < 1e-15);
    }

    #[test]
    fn converted_capacity_noiseless_limit() {
        for bits in 1..=8 {
            assert_eq!(
                converted_channel_capacity(bits, 0.0).unwrap().value(),
                bits as f64
            );
        }
    }

    #[test]
    fn converted_capacity_matches_blahut_on_figure5_matrix() {
        for &(bits, p_i) in &[(1u32, 0.2), (2, 0.3), (3, 0.1), (4, 0.5)] {
            let w = converted_channel_matrix(bits, p_i).unwrap();
            let ba = blahut_arimoto(&w, &BlahutOptions::default()).unwrap();
            let closed = converted_channel_capacity(bits, p_i).unwrap().value();
            assert!(
                (ba.capacity - closed).abs() < 1e-7,
                "bits={bits} p_i={p_i}: BA={} closed={closed}",
                ba.capacity
            );
        }
    }

    #[test]
    fn converted_matrix_rows_are_stochastic() {
        let w = converted_channel_matrix(3, 0.4).unwrap();
        for row in &w {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equation_5_large_n_approximation_converges() {
        let p_i = 0.1;
        let mut last_gap = f64::INFINITY;
        for bits in [2u32, 4, 8, 12, 16] {
            let exact = converted_channel_capacity(bits, p_i).unwrap().value();
            let approx = converted_capacity_large_n(bits, p_i).unwrap().value();
            let gap = (exact - approx).abs();
            assert!(gap <= last_gap + 1e-9, "gap grew at N={bits}");
            last_gap = gap;
        }
        // At N = 16 the approximation is tight.
        assert!(last_gap < 1e-3, "gap at N=16 is {last_gap}");
    }

    #[test]
    fn theorem_5_reduces_to_conv_capacity_without_deletions_or_insertions() {
        let c = theorem5_lower_bound(4, 0.0, 0.0).unwrap();
        assert_eq!(c.value(), 4.0);
    }

    #[test]
    fn theorem_5_validation() {
        assert!(theorem5_lower_bound(4, 0.6, 0.6).is_err());
        assert!(theorem5_lower_bound(4, 0.0, 1.0).is_err());
        assert!(theorem5_lower_bound(4, -0.1, 0.0).is_err());
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound() {
        for bits in [1u32, 2, 4, 8, 16] {
            for i in 0..20 {
                for j in 0..20 {
                    let p_d = i as f64 * 0.05;
                    let p_i = j as f64 * 0.05;
                    if p_d + p_i > 1.0 || p_i >= 1.0 {
                        continue;
                    }
                    let b = capacity_bounds(bits, p_d, p_i).unwrap();
                    assert!(
                        b.lower.value() <= b.upper.value() + 1e-9,
                        "violated at bits={bits} p_d={p_d} p_i={p_i}: {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn equations_6_7_convergence_in_n() {
        // With p_i = p_d, the ratio increases towards 1 as N grows.
        for &p in &[0.01, 0.1, 0.3] {
            let mut last = 0.0;
            for bits in [1u32, 2, 4, 8, 16] {
                let r = convergence_ratio(bits, p).unwrap();
                assert!(r >= last - 1e-12, "ratio not monotone at p={p} N={bits}");
                last = r;
            }
            assert!(last > 0.9, "ratio at N=16, p={p} is only {last}");
        }
    }

    #[test]
    fn limit_formula_of_equation_6() {
        // As N -> inf with p_i = p_d = p:
        // C_lower -> N(1-p) - H(p), so
        // C_lower/C_upper -> 1 - H(p)/(N(1-p)).
        let p = 0.1;
        let bits = 16u32;
        let ratio = convergence_ratio(bits, p).unwrap();
        let predicted = 1.0 - binary_entropy(p) / (bits as f64 * (1.0 - p));
        assert!((ratio - predicted).abs() < 1e-3, "{ratio} vs {predicted}");
    }

    #[test]
    fn degradation_is_proportional_to_p_d() {
        assert_eq!(degradation_factor(0.0).unwrap(), 1.0);
        assert_eq!(degradation_factor(0.25).unwrap(), 0.75);
        assert_eq!(degradation_factor(1.0).unwrap(), 0.0);
        assert!(degradation_factor(2.0).is_err());
    }

    #[test]
    fn bounds_monotone_in_p_d() {
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let p_d = i as f64 / 10.0;
            if p_d + 0.1 > 1.0 {
                break;
            }
            let b = capacity_bounds(4, p_d, 0.1).unwrap();
            assert!(b.upper.value() <= last + 1e-12);
            last = b.upper.value();
        }
    }

    #[test]
    fn tightness_of_zero_upper_is_one() {
        let b = CapacityBounds {
            lower: BitsPerSymbol(0.0),
            upper: BitsPerSymbol(0.0),
        };
        assert_eq!(b.tightness(), 1.0);
        assert_eq!(b.gap(), 0.0);
    }

    #[test]
    fn crossed_bounds_are_a_typed_error_not_a_negative_gap() {
        // Satellite: a lower bound exceeding an upper bound must
        // surface as CoreError::CrossedBounds, never as gap() < 0.
        let err = CapacityBounds::checked(BitsPerSymbol(1.5), BitsPerSymbol(1.0)).unwrap_err();
        assert_eq!(
            err,
            CoreError::CrossedBounds {
                lower: 1.5,
                upper: 1.0
            }
        );
        // Round-off-scale excess is tolerated, not reported.
        let ok = CapacityBounds::checked(BitsPerSymbol(1.0 + 1e-12), BitsPerSymbol(1.0)).unwrap();
        assert!(ok.gap() <= 0.0);
        // The same typed error comes out of BoundFamilies::checked.
        let fams = BoundFamilies {
            upper: BitsPerSymbol(1.0),
            theorem5: Some(BitsPerSymbol(0.5)),
            kanoria_montanari: None,
            vtr: Some(BitsPerSymbol(2.0)),
        };
        assert_eq!(
            fams.checked().unwrap_err(),
            CoreError::CrossedBounds {
                lower: 2.0,
                upper: 1.0
            }
        );
    }

    #[test]
    fn a1_matches_the_literature_value() {
        // Kanoria–Montanari report A1 ≈ 1.15416.
        assert!(
            (kanoria_montanari_a1() - 1.15416).abs() < 1e-4,
            "A1 = {}",
            kanoria_montanari_a1()
        );
    }

    #[test]
    fn km_tends_to_one_minus_entropy_as_p_to_zero() {
        // Satellite limit case: C_KM(p) − (1 − H(p)) =
        // −A₁·p − (1−p)·log2(1−p) ≈ 0.2885·p, i.e. nonnegative,
        // O(p), and vanishing as p → 0.
        let mut last_ratio = 0.0;
        for &p in &[1e-2, 1e-3, 1e-4, 1e-5, 1e-6] {
            let km = kanoria_montanari_expansion(1, p).unwrap().value();
            let diff = km - (1.0 - binary_entropy(p));
            assert!(diff >= 0.0, "p={p}: diff={diff}");
            assert!(diff <= 0.3 * p, "p={p}: diff={diff} not O(p)");
            // diff/p converges to 1/ln2 − A₁ ≈ 0.288531 *from below*
            // (the −p²/(2 ln 2) correction shrinks with p): monotone
            // increase, bounded by the limit.
            assert!(diff / p >= last_ratio - 1e-12, "p={p}");
            assert!(diff / p <= 0.2886, "p={p}: ratio={}", diff / p);
            last_ratio = diff / p;
        }
        // Exact agreement in the p = 0 limit.
        assert_eq!(kanoria_montanari_expansion(1, 0.0).unwrap().value(), 1.0);
    }

    #[test]
    fn km_respects_erasure_upper_bound_and_domain() {
        for bits in [1u32, 2, 4, 8] {
            for i in 0..=10 {
                let p = i as f64 * 0.01;
                let km = kanoria_montanari_expansion(bits, p).unwrap().value();
                let upper = erasure_upper_bound(bits, p).unwrap().value();
                assert!(km <= upper + 1e-12, "bits={bits} p={p}: {km} > {upper}");
            }
        }
        // Past the trust region the family refuses to extrapolate.
        assert!(matches!(
            kanoria_montanari_expansion(4, 0.2),
            Err(CoreError::UnsupportedChannel(_))
        ));
        assert!(kanoria_montanari_expansion(4, -0.1).is_err());
    }

    #[test]
    fn vtr_never_exceeds_erasure_upper_bound() {
        // Satellite limit case, over the family's whole domain.
        for bits in [1u32, 2, 4, 8, 16] {
            for i in 0..=10 {
                for j in 0..=10 {
                    let p_d = i as f64 * 0.05;
                    let p_i = j as f64 * 0.05;
                    let vtr = vtr_achievable_rate(bits, p_d, p_i).unwrap().value();
                    let upper = erasure_upper_bound(bits, p_d).unwrap().value();
                    assert!(
                        vtr <= upper + 1e-12,
                        "bits={bits} p_d={p_d} p_i={p_i}: {vtr} > {upper}"
                    );
                }
            }
        }
        assert!(matches!(
            vtr_achievable_rate(4, 0.6, 0.0),
            Err(CoreError::UnsupportedChannel(_))
        ));
        assert!(matches!(
            vtr_achievable_rate(4, 0.0, 0.6),
            Err(CoreError::UnsupportedChannel(_))
        ));
    }

    #[test]
    fn all_families_agree_on_the_noiseless_channel() {
        // Satellite limit case: at P_d = P_i = 0 every family is
        // exactly the synchronous capacity N.
        for bits in [1u32, 2, 4, 8, 16] {
            let f = capacity_bound_families(bits, 0.0, 0.0).unwrap();
            let n = f64::from(bits);
            assert_eq!(f.upper.value(), n);
            assert_eq!(f.theorem5.unwrap().value(), n);
            assert_eq!(f.kanoria_montanari.unwrap().value(), n);
            assert_eq!(f.vtr.unwrap().value(), n);
        }
    }

    #[test]
    fn families_are_domain_gated() {
        // Insertions disable the deletion-only KM expansion.
        let f = capacity_bound_families(4, 0.05, 0.1).unwrap();
        assert!(f.kanoria_montanari.is_none());
        assert!(f.theorem5.is_some());
        assert!(f.vtr.is_some());
        // Heavy deletions disable VTR and KM but not Theorem 5.
        let f = capacity_bound_families(4, 0.7, 0.1).unwrap();
        assert!(f.vtr.is_none());
        assert!(f.kanoria_montanari.is_none());
        assert!(f.theorem5.is_some());
        // Off the simplex only the upper bound survives.
        let f = capacity_bound_families(4, 0.7, 0.6).unwrap();
        assert!(f.theorem5.is_none());
        assert!(f.best_lower().is_none());
    }

    #[test]
    fn best_lower_picks_the_largest_family_deterministically() {
        let f = BoundFamilies {
            upper: BitsPerSymbol(4.0),
            theorem5: Some(BitsPerSymbol(2.0)),
            kanoria_montanari: Some(BitsPerSymbol(3.0)),
            vtr: Some(BitsPerSymbol(1.0)),
        };
        assert_eq!(
            f.best_lower(),
            Some(("kanoria-montanari", BitsPerSymbol(3.0)))
        );
        // Ties go to the earlier family in BOUND_FAMILY_VERSIONS
        // order.
        let f = BoundFamilies {
            upper: BitsPerSymbol(4.0),
            theorem5: Some(BitsPerSymbol(3.0)),
            kanoria_montanari: Some(BitsPerSymbol(3.0)),
            vtr: None,
        };
        assert_eq!(f.best_lower(), Some(("theorem5", BitsPerSymbol(3.0))));
    }

    #[test]
    fn bound_family_versions_cover_every_family() {
        let names: Vec<&str> = BOUND_FAMILY_VERSIONS.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["erasure", "theorem5", "kanoria-montanari", "vtr"],
            "BOUND_FAMILY_VERSIONS drifted from the implemented set"
        );
        assert!(BOUND_FAMILY_VERSIONS.iter().all(|&(_, v)| v >= 1));
    }

    #[test]
    fn families_checked_on_the_sweep_grid() {
        // No family crossing anywhere on the standard grid: the
        // gating regions were chosen so each family is provably below
        // the erasure bound on its own domain.
        for bits in [1u32, 4, 8] {
            for i in 0..20 {
                for j in 0..20 {
                    let p_d = i as f64 * 0.05;
                    let p_i = j as f64 * 0.05;
                    capacity_bound_families(bits, p_d, p_i).unwrap();
                }
            }
        }
    }
}
