//! Capacity bounds for non-synchronous covert channels — the paper's
//! Theorems 1–5 and equations (1)–(7).
//!
//! All bounds are in the paper's normalization: **relative to the
//! synchronous capacity**, i.e. bits per symbol slot of a traditional
//! (synchronous) estimate. §4.3 is explicit that `N·(1 − P_d)` "is not
//! a physical information rate; it is a relative ratio of the physical
//! capacity estimated using traditional methods" — the
//! [`crate::degradation`] module performs that final conversion.
//!
//! * [`erasure_upper_bound`] — Theorem 1 / Theorem 4: the
//!   deletion-insertion capacity (with or without perfect feedback)
//!   is at most the matched (extended) erasure channel's
//!   `N·(1 − P_d)`.
//! * [`feedback_deletion_capacity`] — Theorems 2–3: with perfect
//!   feedback over a pure deletion channel the bound is *tight*; the
//!   resend protocol achieves `N·(1 − p_d)` exactly.
//! * [`converted_channel_capacity`] — Appendix A: the counter (skip)
//!   protocol converts the deletion-insertion channel with feedback
//!   into a synchronous M-ary symmetric DMC with error `α·P_i`,
//!   `α = 1 − 2^{−N}` (Figure 5); its capacity is `C_conv`
//!   (equations (2)–(4)).
//! * [`theorem5_lower_bound`] — Theorem 5: the achieved rate
//!   `(1 − P_d)/(1 − P_i) · C_conv`.
//! * [`convergence_ratio`] — equations (6)–(7): with `P_i = P_d` and
//!   `N → ∞` the lower and upper bounds converge.

use crate::error::{check_prob, CoreError};
use nsc_info::entropy::binary_entropy;
use nsc_info::BitsPerSymbol;
use serde::{Deserialize, Serialize};

/// A certified capacity interval in bits per symbol slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityBounds {
    /// Constructively achievable rate (Theorem 5).
    pub lower: BitsPerSymbol,
    /// Erasure-channel upper bound (Theorems 1/4).
    pub upper: BitsPerSymbol,
}

impl CapacityBounds {
    /// Width of the interval.
    pub fn gap(&self) -> f64 {
        self.upper.value() - self.lower.value()
    }

    /// Ratio `lower / upper` (1.0 when the upper bound is zero, since
    /// then both are zero).
    pub fn tightness(&self) -> f64 {
        if self.upper.value() == 0.0 {
            1.0
        } else {
            self.lower.value() / self.upper.value()
        }
    }
}

/// Theorem 1 (and Theorem 4's feedback upper bound): the capacity of
/// a deletion-insertion channel is at most the matched erasure
/// channel's `C_max = N·(1 − P_d)` — the paper's equation (1).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
///
/// # Example
///
/// ```
/// use nsc_core::bounds::erasure_upper_bound;
/// let c = erasure_upper_bound(8, 0.25)?;
/// assert_eq!(c.value(), 6.0);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn erasure_upper_bound(bits: u32, p_d: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    Ok(BitsPerSymbol(bits as f64 * (1.0 - p_d)))
}

/// Theorems 2–3: the capacity of a pure deletion channel with perfect
/// feedback *equals* the erasure capacity `N·(1 − p_d)`; the simple
/// resend protocol achieves it ([`crate::protocols::resend`]).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
pub fn feedback_deletion_capacity(bits: u32, p_d: f64) -> Result<BitsPerSymbol, CoreError> {
    erasure_upper_bound(bits, p_d)
}

/// The `α` of the paper's equation (4): the probability that a
/// uniformly random inserted symbol *differs* from the symbol it
/// replaces, `α = 1 − 2^{−N}` for `N` bits per symbol.
pub fn alpha(bits: u32) -> f64 {
    1.0 - 0.5f64.powi(bits as i32)
}

/// Effective symbol-replacement error probability of the converted
/// channel: `α · p_i`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_channel_error(bits: u32, p_i: f64) -> Result<f64, CoreError> {
    check_prob("p_i", p_i)?;
    Ok(alpha(bits) * p_i)
}

/// `C_conv` of equations (2)–(4): the capacity of the synchronous
/// channel the counter protocol converts a deletion-insertion channel
/// into — an M-ary symmetric DMC over `M = 2^N` symbols with error
/// probability `α·p_i`:
///
/// `C_conv = N − α·p_i·log2(2^N − 1) − H(α·p_i)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
///
/// # Example
///
/// With no insertions the converted channel is noiseless:
///
/// ```
/// use nsc_core::bounds::converted_channel_capacity;
/// assert_eq!(converted_channel_capacity(4, 0.0)?.value(), 4.0);
/// # Ok::<(), nsc_core::CoreError>(())
/// ```
pub fn converted_channel_capacity(bits: u32, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    let e = converted_channel_error(bits, p_i)?;
    let n = bits as f64;
    let m_minus_1 = (1u64 << bits) as f64 - 1.0;
    let c = n
        - binary_entropy(e)
        - if m_minus_1 > 0.0 {
            e * m_minus_1.log2()
        } else {
            0.0
        };
    Ok(BitsPerSymbol(c.max(0.0)))
}

/// Equation (5): the large-`N` approximation
/// `C_conv ≈ N·(1 − p_i) − H(p_i)`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_capacity_large_n(bits: u32, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_i", p_i)?;
    let n = bits as f64;
    Ok(BitsPerSymbol(
        (n * (1.0 - p_i) - binary_entropy(p_i)).max(0.0),
    ))
}

/// The transition matrix of the converted channel (Figure 5): an
/// M-ary symmetric DMC over `M = 2^N` symbols where a symbol is
/// replaced by any *specific* other symbol with probability
/// `p_i / 2^N` (total replacement probability `α·p_i`). Cross-checked
/// against [`converted_channel_capacity`] by Blahut–Arimoto in tests.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_i` is not a
/// probability.
pub fn converted_channel_matrix(bits: u32, p_i: f64) -> Result<Vec<Vec<f64>>, CoreError> {
    check_prob("p_i", p_i)?;
    let m = 1usize << bits;
    let off = p_i / m as f64;
    let mut w = vec![vec![off; m]; m];
    for (i, row) in w.iter_mut().enumerate() {
        row[i] = 1.0 - alpha(bits) * p_i;
    }
    Ok(w)
}

/// Theorem 5: the constructive lower bound on the capacity of a
/// deletion-insertion channel with perfect feedback,
///
/// `C_lower = (1 − P_d) / (1 − P_i) · C_conv` — equation (2).
///
/// The prefactor converts from the synchronous model's accounting to
/// the paper's relative normalization: waiting uses wasted on
/// deletions are charged (`1 − P_d` in the numerator) while skipped
/// symbols cost no time (`1 − P_i` in the denominator).
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] for invalid probabilities,
/// and [`CoreError::UnsupportedChannel`] when `p_i = 1` (the channel
/// only ever inserts) or `p_d + p_i > 1`.
pub fn theorem5_lower_bound(bits: u32, p_d: f64, p_i: f64) -> Result<BitsPerSymbol, CoreError> {
    check_prob("p_d", p_d)?;
    check_prob("p_i", p_i)?;
    if p_i >= 1.0 {
        return Err(CoreError::UnsupportedChannel(
            "p_i = 1: the queue never drains".to_owned(),
        ));
    }
    if p_d + p_i > 1.0 + 1e-12 {
        return Err(CoreError::UnsupportedChannel(format!(
            "p_d + p_i = {} exceeds 1",
            p_d + p_i
        )));
    }
    let conv = converted_channel_capacity(bits, p_i)?;
    Ok(BitsPerSymbol((1.0 - p_d) / (1.0 - p_i) * conv.value()))
}

/// Both Theorem 5's lower bound and Theorem 4's upper bound for a
/// deletion-insertion channel with perfect feedback.
///
/// # Errors
///
/// Propagates the errors of [`theorem5_lower_bound`] and
/// [`erasure_upper_bound`].
pub fn capacity_bounds(bits: u32, p_d: f64, p_i: f64) -> Result<CapacityBounds, CoreError> {
    Ok(CapacityBounds {
        lower: theorem5_lower_bound(bits, p_d, p_i)?,
        upper: erasure_upper_bound(bits, p_d)?,
    })
}

/// Equations (6)–(7): with `P_i = P_d = p`, the ratio
/// `C_lower / C_upper → 1` as `N → ∞`. Returns the ratio at finite
/// `N`.
///
/// # Errors
///
/// Propagates the errors of [`capacity_bounds`].
pub fn convergence_ratio(bits: u32, p: f64) -> Result<f64, CoreError> {
    Ok(capacity_bounds(bits, p, p)?.tightness())
}

/// The inherent degradation factor of §4.3 and §5: the capacity of a
/// synchronized non-synchronous channel degrades "roughly
/// proportional to `P_d`", i.e. by the factor `1 − P_d`.
///
/// # Errors
///
/// Returns [`CoreError::BadProbability`] when `p_d` is not a
/// probability.
pub fn degradation_factor(p_d: f64) -> Result<f64, CoreError> {
    check_prob("p_d", p_d)?;
    Ok(1.0 - p_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_info::blahut::{blahut_arimoto, BlahutOptions};

    #[test]
    fn equation_1_upper_bound() {
        assert_eq!(erasure_upper_bound(1, 0.0).unwrap().value(), 1.0);
        assert_eq!(erasure_upper_bound(8, 0.5).unwrap().value(), 4.0);
        assert_eq!(erasure_upper_bound(4, 1.0).unwrap().value(), 0.0);
        assert!(erasure_upper_bound(4, 1.5).is_err());
    }

    #[test]
    fn theorem_3_equals_theorem_1() {
        for &p in &[0.0, 0.1, 0.7] {
            assert_eq!(
                feedback_deletion_capacity(3, p).unwrap(),
                erasure_upper_bound(3, p).unwrap()
            );
        }
    }

    #[test]
    fn alpha_values() {
        assert_eq!(alpha(1), 0.5);
        assert_eq!(alpha(2), 0.75);
        assert!((alpha(16) - (1.0 - 1.0 / 65536.0)).abs() < 1e-15);
    }

    #[test]
    fn converted_capacity_noiseless_limit() {
        for bits in 1..=8 {
            assert_eq!(
                converted_channel_capacity(bits, 0.0).unwrap().value(),
                bits as f64
            );
        }
    }

    #[test]
    fn converted_capacity_matches_blahut_on_figure5_matrix() {
        for &(bits, p_i) in &[(1u32, 0.2), (2, 0.3), (3, 0.1), (4, 0.5)] {
            let w = converted_channel_matrix(bits, p_i).unwrap();
            let ba = blahut_arimoto(&w, &BlahutOptions::default()).unwrap();
            let closed = converted_channel_capacity(bits, p_i).unwrap().value();
            assert!(
                (ba.capacity - closed).abs() < 1e-7,
                "bits={bits} p_i={p_i}: BA={} closed={closed}",
                ba.capacity
            );
        }
    }

    #[test]
    fn converted_matrix_rows_are_stochastic() {
        let w = converted_channel_matrix(3, 0.4).unwrap();
        for row in &w {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equation_5_large_n_approximation_converges() {
        let p_i = 0.1;
        let mut last_gap = f64::INFINITY;
        for bits in [2u32, 4, 8, 12, 16] {
            let exact = converted_channel_capacity(bits, p_i).unwrap().value();
            let approx = converted_capacity_large_n(bits, p_i).unwrap().value();
            let gap = (exact - approx).abs();
            assert!(gap <= last_gap + 1e-9, "gap grew at N={bits}");
            last_gap = gap;
        }
        // At N = 16 the approximation is tight.
        assert!(last_gap < 1e-3, "gap at N=16 is {last_gap}");
    }

    #[test]
    fn theorem_5_reduces_to_conv_capacity_without_deletions_or_insertions() {
        let c = theorem5_lower_bound(4, 0.0, 0.0).unwrap();
        assert_eq!(c.value(), 4.0);
    }

    #[test]
    fn theorem_5_validation() {
        assert!(theorem5_lower_bound(4, 0.6, 0.6).is_err());
        assert!(theorem5_lower_bound(4, 0.0, 1.0).is_err());
        assert!(theorem5_lower_bound(4, -0.1, 0.0).is_err());
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound() {
        for bits in [1u32, 2, 4, 8, 16] {
            for i in 0..20 {
                for j in 0..20 {
                    let p_d = i as f64 * 0.05;
                    let p_i = j as f64 * 0.05;
                    if p_d + p_i > 1.0 || p_i >= 1.0 {
                        continue;
                    }
                    let b = capacity_bounds(bits, p_d, p_i).unwrap();
                    assert!(
                        b.lower.value() <= b.upper.value() + 1e-9,
                        "violated at bits={bits} p_d={p_d} p_i={p_i}: {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn equations_6_7_convergence_in_n() {
        // With p_i = p_d, the ratio increases towards 1 as N grows.
        for &p in &[0.01, 0.1, 0.3] {
            let mut last = 0.0;
            for bits in [1u32, 2, 4, 8, 16] {
                let r = convergence_ratio(bits, p).unwrap();
                assert!(r >= last - 1e-12, "ratio not monotone at p={p} N={bits}");
                last = r;
            }
            assert!(last > 0.9, "ratio at N=16, p={p} is only {last}");
        }
    }

    #[test]
    fn limit_formula_of_equation_6() {
        // As N -> inf with p_i = p_d = p:
        // C_lower -> N(1-p) - H(p), so
        // C_lower/C_upper -> 1 - H(p)/(N(1-p)).
        let p = 0.1;
        let bits = 16u32;
        let ratio = convergence_ratio(bits, p).unwrap();
        let predicted = 1.0 - binary_entropy(p) / (bits as f64 * (1.0 - p));
        assert!((ratio - predicted).abs() < 1e-3, "{ratio} vs {predicted}");
    }

    #[test]
    fn degradation_is_proportional_to_p_d() {
        assert_eq!(degradation_factor(0.0).unwrap(), 1.0);
        assert_eq!(degradation_factor(0.25).unwrap(), 0.75);
        assert_eq!(degradation_factor(1.0).unwrap(), 0.0);
        assert!(degradation_factor(2.0).is_err());
    }

    #[test]
    fn bounds_monotone_in_p_d() {
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let p_d = i as f64 / 10.0;
            if p_d + 0.1 > 1.0 {
                break;
            }
            let b = capacity_bounds(4, p_d, 0.1).unwrap();
            assert!(b.upper.value() <= last + 1e-12);
            last = b.upper.value();
        }
    }

    #[test]
    fn tightness_of_zero_upper_is_one() {
        let b = CapacityBounds {
            lower: BitsPerSymbol(0.0),
            upper: BitsPerSymbol(0.0),
        };
        assert_eq!(b.tightness(), 1.0);
        assert_eq!(b.gap(), 0.0);
    }
}
