//! The allocation-free `run_*_into` entry points must be *bit-identical*
//! to their allocating counterparts — hot or cold scratch, every
//! mechanism, every seed.
//!
//! This is the contract `TrialScratch` documents ("buffers are
//! observational state") turned into a test: each of the seven §3
//! mechanism runners is executed twice from identical RNG states —
//! once through the allocating wrapper, once through `run_*_into`
//! with a deliberately *dirty* reused scratch — and the two outcome
//! structs are compared with derived `PartialEq`, which for the `f64`
//! fields means bit-for-bit equality of every float.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_core::sim::adaptive::{run_adaptive_slotted, run_adaptive_slotted_into};
use nsc_core::sim::counter::{run_counter_protocol, run_counter_protocol_into};
use nsc_core::sim::noisy_feedback::{run_noisy_counter, run_noisy_counter_into, FeedbackQuality};
use nsc_core::sim::slotted::{run_slotted, run_slotted_into};
use nsc_core::sim::stop_wait::{run_stop_and_wait, run_stop_and_wait_into};
use nsc_core::sim::unsync::{run_unsynchronized, run_unsynchronized_into};
use nsc_core::sim::wide::{run_wide_unsynchronized, run_wide_unsynchronized_into, SampleKind};
use nsc_core::sim::{BernoulliSchedule, NullObserver, TrialScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

const SEEDS: [u64; 3] = [1, 2, 7];
const BITS: u32 = 2;
const MSG_LEN: usize = 64;
const MAX_OPS: usize = 4_000;
const SENDER_PROB: f64 = 0.55;

fn message(seed: u64) -> Vec<Symbol> {
    let a = Alphabet::new(BITS).unwrap();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    (0..MSG_LEN).map(|_| a.random(&mut rng)).collect()
}

/// A fresh schedule whose RNG stream depends only on `seed`, so the
/// allocating and `_into` runs of a pair draw identical schedules.
fn schedule(seed: u64) -> BernoulliSchedule<StdRng> {
    BernoulliSchedule::new(SENDER_PROB, StdRng::seed_from_u64(seed)).unwrap()
}

/// A scratch polluted with stale garbage from "a previous trial":
/// non-empty buffers, wrong lengths, nonsense contents. If any runner
/// reads (rather than clears) leftover state, the paired outcomes
/// diverge and the `assert_eq!` below names the mechanism and seed.
fn dirty_scratch() -> TrialScratch {
    TrialScratch {
        message: vec![Symbol::from_index(3); 17],
        received: vec![Symbol::from_index(2); 999],
        sample_truth: vec![SampleKind::Stale; 123],
        acks: VecDeque::from(vec![usize::MAX, 0, 42]),
        region: vec![true; 77],
        events: Vec::new(),
    }
}

#[test]
fn unsynchronized_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        let base = run_unsynchronized(&msg, &mut schedule(seed), MAX_OPS).unwrap();
        let into = run_unsynchronized_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "unsync diverged at seed {seed}");
    }
}

#[test]
fn counter_protocol_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        let base = run_counter_protocol(&msg, &mut schedule(seed), MAX_OPS).unwrap();
        let into = run_counter_protocol_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "counter diverged at seed {seed}");
    }
}

#[test]
fn stop_and_wait_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        let base = run_stop_and_wait(&msg, &mut schedule(seed), MAX_OPS).unwrap();
        let into = run_stop_and_wait_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "stop-wait diverged at seed {seed}");
    }
}

#[test]
fn slotted_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        for slot_len in [1, 3] {
            let msg = message(seed);
            let base = run_slotted(&msg, &mut schedule(seed), slot_len, MAX_OPS).unwrap();
            let into = run_slotted_into(
                &msg,
                &mut schedule(seed),
                slot_len,
                MAX_OPS,
                &mut NullObserver,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(
                base, into,
                "slotted(slot_len={slot_len}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn adaptive_slotted_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        let base = run_adaptive_slotted(&msg, &mut schedule(seed), MAX_OPS).unwrap();
        let into = run_adaptive_slotted_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "adaptive diverged at seed {seed}");
    }
}

#[test]
fn noisy_counter_into_matches_allocating() {
    let quality = FeedbackQuality {
        p_loss: 0.2,
        delay: 2,
    };
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        // The feedback RNG is a second stream; pair it by seed too.
        let base = run_noisy_counter(
            &msg,
            &mut schedule(seed),
            quality,
            &mut StdRng::seed_from_u64(seed ^ 0xfeed),
            MAX_OPS,
        )
        .unwrap();
        let into = run_noisy_counter_into(
            &msg,
            &mut schedule(seed),
            quality,
            &mut StdRng::seed_from_u64(seed ^ 0xfeed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "noisy-counter diverged at seed {seed}");
    }
}

#[test]
fn wide_into_matches_allocating() {
    let mut scratch = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);
        let base = run_wide_unsynchronized(&msg, BITS, &mut schedule(seed), MAX_OPS).unwrap();
        let into = run_wide_unsynchronized_into(
            &msg,
            BITS,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(base, into, "wide diverged at seed {seed}");
    }
}

#[test]
fn scratch_reuse_across_mechanisms_is_inert() {
    // One scratch threaded through *all* mechanisms back to back —
    // the cross-contamination case the per-mechanism tests cannot
    // see. Each hot outcome must equal a cold-scratch rerun.
    let mut hot = dirty_scratch();
    for seed in SEEDS {
        let msg = message(seed);

        let h = run_unsynchronized_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut hot,
        )
        .unwrap();
        let c = run_unsynchronized_into(
            &msg,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut TrialScratch::new(),
        )
        .unwrap();
        assert_eq!(h, c, "unsync hot/cold diverged at seed {seed}");

        let h = run_wide_unsynchronized_into(
            &msg,
            BITS,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut hot,
        )
        .unwrap();
        let c = run_wide_unsynchronized_into(
            &msg,
            BITS,
            &mut schedule(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut TrialScratch::new(),
        )
        .unwrap();
        assert_eq!(h, c, "wide hot/cold diverged at seed {seed}");

        let h = run_noisy_counter_into(
            &msg,
            &mut schedule(seed),
            FeedbackQuality::perfect(),
            &mut StdRng::seed_from_u64(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut hot,
        )
        .unwrap();
        let c = run_noisy_counter_into(
            &msg,
            &mut schedule(seed),
            FeedbackQuality::perfect(),
            &mut StdRng::seed_from_u64(seed),
            MAX_OPS,
            &mut NullObserver,
            &mut TrialScratch::new(),
        )
        .unwrap();
        assert_eq!(h, c, "noisy-counter hot/cold diverged at seed {seed}");
    }
}
