//! The bitsliced kernel's contract, as integration tests: for every
//! converted mechanism, `KernelKind::Bitsliced` produces the *same
//! bytes* as the scalar oracle — any seed, any thread count, any lane
//! packing (trial counts that leave a masked tail lane included).
//!
//! Two layers:
//!
//! * a pinned unit check that one `LaneRng::next_sender_mask` call is
//!   exactly 64 scalar Bernoulli draws — bit `l` of the mask equals
//!   both `(next_u64() >> 11) < bernoulli_threshold(q)` and rand's
//!   own `gen::<f64>() < q` on the lane's `TrialRng`;
//! * a proptest over trial counts not divisible by 64, comparing the
//!   serialized `CampaignSummary` of scalar and bitsliced runs across
//!   seeds {1, 2, 7} and thread counts {1, 2, 7}.
//!
//! Comparison is on `serde_json::to_string` output, so "equal" means
//! bit-for-bit equal floats, not approximately equal statistics.

use nsc_core::engine::{
    run_campaign_manifest, EngineConfig, KernelKind, Mechanism, TrialPlan, TrialRng,
};
use nsc_core::sim::bitsliced::{bernoulli_threshold, LaneRng, LANES};
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};

const MECHANISMS: [Mechanism; 3] = [
    Mechanism::Unsynchronized,
    Mechanism::Counter,
    Mechanism::Slotted { slot_len: 3 },
];

/// Serialized summary of one campaign — the byte string two kernels
/// must agree on.
fn summary_json(
    kernel: KernelKind,
    threads: usize,
    seed: u64,
    plan: &TrialPlan,
    trials: usize,
) -> String {
    let cfg = EngineConfig::seeded(seed)
        .with_threads(threads)
        .with_kernel(kernel);
    let (summary, _) = run_campaign_manifest(&cfg, plan, trials).expect("campaign runs");
    serde_json::to_string(&summary).expect("summaries serialize")
}

#[test]
fn lane_bernoulli_masks_pin_to_scalar_trial_rng_draws() {
    // One next_sender_mask call must be 64 scalar draws, including
    // the degenerate never-send / always-send thresholds.
    for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
        let t = bernoulli_threshold(q);
        let mut lanes = LaneRng::new();
        let mut scalars: Vec<TrialRng> = (0..LANES as u64)
            .map(|i| TrialRng::from_trial(42, i))
            .collect();
        for (lane, rng) in scalars.iter().enumerate() {
            lanes.set_lane(lane, rng.state());
        }
        for step in 0..64 {
            let mask = lanes.next_sender_mask(t);
            for (lane, rng) in scalars.iter_mut().enumerate() {
                // rand 0.8's gen::<f64>() is (next_u64() >> 11) * 2^-53,
                // so `< q` on the float and `< threshold` on the high
                // 53 bits must be the same predicate.
                let f: f64 = rng.clone().gen();
                let word = rng.next_u64();
                let bit = (mask >> lane) & 1 == 1;
                assert_eq!(bit, (word >> 11) < t, "q={q} step={step} lane={lane}");
                assert_eq!(bit, f < q, "q={q} step={step} lane={lane}");
            }
        }
    }
}

#[test]
fn threshold_spans_the_unit_interval_exactly() {
    assert_eq!(bernoulli_threshold(0.0), 0);
    assert_eq!(bernoulli_threshold(1.0), 1u64 << 53);
    // Strictly inside the range for interior q.
    let t = bernoulli_threshold(0.5);
    assert!((1..(1u64 << 53)).contains(&t));
}

#[test]
fn full_block_packings_match_too() {
    // Exact multiples of 64 (no masked tail) — the complement of the
    // proptest below.
    let plan = TrialPlan::new(Mechanism::Unsynchronized, 2, 80, 0.5);
    for trials in [64usize, 128] {
        let scalar = summary_json(KernelKind::Scalar, 1, 7, &plan, trials);
        let bitsliced = summary_json(KernelKind::Bitsliced, 1, 7, &plan, trials);
        assert_eq!(scalar, bitsliced, "trials={trials}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bitsliced_is_bit_identical_across_tail_packings_seeds_and_threads(
        trials in (1usize..=193).prop_filter("tail-lane packings", |t| t % 64 != 0),
        seed in prop::sample::select(vec![1u64, 2, 7]),
    ) {
        for mechanism in MECHANISMS {
            let plan = TrialPlan::new(mechanism, 2, 80, 0.5);
            let scalar = summary_json(KernelKind::Scalar, 1, seed, &plan, trials);
            for threads in [1usize, 2, 7] {
                let bitsliced = summary_json(KernelKind::Bitsliced, threads, seed, &plan, trials);
                prop_assert_eq!(
                    &scalar,
                    &bitsliced,
                    "{} diverged: trials={} seed={} threads={}",
                    mechanism.name(),
                    trials,
                    seed,
                    threads
                );
            }
        }
    }
}

#[test]
fn seeding_replay_consumes_the_message_words_exactly() {
    // The bitsliced driver re-derives each lane's schedule RNG by
    // discarding the words `Alphabet::fill_random` consumed. Pin the
    // word count here: for bits = 2 (32 symbols per word), a 80-symbol
    // message costs ceil(80 / 32) = 3 words.
    let mut a = TrialRng::from_trial(9, 4);
    let mut b = TrialRng::from_trial(9, 4);
    let alphabet = nsc_channel::alphabet::Alphabet::new(2).unwrap();
    let mut symbols = Vec::new();
    alphabet.fill_random(&mut a, &mut symbols, 80);
    assert_eq!(symbols.len(), 80);
    for _ in 0..3 {
        b.next_u64();
    }
    // Both generators must now be at the same stream position, so the
    // schedule RNG derived next is identical either way.
    assert_eq!(
        TrialRng::seed_from_u64(a.gen()).state(),
        TrialRng::seed_from_u64(b.gen()).state()
    );
}
