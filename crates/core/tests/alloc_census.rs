//! The runtime half of the allocation audit (DESIGN §14): after one
//! warm-up trial sizes a `TrialScratch`, every `run_*_into` mechanism
//! runner and both bitsliced lane kernels must make **zero** heap
//! allocations. `nsc-lint`'s `hot-alloc` rule pins the lexical
//! patterns; this suite counts the actual events through
//! [`CountingAlloc`], so an allocation hidden behind a call the lint
//! cannot see still fails CI.
//!
//! Run in release mode (`cargo test --release --test alloc_census`):
//! the assertions are identical either way, but release is what the
//! bench path measures.

use nsc_bench::alloc::{alloc_census, oracle_live, Census, CountingAlloc};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_core::sim::adaptive::run_adaptive_slotted_into;
use nsc_core::sim::bitsliced::{
    bernoulli_threshold, run_counter_lanes, run_slotted_lanes, run_unsync_lanes, LaneRng, LANES,
};
use nsc_core::sim::counter::run_counter_protocol_into;
use nsc_core::sim::noisy_feedback::{run_noisy_counter_into, FeedbackQuality};
use nsc_core::sim::slotted::run_slotted_into;
use nsc_core::sim::stop_wait::run_stop_and_wait_into;
use nsc_core::sim::unsync::run_unsynchronized_into;
use nsc_core::sim::wide::run_wide_unsynchronized_into;
use nsc_core::sim::{BernoulliSchedule, NullObserver, TrialScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const BITS: u32 = 2;
const MSG_LEN: usize = 64;
const MAX_OPS: usize = 4_000;
const SENDER_PROB: f64 = 0.55;

fn message(seed: u64) -> Vec<Symbol> {
    let a = Alphabet::new(BITS).unwrap();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    (0..MSG_LEN).map(|_| a.random(&mut rng)).collect()
}

fn schedule(seed: u64) -> BernoulliSchedule<StdRng> {
    BernoulliSchedule::new(SENDER_PROB, StdRng::seed_from_u64(seed)).unwrap()
}

/// Runs `trial` twice — cold scratch, then warm — and returns both
/// censuses. The trial must be deterministic (same seed both runs)
/// so the warm run's buffer demands exactly match the cold run's.
fn warm_then_steady(mut trial: impl FnMut()) -> (Census, Census) {
    assert!(
        oracle_live(),
        "CountingAlloc is not this binary's global allocator; censuses would be vacuous"
    );
    let ((), warm) = alloc_census(&mut trial);
    let ((), steady) = alloc_census(&mut trial);
    (warm, steady)
}

/// Asserts the standard steady-state contract: the cold run sizes
/// the buffers (and must be *seen* doing so — a second liveness
/// guard), the warm run allocates nothing.
fn assert_steady_free(name: &str, trial: impl FnMut()) {
    let (warm, steady) = warm_then_steady(trial);
    assert!(warm.allocs > 0, "{name}: warm-up made no allocations — oracle or trial is miswired");
    assert_eq!(
        steady.allocs, 0,
        "{name}: steady-state made {} allocations ({} bytes)",
        steady.allocs, steady.bytes
    );
}

#[test]
fn unsynchronized_steady_state_is_allocation_free() {
    let msg = message(1);
    let mut scratch = TrialScratch::new();
    assert_steady_free("unsync", || {
        let mut sched = schedule(11);
        let o = run_unsynchronized_into(&msg, &mut sched, MAX_OPS, &mut NullObserver, &mut scratch)
            .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn counter_steady_state_is_allocation_free() {
    let msg = message(2);
    let mut scratch = TrialScratch::new();
    assert_steady_free("counter", || {
        let mut sched = schedule(12);
        let o =
            run_counter_protocol_into(&msg, &mut sched, MAX_OPS, &mut NullObserver, &mut scratch)
                .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn stop_and_wait_steady_state_is_allocation_free() {
    let msg = message(3);
    let mut scratch = TrialScratch::new();
    assert_steady_free("stop_wait", || {
        let mut sched = schedule(13);
        let o = run_stop_and_wait_into(&msg, &mut sched, MAX_OPS, &mut NullObserver, &mut scratch)
            .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn slotted_steady_state_is_allocation_free() {
    let msg = message(4);
    let mut scratch = TrialScratch::new();
    assert_steady_free("slotted", || {
        let mut sched = schedule(14);
        let o = run_slotted_into(&msg, &mut sched, 4, MAX_OPS, &mut NullObserver, &mut scratch)
            .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn adaptive_slotted_steady_state_is_allocation_free() {
    let msg = message(5);
    let mut scratch = TrialScratch::new();
    assert_steady_free("adaptive", || {
        let mut sched = schedule(15);
        let o =
            run_adaptive_slotted_into(&msg, &mut sched, MAX_OPS, &mut NullObserver, &mut scratch)
                .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn noisy_counter_steady_state_is_allocation_free() {
    let msg = message(6);
    let mut scratch = TrialScratch::new();
    assert_steady_free("noisy_counter", || {
        let mut sched = schedule(16);
        let mut fb_rng = StdRng::seed_from_u64(61);
        let o = run_noisy_counter_into(
            &msg,
            &mut sched,
            FeedbackQuality::perfect(),
            &mut fb_rng,
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        scratch.received = o.received;
    });
}

#[test]
fn wide_steady_state_is_allocation_free() {
    let msg = message(7);
    let mut scratch = TrialScratch::new();
    assert_steady_free("wide", || {
        let mut sched = schedule(17);
        let o = run_wide_unsynchronized_into(
            &msg,
            BITS,
            &mut sched,
            MAX_OPS,
            &mut NullObserver,
            &mut scratch,
        )
        .unwrap();
        scratch.received = o.received;
        scratch.sample_truth = o.sample_truth;
    });
}

/// The bitsliced kernels return fixed-size counter arrays: they must
/// never allocate — not even on the first batch.
#[test]
fn lane_kernels_never_allocate() {
    assert!(oracle_live());
    let mut rng = LaneRng::new();
    for lane in 0..LANES {
        rng.set_lane(lane, [lane as u64 + 1, 2, 3, 4]);
    }
    let threshold = bernoulli_threshold(SENDER_PROB);
    let symbols: Vec<u16> = (0..LANES * MSG_LEN).map(|i| (i % 4) as u16).collect();
    let (_, unsync) = alloc_census(|| {
        black_box(run_unsync_lanes(&mut rng, LANES, MSG_LEN, threshold, MAX_OPS))
    });
    let (_, counter) = alloc_census(|| {
        black_box(run_counter_lanes(
            &mut rng, &symbols, LANES, MSG_LEN, threshold, MAX_OPS,
        ))
    });
    let (_, slotted) = alloc_census(|| {
        black_box(run_slotted_lanes(
            &mut rng, LANES, MSG_LEN, 4, threshold, MAX_OPS,
        ))
    });
    assert_eq!(unsync.allocs, 0, "unsync lanes allocated");
    assert_eq!(counter.allocs, 0, "counter lanes allocated");
    assert_eq!(slotted.allocs, 0, "slotted lanes allocated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At any message length and seed, the cold run's allocation
    /// count stays small (buffer growth is geometric, not per-op) and
    /// the second identical trial is *exactly* allocation-free.
    #[test]
    fn warm_up_is_bounded_and_steady_state_is_zero(
        len in 1usize..96,
        seed in 0u64..1_000,
    ) {
        let a = Alphabet::new(BITS).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<Symbol> = (0..len).map(|_| a.random(&mut rng)).collect();
        let mut scratch = TrialScratch::new();
        let (warm, steady) = warm_then_steady(|| {
            let mut sched = schedule(seed ^ 0xA5);
            let o = run_unsynchronized_into(&msg, &mut sched, MAX_OPS, &mut NullObserver, &mut scratch)
                .unwrap();
            scratch.received = o.received;
        });
        prop_assert!(warm.allocs > 0);
        prop_assert!(warm.allocs <= 64, "warm-up made {} allocations", warm.allocs);
        prop_assert_eq!(steady.allocs, 0);
    }
}
