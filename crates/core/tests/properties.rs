//! Property-based tests of the protocols and the simulation engine.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::protocols::resend::run_resend;
use nsc_core::protocols::selective::run_selective_repeat;
use nsc_core::sim::counter::run_counter_protocol;
use nsc_core::sim::stop_wait::run_stop_and_wait;
use nsc_core::sim::unsync::run_unsynchronized;
use nsc_core::sim::{BernoulliSchedule, OpSchedule, Party, TraceSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn message(bits: u32, len: usize, seed: u64) -> Vec<Symbol> {
    let a = Alphabet::new(bits).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| a.random(&mut rng)).collect()
}

/// Strategy: an arbitrary finite operation trace.
fn op_trace() -> impl Strategy<Value = Vec<Party>> {
    prop::collection::vec(prop::bool::ANY, 1..2000).prop_map(|bits| {
        bits.into_iter()
            .map(|b| if b { Party::Sender } else { Party::Receiver })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The resend protocol delivers the message exactly, for every
    /// deletion rate and message.
    #[test]
    fn resend_is_exact(p_d in 0.0f64..0.9, len in 1usize..300, seed in 0u64..500) {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(2).unwrap(), DiParams::deletion_only(p_d).unwrap());
        let msg = message(2, len, seed);
        let out = run_resend(&ch, &msg, &mut StdRng::seed_from_u64(seed ^ 1)).unwrap();
        prop_assert_eq!(out.received, msg);
        prop_assert!(out.channel_uses >= len);
        prop_assert_eq!(out.channel_uses - len, out.retransmissions);
    }

    /// Selective repeat agrees with resend on exact delivery, for
    /// every window size.
    #[test]
    fn selective_repeat_is_exact(
        p_d in 0.0f64..0.8,
        len in 1usize..200,
        window in 1usize..64,
        seed in 0u64..500,
    ) {
        let ch = DeletionInsertionChannel::new(
            Alphabet::new(2).unwrap(), DiParams::deletion_only(p_d).unwrap());
        let msg = message(2, len, seed);
        let out = run_selective_repeat(&ch, &msg, window, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(out.received, msg);
    }

    /// Counter protocol alignment invariant on *arbitrary* traces:
    /// the received stream never exceeds the message length, every
    /// error position is a stale fill, and op accounting balances.
    #[test]
    fn counter_protocol_invariants(trace in op_trace(), seed in 0u64..500) {
        let msg = message(3, 200, seed);
        let mut sched = TraceSchedule::new(trace);
        let out = run_counter_protocol(&msg, &mut sched, usize::MAX).unwrap();
        prop_assert!(out.received.len() <= msg.len());
        prop_assert_eq!(out.ops, out.sender_ops + out.receiver_ops);
        let errors = out.received.iter().zip(&msg).filter(|(a, b)| a != b).count();
        prop_assert!(errors <= out.stale_fills, "errors {errors} > stale {}", out.stale_fills);
        prop_assert!(out.waits <= out.sender_ops);
    }

    /// Stop-and-wait never corrupts, on arbitrary traces.
    #[test]
    fn stop_and_wait_prefix_exact(trace in op_trace(), seed in 0u64..500) {
        let msg = message(2, 100, seed);
        let mut sched = TraceSchedule::new(trace);
        let out = run_stop_and_wait(&msg, &mut sched, usize::MAX).unwrap();
        prop_assert!(out.received.len() <= msg.len());
        prop_assert_eq!(out.received.as_slice(), &msg[..out.received.len()]);
    }

    /// Unsynchronized run bookkeeping balances on arbitrary traces.
    #[test]
    fn unsync_bookkeeping(trace in op_trace(), seed in 0u64..500) {
        let sender_ops = trace.iter().filter(|p| **p == Party::Sender).count();
        prop_assume!(sender_ops > 0);
        let msg = message(2, sender_ops, seed);
        let mut sched = TraceSchedule::new(trace);
        let out = run_unsynchronized(&msg, &mut sched, usize::MAX).unwrap();
        prop_assert!(out.writes <= sender_ops);
        prop_assert!(out.deleted_writes <= out.writes);
        prop_assert!(out.stale_reads <= out.reads);
        prop_assert_eq!(out.received.len(), out.reads);
        prop_assert!(out.p_d() <= 1.0 && out.p_i() <= 1.0);
    }

    /// Bernoulli schedules of matching seed are reproducible.
    #[test]
    fn bernoulli_schedule_reproducible(q in 0.0f64..=1.0, seed in 0u64..100) {
        let mut a = BernoulliSchedule::new(q, StdRng::seed_from_u64(seed)).unwrap();
        let mut b = BernoulliSchedule::new(q, StdRng::seed_from_u64(seed)).unwrap();
        for _ in 0..100 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }
}
