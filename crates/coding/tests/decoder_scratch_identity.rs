//! The scratch-identity contract of the allocation-free decode hot
//! path (DESIGN §13): every `*_into` entry point, fed a *dirty*
//! scratch left over from decoding different frames, must be
//! bit-identical to its allocating wrapper — across codecs, seeds,
//! and engine thread counts — and the lattice posteriors it produces
//! must stay inside `[0, 1]` with zero-prior positions pinned at
//! exactly zero, at any band width.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_coding::bits::random_bits;
use nsc_coding::campaign::{run_coded_campaign_with, CodedPlan, DecoderBackend};
use nsc_coding::conv::ConvCode;
use nsc_coding::lattice::{DecoderScratch, DriftLattice};
use nsc_coding::marker::MarkerCode;
use nsc_coding::rate::Codec;
use nsc_coding::repetition::RepetitionCode;
use nsc_coding::sequential::{SequentialConfig, SequentialDecoder, SequentialScratch};
use nsc_coding::watermark::{WatermarkCode, WatermarkScratch};
use nsc_coding::watermark_ldpc::{LdpcWatermarkCode, LdpcWatermarkScratch};
use nsc_core::engine::EngineConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
    let ch = DeletionInsertionChannel::new(
        Alphabet::binary(),
        DiParams::new(p_d, p_i, p_s).unwrap(),
    );
    let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ch.transmit(&input, &mut rng)
        .received
        .iter()
        .map(|s| s.index() == 1)
        .collect()
}

#[test]
fn watermark_dirty_scratch_matches_allocating() {
    let codec = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 99).unwrap();
    // One scratch carried dirty through every (seed, frame size)
    // combination: the reuse path must never leak state between
    // frames.
    let mut scratch = WatermarkScratch::new();
    let mut out = Vec::new();
    for seed in [1u64, 2, 7] {
        for k in [24usize, 60] {
            let data = random_bits(k, &mut StdRng::seed_from_u64(seed));
            let sent = codec.encode(&data).unwrap();
            let recv = through_channel(&sent, 0.05, 0.02, 0.01, seed ^ 0xA5);
            let fresh = codec.decode(&recv, k, 0.05, 0.02, 0.01).unwrap();
            codec
                .decode_into(&mut scratch, &recv, k, 0.05, 0.02, 0.01, &mut out)
                .unwrap();
            assert_eq!(out, fresh, "seed {seed}, k {k}");
        }
    }
}

#[test]
fn ldpc_watermark_dirty_scratch_matches_allocating() {
    let codec = LdpcWatermarkCode::new(48, 48, 3, 3, 0xBEE).unwrap();
    let mut scratch = LdpcWatermarkScratch::new();
    let mut out = Vec::new();
    for seed in [1u64, 2, 7] {
        let data = random_bits(48, &mut StdRng::seed_from_u64(seed));
        let sent = codec.encode(&data).unwrap();
        let recv = through_channel(&sent, 0.04, 0.0, 0.0, seed ^ 0x5A);
        let fresh = codec.decode(&recv, 0.04, 0.0, 0.0).unwrap();
        codec
            .decode_into(&mut scratch, &recv, 0.04, 0.0, 0.0, &mut out)
            .unwrap();
        assert_eq!(out, fresh, "seed {seed}");
    }
}

#[test]
fn marker_and_repetition_dirty_buffers_match_allocating() {
    let marker = MarkerCode::default_params();
    let repetition = RepetitionCode::new(3).unwrap();
    let mut out = Vec::new();
    for seed in [1u64, 2, 7] {
        for k in [16usize, 40] {
            let data = random_bits(k, &mut StdRng::seed_from_u64(seed));
            let sent = marker.encode(&data).unwrap();
            let recv = through_channel(&sent, 0.05, 0.0, 0.0, seed ^ 0x33);
            let fresh = marker.decode(&recv, k).unwrap();
            marker.decode_into(&recv, k, &mut out).unwrap();
            assert_eq!(out, fresh, "marker seed {seed}, k {k}");

            let sent = repetition.encode(&data);
            let recv = through_channel(&sent, 0.05, 0.0, 0.0, seed ^ 0x44);
            let fresh = repetition.decode(&recv, k);
            repetition.decode_into(&recv, k, &mut out);
            assert_eq!(out, fresh, "repetition seed {seed}, k {k}");
        }
    }
}

#[test]
fn sequential_dirty_scratch_matches_allocating() {
    let code = ConvCode::standard_half_rate();
    let decoder = SequentialDecoder::new(
        ConvCode::standard_half_rate(),
        SequentialConfig {
            p_d: 0.02,
            p_i: 0.0,
            p_s: 0.0,
            max_expansions: 50_000,
        },
    )
    .unwrap();
    let mut scratch = SequentialScratch::new();
    let mut out = Vec::new();
    for seed in [1u64, 2, 7] {
        for k in [12usize, 20] {
            let data = random_bits(k, &mut StdRng::seed_from_u64(seed));
            let sent = code.encode(&data);
            let recv = through_channel(&sent, 0.02, 0.0, 0.0, seed ^ 0x77);
            let fresh = decoder.decode(&recv, k);
            let reused = decoder.decode_into(&recv, k, &mut scratch, &mut out);
            match (fresh, reused) {
                (Ok(f), Ok(())) => assert_eq!(out, f, "seed {seed}, k {k}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed}, k {k}"),
                (f, r) => panic!("divergent outcomes at seed {seed}, k {k}: {f:?} vs {r:?}"),
            }
        }
    }
}

#[test]
fn lattice_dirty_scratch_matches_allocating_across_band_shapes() {
    let lattice = DriftLattice::new(0.06, 0.03, 0.01).unwrap();
    let mut scratch = DecoderScratch::new();
    // Frame lengths chosen to force the band layout to grow, shrink,
    // and grow again in one scratch lifetime.
    for (len, seed) in [(90usize, 1u64), (30, 2), (150, 7)] {
        let watermark = random_bits(len, &mut StdRng::seed_from_u64(seed));
        let priors: Vec<f64> = (0..len)
            .map(|i| if i % 3 == 0 { 0.5 } else { 0.0 })
            .collect();
        let received = through_channel(&watermark, 0.06, 0.03, 0.01, seed ^ 0x99);
        let fresh = lattice.posteriors(&watermark, &priors, &received).unwrap();
        let reused = lattice
            .posteriors_into(&mut scratch, &watermark, &priors, &received)
            .unwrap();
        assert_eq!(reused, fresh.as_slice(), "len {len}");
    }
}

#[test]
fn campaign_summaries_identical_across_threads_and_backends() {
    let plan = CodedPlan {
        data_bits: 32,
        p_d: 0.05,
        p_i: 0.02,
        p_s: 0.0,
    };
    let codec = Codec::Watermark(WatermarkCode::new(ConvCode::standard_half_rate(), 3, 11).unwrap());
    let reference = run_coded_campaign_with(
        &EngineConfig::serial(42),
        &codec,
        &plan,
        9,
        DecoderBackend::Scratch,
    )
    .unwrap()
    .0;
    for threads in [1usize, 2, 7] {
        for backend in [DecoderBackend::Scratch, DecoderBackend::Allocating] {
            let cfg = EngineConfig::seeded(42).with_threads(threads);
            let (summary, manifest) =
                run_coded_campaign_with(&cfg, &codec, &plan, 9, backend).unwrap();
            assert_eq!(summary, reference, "threads {threads}, backend {backend}");
            assert_eq!(
                manifest.deterministic(),
                run_coded_campaign_with(
                    &EngineConfig::serial(42),
                    &codec,
                    &plan,
                    9,
                    DecoderBackend::Scratch
                )
                .unwrap()
                .1
                .deterministic(),
                "threads {threads}, backend {backend}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At any band width (slack), the scratch path equals the
    /// allocating path exactly, every posterior lies in `[0, 1]`, and
    /// positions with a zero prior keep exactly zero posterior (no
    /// rounding can ever invent probability mass for a
    /// known-watermark position).
    #[test]
    fn posteriors_stay_probabilities_under_band_variation(
        len in 12usize..60,
        p_d in 0.0f64..0.12,
        p_i in 0.0f64..0.08,
        slack in 4usize..20,
        seed in 0u64..1_000,
    ) {
        let lattice = DriftLattice::new(p_d, p_i, 0.01).unwrap().with_slack(slack);
        let watermark = random_bits(len, &mut StdRng::seed_from_u64(seed));
        let priors: Vec<f64> = (0..len)
            .map(|i| if i % 3 == 0 { 0.5 } else { 0.0 })
            .collect();
        let received = through_channel(&watermark, p_d, p_i, 0.01, seed ^ 0xC3);
        let mut scratch = DecoderScratch::new();
        let fresh = lattice.posteriors(&watermark, &priors, &received);
        let reused = lattice
            .posteriors_into(&mut scratch, &watermark, &priors, &received)
            .map(<[f64]>::to_vec);
        // A too-narrow band may legitimately fail to reach the
        // received length — but both paths must agree on that too.
        prop_assert_eq!(&fresh, &reused);
        if let Ok(post) = fresh {
            for (i, (&p, &prior)) in post.iter().zip(&priors).enumerate() {
                prop_assert!((0.0..=1.0).contains(&p), "post[{}] = {}", i, p);
                if prior == 0.0 {
                    prop_assert!(p == 0.0, "zero-prior post[{}] = {}", i, p);
                }
            }
        }
    }
}
