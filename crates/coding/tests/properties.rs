//! Property-based tests of the codecs.

use nsc_coding::bits::{bits_to_bytes, bytes_to_bits};
use nsc_coding::conv::ConvCode;
use nsc_coding::interleave::BlockInterleaver;
use nsc_coding::lattice::DriftLattice;
use nsc_coding::ldpc::LdpcCode;
use nsc_coding::marker::MarkerCode;
use nsc_coding::repetition::RepetitionCode;
use nsc_coding::watermark::WatermarkCode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convolutional codes round-trip any message on a clean channel.
    #[test]
    fn conv_round_trip(data in prop::collection::vec(prop::bool::ANY, 1..300)) {
        for code in [ConvCode::standard_half_rate(), ConvCode::nasa_half_rate()] {
            let coded = code.encode(&data);
            prop_assert_eq!(coded.len(), code.coded_len(data.len()));
            prop_assert_eq!(code.decode_hard(&coded).unwrap(), data.clone());
        }
    }

    /// A single flipped coded bit never breaks the (7,5) code.
    #[test]
    fn conv_corrects_single_error(
        data in prop::collection::vec(prop::bool::ANY, 8..200),
        pos_frac in 0.0f64..1.0,
    ) {
        let code = ConvCode::standard_half_rate();
        let mut coded = code.encode(&data);
        let pos = ((coded.len() - 1) as f64 * pos_frac) as usize;
        coded[pos] = !coded[pos];
        prop_assert_eq!(code.decode_hard(&coded).unwrap(), data);
    }

    /// Watermark frames round-trip losslessly on the clean channel,
    /// for arbitrary data and block lengths.
    #[test]
    fn watermark_round_trip(
        data in prop::collection::vec(prop::bool::ANY, 1..150),
        block_len in 1usize..5,
        seed in 0u64..1000,
    ) {
        let code = WatermarkCode::new(
            ConvCode::standard_half_rate(), block_len, seed).unwrap();
        let sent = code.encode(&data).unwrap();
        prop_assert_eq!(sent.len(), code.frame_len(data.len()));
        let back = code.decode(&sent, data.len(), 0.0, 0.0, 0.0).unwrap();
        prop_assert_eq!(back, data);
    }

    /// The drift lattice posteriors are probabilities and respect
    /// zero priors, for arbitrary watermarks.
    #[test]
    fn lattice_posteriors_are_probabilities(
        w in prop::collection::vec(prop::bool::ANY, 4..120),
        p_d in 0.0f64..0.4,
    ) {
        let lattice = DriftLattice::new(p_d, 0.0, 0.0).unwrap();
        let priors = vec![0.0; w.len()];
        // Transmit = watermark (prior 0 => data never flips).
        let post = lattice.posteriors(&w, &priors, &w).unwrap();
        prop_assert!(post.iter().all(|&p| p == 0.0));
    }

    /// Interleaving round-trips for arbitrary geometry and data.
    #[test]
    fn interleaver_round_trip(
        rows in 1usize..8,
        cols in 1usize..8,
        blocks in 1usize..4,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let il = BlockInterleaver::new(rows, cols).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<bool> = (0..il.block_size() * blocks).map(|_| rng.gen()).collect();
        let y = il.interleave(&data).unwrap();
        prop_assert_eq!(il.deinterleave(&y).unwrap(), data);
    }

    /// LDPC blocks always satisfy parity, and a clean decode
    /// round-trips.
    #[test]
    fn ldpc_parity_and_round_trip(
        k in 8usize..64,
        m_extra in 8usize..64,
        seed in 0u64..100,
        data_seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let code = LdpcCode::new(k, m_extra, 3, seed).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(data_seed);
        let data: Vec<bool> = (0..k).map(|_| rng.gen()).collect();
        let block = code.encode(&data);
        prop_assert!(code.check(&block));
        let llrs: Vec<f64> = block.iter().map(|&b| if b { -3.0 } else { 3.0 }).collect();
        prop_assert_eq!(code.decode(&llrs, 30).unwrap(), data);
    }

    /// Marker codes round-trip on the clean channel for arbitrary
    /// data lengths (including padding cases).
    #[test]
    fn marker_round_trip(data in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let code = MarkerCode::default_params();
        let sent = code.encode(&data).unwrap();
        prop_assert_eq!(code.decode(&sent, data.len()).unwrap(), data);
    }

    /// Repetition decoding is exact under ceil(r/2)-1 errors per
    /// group.
    #[test]
    fn repetition_majority_property(
        data in prop::collection::vec(prop::bool::ANY, 1..100),
        repeat_idx in 0usize..3,
    ) {
        let repeat = [3usize, 5, 7][repeat_idx];
        let code = RepetitionCode::new(repeat).unwrap();
        let mut coded = code.encode(&data);
        // Flip floor(r/2) bits in each group: still decodable.
        for g in 0..data.len() {
            for j in 0..repeat / 2 {
                let idx = g * repeat + j;
                coded[idx] = !coded[idx];
            }
        }
        prop_assert_eq!(code.decode(&coded, data.len()), data);
    }

    /// Byte/bit conversions round-trip.
    #[test]
    fn byte_bit_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&bytes);
        prop_assert_eq!(bits_to_bytes(&bits), bytes);
    }
}
