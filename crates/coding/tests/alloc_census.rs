//! The runtime half of the allocation audit (DESIGN §14) for the
//! coding crate: after one warm-up decode sizes the scratch, every
//! decoder `*_into` entry point — the drift lattice's posteriors,
//! every codec's decode, the convolutional soft path, and the LDPC
//! belief-propagation core — must make **zero** heap allocations.

use nsc_bench::alloc::{alloc_census, oracle_live, Census, CountingAlloc};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_coding::bits::random_bits;
use nsc_coding::conv::{ConvCode, ViterbiScratch};
use nsc_coding::lattice::{DecoderScratch, DriftLattice};
use nsc_coding::ldpc::{LdpcCode, LdpcScratch};
use nsc_coding::marker::MarkerCode;
use nsc_coding::repetition::RepetitionCode;
use nsc_coding::sequential::{SequentialConfig, SequentialDecoder, SequentialScratch};
use nsc_coding::watermark::{WatermarkCode, WatermarkScratch};
use nsc_coding::watermark_ldpc::{LdpcWatermarkCode, LdpcWatermarkScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
    let ch =
        DeletionInsertionChannel::new(Alphabet::binary(), DiParams::new(p_d, p_i, p_s).unwrap());
    let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ch.transmit(&input, &mut rng)
        .received
        .iter()
        .map(|s| s.index() == 1)
        .collect()
}

fn warm_then_steady(mut decode: impl FnMut()) -> (Census, Census) {
    assert!(
        oracle_live(),
        "CountingAlloc is not this binary's global allocator; censuses would be vacuous"
    );
    let ((), warm) = alloc_census(&mut decode);
    let ((), steady) = alloc_census(&mut decode);
    (warm, steady)
}

fn assert_steady_free(name: &str, decode: impl FnMut()) {
    let (warm, steady) = warm_then_steady(decode);
    assert!(warm.allocs > 0, "{name}: warm-up made no allocations — oracle or decode is miswired");
    assert_eq!(
        steady.allocs, 0,
        "{name}: steady-state made {} allocations ({} bytes)",
        steady.allocs, steady.bytes
    );
}

#[test]
fn lattice_posteriors_steady_state_is_allocation_free() {
    let lattice = DriftLattice::new(0.06, 0.03, 0.01).unwrap();
    let watermark = random_bits(120, &mut StdRng::seed_from_u64(1));
    let priors: Vec<f64> = (0..120)
        .map(|i| if i % 3 == 0 { 0.5 } else { 0.0 })
        .collect();
    let received = through_channel(&watermark, 0.06, 0.03, 0.01, 0x99);
    let mut scratch = DecoderScratch::new();
    assert_steady_free("lattice posteriors_into", || {
        lattice
            .posteriors_into(&mut scratch, &watermark, &priors, &received)
            .unwrap();
    });
}

#[test]
fn watermark_decode_steady_state_is_allocation_free() {
    let codec = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 99).unwrap();
    let data = random_bits(48, &mut StdRng::seed_from_u64(2));
    let sent = codec.encode(&data).unwrap();
    let recv = through_channel(&sent, 0.05, 0.02, 0.01, 0xA5);
    let mut scratch = WatermarkScratch::new();
    let mut out = Vec::new();
    assert_steady_free("watermark decode_into", || {
        codec
            .decode_into(&mut scratch, &recv, 48, 0.05, 0.02, 0.01, &mut out)
            .unwrap();
    });
}

#[test]
fn ldpc_watermark_decode_steady_state_is_allocation_free() {
    let codec = LdpcWatermarkCode::new(48, 48, 3, 3, 0xBEE).unwrap();
    let data = random_bits(48, &mut StdRng::seed_from_u64(3));
    let sent = codec.encode(&data).unwrap();
    let recv = through_channel(&sent, 0.04, 0.0, 0.0, 0x5A);
    let mut scratch = LdpcWatermarkScratch::new();
    let mut out = Vec::new();
    assert_steady_free("ldpc watermark decode_into", || {
        codec
            .decode_into(&mut scratch, &recv, 0.04, 0.0, 0.0, &mut out)
            .unwrap();
    });
}

#[test]
fn ldpc_bp_core_steady_state_is_allocation_free() {
    let code = LdpcCode::new(128, 128, 3, 7).unwrap();
    let data = random_bits(128, &mut StdRng::seed_from_u64(4));
    let block = code.encode(&data);
    let llrs: Vec<f64> = block.iter().map(|&b| if b { -3.0 } else { 3.0 }).collect();
    let p_one: Vec<f64> = block.iter().map(|&b| if b { 0.9 } else { 0.1 }).collect();
    let mut scratch = LdpcScratch::new();
    let mut out = Vec::new();
    assert_steady_free("ldpc decode_into", || {
        code.decode_into(&mut scratch, &llrs, 40, &mut out).unwrap();
    });
    // The posterior interface adds one buffer (the derived LLRs) on
    // top of the shared scratch: warm it once, then it too must be
    // allocation-free.
    code.decode_from_posteriors_into(&mut scratch, &p_one, 40, &mut out)
        .unwrap();
    let ((), steady_p) = alloc_census(|| {
        code.decode_from_posteriors_into(&mut scratch, &p_one, 40, &mut out)
            .unwrap();
    });
    assert_eq!(steady_p.allocs, 0, "posterior interface steady-state allocated");
}

#[test]
fn sequential_decode_steady_state_is_allocation_free() {
    let code = ConvCode::standard_half_rate();
    let decoder = SequentialDecoder::new(
        code.clone(),
        SequentialConfig {
            p_d: 0.02,
            p_i: 0.02,
            p_s: 0.0,
            max_expansions: 100_000,
        },
    )
    .unwrap();
    let data = random_bits(40, &mut StdRng::seed_from_u64(5));
    let sent = code.encode(&data);
    let recv = through_channel(&sent, 0.02, 0.02, 0.0, 0x77);
    let mut scratch = SequentialScratch::new();
    let mut out = Vec::new();
    assert_steady_free("sequential decode_into", || {
        decoder.decode_into(&recv, 40, &mut scratch, &mut out).unwrap();
    });
}

#[test]
fn conv_soft_decode_steady_state_is_allocation_free() {
    let code = ConvCode::standard_half_rate();
    let data = random_bits(40, &mut StdRng::seed_from_u64(6));
    let sent = code.encode(&data);
    let llrs: Vec<f64> = sent.iter().map(|&b| if b { -2.0 } else { 2.0 }).collect();
    let mut scratch = ViterbiScratch::new();
    let mut out = Vec::new();
    assert_steady_free("conv decode_soft_into", || {
        code.decode_soft_into(&llrs, &mut scratch, &mut out).unwrap();
    });
}

#[test]
fn marker_and_repetition_decode_steady_state_is_allocation_free() {
    let marker = MarkerCode::default_params();
    let repetition = RepetitionCode::new(3).unwrap();
    let data = random_bits(40, &mut StdRng::seed_from_u64(7));
    let sent_m = marker.encode(&data).unwrap();
    let recv_m = through_channel(&sent_m, 0.05, 0.0, 0.0, 0x33);
    let sent_r = repetition.encode(&data);
    let recv_r = through_channel(&sent_r, 0.05, 0.0, 0.0, 0x44);
    let mut out = Vec::new();
    assert_steady_free("marker decode_into", || {
        marker.decode_into(&recv_m, 40, &mut out).unwrap();
    });
    assert!(oracle_live());
    let ((), steady) = alloc_census(|| {
        repetition.decode_into(&recv_r, 40, &mut out);
    });
    assert_eq!(steady.allocs, 0, "repetition decode_into steady-state allocated");
}
