//! Forward–backward inference over the deletion-insertion drift
//! lattice.
//!
//! This is the synchronization engine behind watermark decoding
//! (Davey & MacKay 2001, cited by the paper as the state of the art
//! for reliable communication over channels with insertions,
//! deletions and substitutions). The hidden state after the channel
//! has consumed `i` transmitted bits is the number `j` of received
//! bits produced so far; the *drift* `j − i` performs a bounded
//! random walk. A banded forward–backward pass over the `(i, j)`
//! lattice yields, for every transmitted position, the posterior
//! probability that the sparse data bit at that position was one.
//!
//! The transition model matches `nsc-channel`'s Definition 1 channel
//! exactly: while a bit is queued, each channel use inserts a random
//! bit with probability `P_i`, deletes the queued bit with `P_d`, or
//! transmits it with `P_t` (substituted with probability `P_s`), so a
//! queued bit resolves after a geometric number of insertions.

use crate::error::CodingError;

/// Drift-lattice decoder for the binary deletion-insertion channel.
///
/// # Example
///
/// On a noiseless channel the posteriors recover the sparse bits
/// exactly:
///
/// ```
/// use nsc_coding::lattice::DriftLattice;
///
/// let lattice = DriftLattice::new(0.0, 0.0, 0.0)?;
/// let watermark = vec![false, true, false, true];
/// let sparse = vec![false, false, true, false];
/// let sent: Vec<bool> = watermark.iter().zip(&sparse).map(|(w, s)| w ^ s).collect();
/// let priors = vec![0.25; 4];
/// let post = lattice.posteriors(&watermark, &priors, &sent)?;
/// assert!(post[2] > 0.99 && post[0] < 0.01);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftLattice {
    p_d: f64,
    p_i: f64,
    p_s: f64,
    /// Maximum insertions considered per consumed bit (probability
    /// mass beyond this is truncated).
    max_ins: usize,
    /// Extra half-width added to the drift band beyond the diffusion
    /// estimate.
    slack: usize,
}

/// A banded row of lattice probabilities: `probs[j - lo]` holds the
/// value for received-position `j`.
#[derive(Debug, Clone)]
struct Row {
    lo: usize,
    probs: Vec<f64>,
}

impl Row {
    fn zeros(lo: usize, hi: usize) -> Row {
        Row {
            lo,
            probs: vec![0.0; hi.saturating_sub(lo) + 1],
        }
    }

    #[inline]
    fn get(&self, j: usize) -> f64 {
        if j < self.lo || j >= self.lo + self.probs.len() {
            0.0
        } else {
            self.probs[j - self.lo]
        }
    }

    #[inline]
    fn add(&mut self, j: usize, v: f64) {
        if j >= self.lo && j < self.lo + self.probs.len() {
            self.probs[j - self.lo] += v;
        }
    }

    fn normalize(&mut self) -> f64 {
        let sum: f64 = self.probs.iter().sum();
        if sum > 0.0 {
            for p in &mut self.probs {
                *p /= sum;
            }
        }
        sum
    }
}

impl DriftLattice {
    /// Creates a decoder for a channel with deletion rate `p_d`,
    /// insertion rate `p_i`, and substitution rate `p_s`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when any rate is not a
    /// probability, `p_d + p_i >= 1` (no transmissions would ever
    /// happen at `= 1`), or `p_i = 1`.
    pub fn new(p_d: f64, p_i: f64, p_s: f64) -> Result<Self, CodingError> {
        for (name, v) in [("p_d", p_d), ("p_i", p_i), ("p_s", p_s)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(CodingError::BadParameter(format!(
                    "{name} = {v} is not a probability"
                )));
            }
        }
        if p_d + p_i >= 1.0 {
            return Err(CodingError::BadParameter(format!(
                "p_d + p_i = {} leaves no transmission probability",
                p_d + p_i
            )));
        }
        // Truncate the geometric insertion tail once it is negligible.
        let max_ins = if p_i == 0.0 {
            0
        } else {
            let mut k = 1usize;
            let mut mass = p_i;
            while mass > 1e-9 && k < 24 {
                mass *= p_i;
                k += 1;
            }
            k
        };
        Ok(DriftLattice {
            p_d,
            p_i,
            p_s,
            max_ins,
            slack: 12,
        })
    }

    /// The deletion rate.
    pub fn p_d(&self) -> f64 {
        self.p_d
    }

    /// The insertion rate.
    pub fn p_i(&self) -> f64 {
        self.p_i
    }

    /// The substitution rate.
    pub fn p_s(&self) -> f64 {
        self.p_s
    }

    /// Band half-width for a frame of `n` transmitted and `m`
    /// received bits.
    fn half_width(&self, n: usize, m: usize) -> usize {
        let diffusion = (4.0 * (n as f64 * (self.p_d + self.p_i)).sqrt()).ceil() as usize;
        n.abs_diff(m) + diffusion + self.slack
    }

    fn band(&self, i: usize, n: usize, m: usize, hw: usize) -> (usize, usize) {
        // `n > 0` is guaranteed by `posteriors`' validation.
        let center = (i * m + n / 2) / n;
        let lo = center.saturating_sub(hw);
        let hi = (center + hw).min(m);
        (lo, hi)
    }

    /// Computes `P(s_i = 1 | received)` for every transmitted
    /// position, where the transmitted bit was
    /// `t_i = watermark[i] ⊕ s_i` and `priors[i] = P(s_i = 1)`.
    ///
    /// # Errors
    ///
    /// * [`CodingError::BadLength`] — `watermark` and `priors`
    ///   lengths differ, or the frame is empty.
    /// * [`CodingError::BadParameter`] — a prior is not a
    ///   probability.
    /// * [`CodingError::DecodeFailure`] — no lattice path explains
    ///   the received length (e.g. far more received bits than
    ///   insertions could produce).
    pub fn posteriors(
        &self,
        watermark: &[bool],
        priors: &[f64],
        received: &[bool],
    ) -> Result<Vec<f64>, CodingError> {
        let n = watermark.len();
        let m = received.len();
        if n == 0 {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a non-empty transmitted frame".to_owned(),
            });
        }
        if priors.len() != n {
            return Err(CodingError::BadLength {
                got: priors.len(),
                need: format!("one prior per transmitted bit ({n})"),
            });
        }
        for &f in priors {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(CodingError::BadParameter(format!(
                    "prior {f} is not a probability"
                )));
            }
        }
        if m > n * (self.max_ins + 1) {
            return Err(CodingError::DecodeFailure(format!(
                "received {m} bits but at most {} are reachable",
                n * (self.max_ins + 1)
            )));
        }

        let hw = self.half_width(n, m);
        let p_t = 1.0 - self.p_d - self.p_i;
        // Pre-compute p_i^k (1/2)^k for k = 0..=max_ins.
        let ins_weight: Vec<f64> = (0..=self.max_ins)
            .scan(1.0f64, |acc, _| {
                let w = *acc;
                *acc *= self.p_i * 0.5;
                Some(w)
            })
            .collect();

        // ---- Forward pass ----
        let mut alpha: Vec<Row> = Vec::with_capacity(n + 1);
        {
            let (lo, hi) = self.band(0, n, m, hw);
            let mut row = Row::zeros(lo, hi);
            row.add(0, 1.0);
            alpha.push(row);
        }
        for i in 0..n {
            let (lo, hi) = self.band(i + 1, n, m, hw);
            let mut next = Row::zeros(lo, hi);
            let f_eff = effective_flip(priors[i], self.p_s);
            let cur = &alpha[i];
            for (off, &a) in cur.probs.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let j = cur.lo + off;
                for (k, &wk) in ins_weight.iter().enumerate() {
                    if j + k > m {
                        break;
                    }
                    let base = a * wk;
                    // Deletion: consume bit i, emit only insertions.
                    next.add(j + k, base * self.p_d);
                    // Transmission: also emit the (possibly
                    // substituted) data-carrying bit.
                    if j + k < m {
                        let e = if received[j + k] == watermark[i] {
                            1.0 - f_eff
                        } else {
                            f_eff
                        };
                        next.add(j + k + 1, base * p_t * e);
                    }
                }
            }
            next.normalize();
            alpha.push(next);
        }
        if alpha[n].get(m) == 0.0 {
            return Err(CodingError::DecodeFailure(
                "no drift path reaches the received length (widen the band or check parameters)"
                    .to_owned(),
            ));
        }

        // ---- Backward pass ----
        let mut beta: Vec<Row> = (0..=n)
            .map(|i| {
                let (lo, hi) = self.band(i, n, m, hw);
                Row::zeros(lo, hi)
            })
            .collect();
        beta[n].add(m, 1.0);
        for i in (0..n).rev() {
            let f_eff = effective_flip(priors[i], self.p_s);
            let (lo, hi) = (beta[i].lo, beta[i].lo + beta[i].probs.len() - 1);
            let mut vals = vec![0.0f64; hi - lo + 1];
            for (idx, v) in vals.iter_mut().enumerate() {
                let j = lo + idx;
                let mut acc = 0.0;
                for (k, &wk) in ins_weight.iter().enumerate() {
                    if j + k > m {
                        break;
                    }
                    acc += wk * self.p_d * beta[i + 1].get(j + k);
                    if j + k < m {
                        let e = if received[j + k] == watermark[i] {
                            1.0 - f_eff
                        } else {
                            f_eff
                        };
                        acc += wk * p_t * e * beta[i + 1].get(j + k + 1);
                    }
                }
                *v = acc;
            }
            beta[i].probs.copy_from_slice(&vals);
            beta[i].normalize();
        }

        // ---- Posteriors ----
        let mut post = Vec::with_capacity(n);
        for i in 0..n {
            let f = priors[i];
            let cur = &alpha[i];
            let nxt = &beta[i + 1];
            // Accumulate P(s_i = sigma, received) for sigma in {0,1}.
            let mut mass = [0.0f64; 2];
            for (off, &a) in cur.probs.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let j = cur.lo + off;
                for (k, &wk) in ins_weight.iter().enumerate() {
                    if j + k > m {
                        break;
                    }
                    let base = a * wk;
                    // Deletion paths carry no evidence about s_i.
                    let del = base * self.p_d * nxt.get(j + k);
                    mass[0] += del * (1.0 - f);
                    mass[1] += del * f;
                    if j + k < m {
                        let b = nxt.get(j + k + 1);
                        if b > 0.0 {
                            let tx = base * p_t * b;
                            // sigma = 0: t_i = w_i.
                            let e0 = if received[j + k] == watermark[i] {
                                1.0 - self.p_s
                            } else {
                                self.p_s
                            };
                            // sigma = 1: t_i = !w_i.
                            let e1 = if received[j + k] == watermark[i] {
                                self.p_s
                            } else {
                                1.0 - self.p_s
                            };
                            mass[0] += tx * (1.0 - f) * e0;
                            mass[1] += tx * f * e1;
                        }
                    }
                }
            }
            let total = mass[0] + mass[1];
            post.push(if total > 0.0 { mass[1] / total } else { f });
        }
        Ok(post)
    }
}

/// The effective probability that a received data-carrying bit
/// differs from the watermark bit: the sparse bit flips it with
/// probability `f`, and the channel substitutes with probability
/// `p_s`.
fn effective_flip(f: f64, p_s: f64) -> f64 {
    f * (1.0 - p_s) + (1.0 - f) * p_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn send_through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, p_s).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    /// Builds a frame: watermark + sparse bits at the given density,
    /// returns (watermark, sparse, transmitted).
    fn frame(n: usize, density: f64, seed: u64) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_bits(n, &mut rng);
        let s: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < density).collect();
        let t: Vec<bool> = w.iter().zip(&s).map(|(a, b)| a ^ b).collect();
        (w, s, t)
    }

    #[test]
    fn construction_validation() {
        assert!(DriftLattice::new(0.5, 0.5, 0.0).is_err());
        assert!(DriftLattice::new(-0.1, 0.0, 0.0).is_err());
        assert!(DriftLattice::new(0.0, 0.0, 2.0).is_err());
        assert!(DriftLattice::new(0.1, 0.1, 0.05).is_ok());
    }

    #[test]
    fn input_validation() {
        let l = DriftLattice::new(0.1, 0.0, 0.0).unwrap();
        assert!(l.posteriors(&[], &[], &[]).is_err());
        assert!(l.posteriors(&[true], &[0.1, 0.2], &[true]).is_err());
        assert!(l.posteriors(&[true], &[1.5], &[true]).is_err());
    }

    #[test]
    fn noiseless_channel_recovers_sparse_bits_exactly() {
        let (w, s, t) = frame(200, 0.15, 1);
        let l = DriftLattice::new(0.0, 0.0, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.15; 200], &t).unwrap();
        for (p, &bit) in post.iter().zip(&s) {
            if bit {
                assert!(*p > 0.99, "p = {p}");
            } else {
                assert!(*p < 0.01, "p = {p}");
            }
        }
    }

    #[test]
    fn deletions_only_most_positions_recovered() {
        let p_d = 0.1;
        let (w, s, t) = frame(2000, 0.1, 2);
        let r = send_through_channel(&t, p_d, 0.0, 0.0, 3);
        assert!(r.len() < t.len());
        let l = DriftLattice::new(p_d, 0.0, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 2000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        // Without the lattice, deletions shift everything: BER would
        // approach the raw mismatch rate (~0.18 for f = 0.1 XOR
        // noise). The lattice must do far better.
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn insertions_only_most_positions_recovered() {
        let p_i = 0.1;
        let (w, s, t) = frame(2000, 0.1, 4);
        let r = send_through_channel(&t, 0.0, p_i, 0.0, 5);
        assert!(r.len() > t.len());
        let l = DriftLattice::new(0.0, p_i, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 2000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn full_channel_posteriors_beat_priors() {
        let (p_d, p_i, p_s) = (0.05, 0.05, 0.02);
        let (w, s, t) = frame(3000, 0.1, 6);
        let r = send_through_channel(&t, p_d, p_i, p_s, 7);
        let l = DriftLattice::new(p_d, p_i, p_s).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 3000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        // Guessing all-zeros from the prior alone gives BER = 0.1.
        // Every position carries data here (no pure watermark
        // anchors), so the gain is modest — the sparse codec in
        // `watermark` is where large gains appear.
        assert!(ber < 0.09, "ber = {ber}");
    }

    #[test]
    fn posteriors_are_probabilities() {
        let (w, _s, t) = frame(500, 0.2, 8);
        let r = send_through_channel(&t, 0.1, 0.1, 0.05, 9);
        let l = DriftLattice::new(0.1, 0.1, 0.05).unwrap();
        let post = l.posteriors(&w, &vec![0.2; 500], &r).unwrap();
        assert_eq!(post.len(), 500);
        assert!(post
            .iter()
            .all(|p| (0.0..=1.0).contains(p) && p.is_finite()));
    }

    #[test]
    fn impossible_received_length_fails_cleanly() {
        let l = DriftLattice::new(0.0, 0.0, 0.0).unwrap();
        let w = vec![true; 4];
        // More received bits than a zero-insertion channel can emit.
        let r = vec![true; 10];
        assert!(matches!(
            l.posteriors(&w, &[0.1; 4], &r),
            Err(CodingError::DecodeFailure(_))
        ));
    }

    #[test]
    fn zero_prior_positions_stay_zero() {
        // Positions with prior 0 are pure watermark: posterior must
        // remain 0 regardless of noise.
        let (w, _s, _t) = frame(300, 0.0, 10);
        let t: Vec<bool> = w.clone();
        let r = send_through_channel(&t, 0.1, 0.1, 0.0, 11);
        let l = DriftLattice::new(0.1, 0.1, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.0; 300], &r).unwrap();
        assert!(post.iter().all(|&p| p == 0.0));
    }
}
