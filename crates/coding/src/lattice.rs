//! Forward–backward inference over the deletion-insertion drift
//! lattice.
//!
//! This is the synchronization engine behind watermark decoding
//! (Davey & MacKay 2001, cited by the paper as the state of the art
//! for reliable communication over channels with insertions,
//! deletions and substitutions). The hidden state after the channel
//! has consumed `i` transmitted bits is the number `j` of received
//! bits produced so far; the *drift* `j − i` performs a bounded
//! random walk. A banded forward–backward pass over the `(i, j)`
//! lattice yields, for every transmitted position, the posterior
//! probability that the sparse data bit at that position was one.
//!
//! The transition model matches `nsc-channel`'s Definition 1 channel
//! exactly: while a bit is queued, each channel use inserts a random
//! bit with probability `P_i`, deletes the queued bit with `P_d`, or
//! transmits it with `P_t` (substituted with probability `P_s`), so a
//! queued bit resolves after a geometric number of insertions.
//!
//! The hot path is allocation-free: both passes write into a caller
//! owned [`DecoderScratch`] whose flat band buffers are reused across
//! frames (see DESIGN §13 for the memory layout and the measured
//! speedup over the row-of-`Vec`s seed decoder).

use crate::error::CodingError;

/// One lattice row's slice of the flat band buffers: values for
/// received-position `j` live at `buf[start + (j - lo)]` for
/// `j ∈ [lo, lo + len)`.
#[derive(Debug, Clone, Copy, Default)]
struct RowSpan {
    lo: usize,
    start: usize,
    len: usize,
}

/// Reusable decoder working memory: flat structure-of-arrays band
/// storage for the forward and backward passes plus the small
/// per-call side buffers.
///
/// A scratch starts empty and grows to the high-water mark of the
/// frames pushed through it; after the first decode of a given shape
/// every [`DriftLattice::posteriors_into`] call is allocation-free.
/// The same scratch may be reused across lattices, frame lengths and
/// codecs — every buffer is fully re-derived per call, so stale
/// contents ("dirty" scratch) cannot leak into results.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    /// Per-row band spans, shared by `alpha` and `beta` (both passes
    /// use the same band).
    rows: Vec<RowSpan>,
    /// Forward messages, all rows concatenated.
    alpha: Vec<f64>,
    /// Backward messages, same layout as `alpha`. The seed decoder's
    /// per-row `vals` staging vector is gone: the backward pass
    /// writes row `i` directly while reading row `i + 1`.
    beta: Vec<f64>,
    /// `p_i^k (1/2)^k` for `k = 0..=max_ins`.
    ins_weight: Vec<f64>,
    /// Per-row emission window (σ = 0 case), indexed by received
    /// position.
    emit0: Vec<f64>,
    /// Per-row emission window (σ = 1 case).
    emit1: Vec<f64>,
    /// Posterior output buffer.
    post: Vec<f64>,
}

impl DecoderScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Drift-lattice decoder for the binary deletion-insertion channel.
///
/// # Example
///
/// On a noiseless channel the posteriors recover the sparse bits
/// exactly:
///
/// ```
/// use nsc_coding::lattice::DriftLattice;
///
/// let lattice = DriftLattice::new(0.0, 0.0, 0.0)?;
/// let watermark = vec![false, true, false, true];
/// let sparse = vec![false, false, true, false];
/// let sent: Vec<bool> = watermark.iter().zip(&sparse).map(|(w, s)| w ^ s).collect();
/// let priors = vec![0.25; 4];
/// let post = lattice.posteriors(&watermark, &priors, &sent)?;
/// assert!(post[2] > 0.99 && post[0] < 0.01);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftLattice {
    p_d: f64,
    p_i: f64,
    p_s: f64,
    /// Maximum insertions considered per consumed bit (probability
    /// mass beyond this is truncated).
    max_ins: usize,
    /// Extra half-width added to the drift band beyond the diffusion
    /// estimate.
    slack: usize,
}

impl DriftLattice {
    /// Creates a decoder for a channel with deletion rate `p_d`,
    /// insertion rate `p_i`, and substitution rate `p_s`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when any rate is not a
    /// probability, `p_d + p_i >= 1` (no transmissions would ever
    /// happen at `= 1`), or `p_i = 1`.
    pub fn new(p_d: f64, p_i: f64, p_s: f64) -> Result<Self, CodingError> {
        for (name, v) in [("p_d", p_d), ("p_i", p_i), ("p_s", p_s)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(CodingError::BadParameter(format!(
                    "{name} = {v} is not a probability"
                )));
            }
        }
        if p_d + p_i >= 1.0 {
            return Err(CodingError::BadParameter(format!(
                "p_d + p_i = {} leaves no transmission probability",
                p_d + p_i
            )));
        }
        // Truncate the geometric insertion tail once it is negligible.
        let max_ins = if p_i == 0.0 {
            0
        } else {
            let mut k = 1usize;
            let mut mass = p_i;
            while mass > 1e-9 && k < 24 {
                mass *= p_i;
                k += 1;
            }
            k
        };
        Ok(DriftLattice {
            p_d,
            p_i,
            p_s,
            max_ins,
            slack: 12,
        })
    }

    /// Overrides the extra band half-width added beyond the diffusion
    /// estimate (default 12). Narrow bands trade reliability for
    /// speed; the decoder reports [`CodingError::DecodeFailure`] when
    /// the band no longer covers the realized drift.
    #[must_use]
    pub fn with_slack(mut self, slack: usize) -> Self {
        self.slack = slack;
        self
    }

    /// The deletion rate.
    pub fn p_d(&self) -> f64 {
        self.p_d
    }

    /// The insertion rate.
    pub fn p_i(&self) -> f64 {
        self.p_i
    }

    /// The substitution rate.
    pub fn p_s(&self) -> f64 {
        self.p_s
    }

    /// Band half-width for a frame of `n` transmitted and `m`
    /// received bits.
    fn half_width(&self, n: usize, m: usize) -> usize {
        let diffusion = (4.0 * (n as f64 * (self.p_d + self.p_i)).sqrt()).ceil() as usize;
        n.abs_diff(m) + diffusion + self.slack
    }

    fn band(&self, i: usize, n: usize, m: usize, hw: usize) -> (usize, usize) {
        // `n > 0` is guaranteed by `posteriors_into`'s validation.
        let center = (i * m + n / 2) / n;
        let lo = center.saturating_sub(hw);
        let hi = (center + hw).min(m);
        (lo, hi)
    }

    /// Computes `P(s_i = 1 | received)` for every transmitted
    /// position, where the transmitted bit was
    /// `t_i = watermark[i] ⊕ s_i` and `priors[i] = P(s_i = 1)`.
    ///
    /// Allocating convenience wrapper over
    /// [`Self::posteriors_into`]; the two are bit-identical by
    /// construction. Hot paths should hold a [`DecoderScratch`] and
    /// call `posteriors_into` directly.
    ///
    /// # Errors
    ///
    /// * [`CodingError::BadLength`] — `watermark` and `priors`
    ///   lengths differ, or the frame is empty.
    /// * [`CodingError::BadParameter`] — a prior is not a
    ///   probability.
    /// * [`CodingError::DecodeFailure`] — no lattice path explains
    ///   the received length (e.g. far more received bits than
    ///   insertions could produce).
    pub fn posteriors(
        &self,
        watermark: &[bool],
        priors: &[f64],
        received: &[bool],
    ) -> Result<Vec<f64>, CodingError> {
        let mut scratch = DecoderScratch::new();
        Ok(self
            .posteriors_into(&mut scratch, watermark, priors, received)?
            .to_vec())
    }

    /// [`Self::posteriors`] into caller-owned working memory: after
    /// the scratch has warmed up to the frame shape, the whole
    /// forward–backward decode performs zero heap allocations. The
    /// returned slice borrows the scratch's posterior buffer (one
    /// entry per transmitted position).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::posteriors`].
    pub fn posteriors_into<'s>(
        &self,
        scratch: &'s mut DecoderScratch,
        watermark: &[bool],
        priors: &[f64],
        received: &[bool],
    ) -> Result<&'s [f64], CodingError> {
        let n = watermark.len();
        let m = received.len();
        if n == 0 {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a non-empty transmitted frame".to_owned(),
            });
        }
        if priors.len() != n {
            return Err(CodingError::BadLength {
                got: priors.len(),
                // nsc-lint: allow(hot-alloc, reason = "cold validation path: runs once per malformed call, never in the steady-state decode loop")
                need: format!("one prior per transmitted bit ({n})"),
            });
        }
        for &f in priors {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                // nsc-lint: allow(hot-alloc, reason = "cold validation path: runs once per malformed call, never in the steady-state decode loop")
                return Err(CodingError::BadParameter(format!(
                    "prior {f} is not a probability"
                )));
            }
        }
        if m > n * (self.max_ins + 1) {
            // nsc-lint: allow(hot-alloc, reason = "cold rejection path: an unreachable received length aborts before the band loops")
            return Err(CodingError::DecodeFailure(format!(
                "received {m} bits but at most {} are reachable",
                n * (self.max_ins + 1)
            )));
        }

        let hw = self.half_width(n, m);
        let p_t = 1.0 - self.p_d - self.p_i;

        // Pre-compute p_i^k (1/2)^k for k = 0..=max_ins.
        scratch.ins_weight.clear();
        let mut w = 1.0f64;
        for _ in 0..=self.max_ins {
            scratch.ins_weight.push(w);
            w *= self.p_i * 0.5;
        }

        // Lay the band rows out back-to-back in one flat buffer per
        // pass; `rows[i + 1].start == rows[i].start + rows[i].len`,
        // which is what lets the passes split the buffer into a read
        // row and a write row without aliasing.
        scratch.rows.clear();
        let mut total = 0usize;
        for i in 0..=n {
            let (lo, hi) = self.band(i, n, m, hw);
            let len = hi - lo + 1;
            scratch.rows.push(RowSpan {
                lo,
                start: total,
                len,
            });
            total += len;
        }
        scratch.alpha.clear();
        scratch.alpha.resize(total, 0.0);
        scratch.beta.clear();
        scratch.beta.resize(total, 0.0);
        scratch.emit0.clear();
        scratch.emit0.resize(m, 0.0);
        scratch.emit1.clear();
        scratch.emit1.resize(m, 0.0);

        // ---- Forward pass ----
        // Row 0's band always contains j = 0 (its center is 0).
        scratch.alpha[scratch.rows[0].start] = 1.0;
        for i in 0..n {
            let cur = scratch.rows[i];
            let nxt = scratch.rows[i + 1];
            let f_eff = effective_flip(priors[i], self.p_s);
            // Emission for the data-carrying bit at received position
            // t: indexed by `received[t] ⊕ watermark[i]`.
            let emit_tab = [1.0 - f_eff, f_eff];
            fill_emission(
                &mut scratch.emit0,
                received,
                watermark[i],
                &emit_tab,
                cur.lo,
                cur.len,
                self.max_ins,
            );
            let (head, tail) = scratch.alpha.split_at_mut(nxt.start);
            let cur_row = &head[cur.start..cur.start + cur.len];
            let next_row = &mut tail[..nxt.len];
            for (k, &wk) in scratch.ins_weight.iter().enumerate() {
                let wd = wk * self.p_d;
                let wt = wk * p_t;
                // Deletion: consume bit i, emit only the k insertions
                // — target j + k must land in the next band and never
                // exceeds m.
                if let Some((o_lo, o_hi)) =
                    overlap(cur.lo + k, cur.len, nxt.lo, (nxt.lo + nxt.len - 1).min(m))
                {
                    let t0 = cur.lo + o_lo + k - nxt.lo;
                    let src = &cur_row[o_lo..=o_hi];
                    let dst = &mut next_row[t0..t0 + src.len()];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s * wd;
                    }
                }
                // Transmission: also emit the (possibly substituted)
                // data-carrying bit at position j + k < m.
                if let Some((o_lo, o_hi)) = overlap(
                    cur.lo + k + 1,
                    cur.len,
                    nxt.lo.max(1),
                    (nxt.lo + nxt.len - 1).min(m),
                ) {
                    let t0 = cur.lo + o_lo + k + 1 - nxt.lo;
                    let e0 = cur.lo + o_lo + k;
                    let src = &cur_row[o_lo..=o_hi];
                    let emit = &scratch.emit0[e0..e0 + src.len()];
                    let dst = &mut next_row[t0..t0 + src.len()];
                    for ((d, &s), &e) in dst.iter_mut().zip(src).zip(emit) {
                        *d += s * wt * e;
                    }
                }
            }
            normalize(next_row);
        }
        {
            let last = scratch.rows[n];
            let reached = m >= last.lo
                && m < last.lo + last.len
                && scratch.alpha[last.start + (m - last.lo)] != 0.0;
            if !reached {
                return Err(CodingError::DecodeFailure(
                    "no drift path reaches the received length (widen the band or check parameters)"
                        .to_owned(),
                ));
            }
        }

        // ---- Backward pass ----
        // Row n's band always contains j = m (its center is m).
        {
            let last = scratch.rows[n];
            scratch.beta[last.start + (m - last.lo)] = 1.0;
        }
        for i in (0..n).rev() {
            let cur = scratch.rows[i];
            let nxt = scratch.rows[i + 1];
            let f_eff = effective_flip(priors[i], self.p_s);
            let emit_tab = [1.0 - f_eff, f_eff];
            fill_emission(
                &mut scratch.emit0,
                received,
                watermark[i],
                &emit_tab,
                cur.lo,
                cur.len,
                self.max_ins,
            );
            let (head, tail) = scratch.beta.split_at_mut(nxt.start);
            let cur_row = &mut head[cur.start..cur.start + cur.len];
            let next_row = &tail[..nxt.len];
            for (k, &wk) in scratch.ins_weight.iter().enumerate() {
                let wd = wk * self.p_d;
                let wt = wk * p_t;
                // Deletion term: read β_{i+1}(j + k).
                if let Some((o_lo, o_hi)) =
                    overlap(cur.lo + k, cur.len, nxt.lo, (nxt.lo + nxt.len - 1).min(m))
                {
                    let s0 = cur.lo + o_lo + k - nxt.lo;
                    let dst = &mut cur_row[o_lo..=o_hi];
                    let src = &next_row[s0..s0 + dst.len()];
                    for (d, &b) in dst.iter_mut().zip(src) {
                        *d += wd * b;
                    }
                }
                // Transmission term: read β_{i+1}(j + k + 1) weighted
                // by the emission at received position j + k < m.
                if let Some((o_lo, o_hi)) = overlap(
                    cur.lo + k + 1,
                    cur.len,
                    nxt.lo.max(1),
                    (nxt.lo + nxt.len - 1).min(m),
                ) {
                    let s0 = cur.lo + o_lo + k + 1 - nxt.lo;
                    let e0 = cur.lo + o_lo + k;
                    let dst = &mut cur_row[o_lo..=o_hi];
                    let src = &next_row[s0..s0 + dst.len()];
                    let emit = &scratch.emit0[e0..e0 + dst.len()];
                    for ((d, &b), &e) in dst.iter_mut().zip(src).zip(emit) {
                        *d += wt * e * b;
                    }
                }
            }
            normalize(cur_row);
        }

        // ---- Posteriors ----
        scratch.post.clear();
        for i in 0..n {
            let f = priors[i];
            let one_m_f = 1.0 - f;
            let cur = scratch.rows[i];
            let nxt = scratch.rows[i + 1];
            // σ = 0 transmits t_i = w_i, σ = 1 transmits !w_i.
            fill_emission(
                &mut scratch.emit0,
                received,
                watermark[i],
                &[1.0 - self.p_s, self.p_s],
                cur.lo,
                cur.len,
                self.max_ins,
            );
            fill_emission(
                &mut scratch.emit1,
                received,
                watermark[i],
                &[self.p_s, 1.0 - self.p_s],
                cur.lo,
                cur.len,
                self.max_ins,
            );
            let alpha_row = &scratch.alpha[cur.start..cur.start + cur.len];
            let beta_row = &scratch.beta[nxt.start..nxt.start + nxt.len];
            // Accumulate P(s_i = sigma, received) for sigma in {0,1}.
            let mut mass = [0.0f64; 2];
            for (k, &wk) in scratch.ins_weight.iter().enumerate() {
                // Deletion paths carry no evidence about s_i: they
                // split between σ = 0 and σ = 1 by the prior alone.
                if let Some((o_lo, o_hi)) =
                    overlap(cur.lo + k, cur.len, nxt.lo, (nxt.lo + nxt.len - 1).min(m))
                {
                    let s0 = cur.lo + o_lo + k - nxt.lo;
                    let a = &alpha_row[o_lo..=o_hi];
                    let b = &beta_row[s0..s0 + a.len()];
                    let dot: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
                    let del = wk * self.p_d * dot;
                    mass[0] += del * one_m_f;
                    mass[1] += del * f;
                }
                // Transmission paths weight each σ by its emission.
                if let Some((o_lo, o_hi)) = overlap(
                    cur.lo + k + 1,
                    cur.len,
                    nxt.lo.max(1),
                    (nxt.lo + nxt.len - 1).min(m),
                ) {
                    let s0 = cur.lo + o_lo + k + 1 - nxt.lo;
                    let e0 = cur.lo + o_lo + k;
                    let a = &alpha_row[o_lo..=o_hi];
                    let b = &beta_row[s0..s0 + a.len()];
                    let em0 = &scratch.emit0[e0..e0 + a.len()];
                    let em1 = &scratch.emit1[e0..e0 + a.len()];
                    let mut t0 = 0.0f64;
                    let mut t1 = 0.0f64;
                    for (((&x, &y), &z0), &z1) in
                        a.iter().zip(b.iter()).zip(em0.iter()).zip(em1.iter())
                    {
                        let ab = x * y;
                        t0 += ab * z0;
                        t1 += ab * z1;
                    }
                    let wt = wk * (1.0 - self.p_d - self.p_i);
                    mass[0] += wt * one_m_f * t0;
                    mass[1] += wt * f * t1;
                }
            }
            let total = mass[0] + mass[1];
            scratch
                .post
                .push(if total > 0.0 { mass[1] / total } else { f });
        }
        Ok(&scratch.post)
    }
}

/// Offsets `o` into a row starting at `lo_eff = row_lo + shift` (the
/// caller folds its `j + k` shift into `lo_eff`) whose targets
/// `lo_eff + o` land in `[t_lo, t_hi]`; `None` when the overlap is
/// empty.
#[inline]
fn overlap(lo_eff: usize, len: usize, t_lo: usize, t_hi: usize) -> Option<(usize, usize)> {
    if t_hi < lo_eff || len == 0 {
        return None;
    }
    let o_lo = t_lo.saturating_sub(lo_eff);
    let o_hi = (t_hi - lo_eff).min(len - 1);
    (o_lo <= o_hi).then_some((o_lo, o_hi))
}

/// Fills `emit[t] = tab[received[t] ⊕ w]` over the window of
/// received positions a row with band `[lo, lo + len)` can touch
/// (`j + k` for `k ≤ max_ins`, clipped to `m - 1`). Branch-free:
/// the two-entry table is indexed by the XOR of the bits, so the
/// stored values are exactly the table entries.
#[inline]
fn fill_emission(
    emit: &mut [f64],
    received: &[bool],
    w: bool,
    tab: &[f64; 2],
    lo: usize,
    len: usize,
    max_ins: usize,
) {
    let m = received.len();
    if m == 0 {
        return;
    }
    let hi = (lo + len - 1 + max_ins).min(m - 1);
    if lo > hi {
        return;
    }
    let wb = usize::from(w);
    for (e, &r) in emit[lo..=hi].iter_mut().zip(&received[lo..=hi]) {
        *e = tab[usize::from(r) ^ wb];
    }
}

#[inline]
fn normalize(row: &mut [f64]) {
    let sum: f64 = row.iter().sum();
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for p in row {
            *p *= inv;
        }
    }
}

/// The effective probability that a received data-carrying bit
/// differs from the watermark bit: the sparse bit flips it with
/// probability `f`, and the channel substitutes with probability
/// `p_s`.
fn effective_flip(f: f64, p_s: f64) -> f64 {
    f * (1.0 - p_s) + (1.0 - f) * p_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn send_through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, p_s).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    /// Builds a frame: watermark + sparse bits at the given density,
    /// returns (watermark, sparse, transmitted).
    fn frame(n: usize, density: f64, seed: u64) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_bits(n, &mut rng);
        let s: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < density).collect();
        let t: Vec<bool> = w.iter().zip(&s).map(|(a, b)| a ^ b).collect();
        (w, s, t)
    }

    #[test]
    fn construction_validation() {
        assert!(DriftLattice::new(0.5, 0.5, 0.0).is_err());
        assert!(DriftLattice::new(-0.1, 0.0, 0.0).is_err());
        assert!(DriftLattice::new(0.0, 0.0, 2.0).is_err());
        assert!(DriftLattice::new(0.1, 0.1, 0.05).is_ok());
    }

    #[test]
    fn input_validation() {
        let l = DriftLattice::new(0.1, 0.0, 0.0).unwrap();
        assert!(l.posteriors(&[], &[], &[]).is_err());
        assert!(l.posteriors(&[true], &[0.1, 0.2], &[true]).is_err());
        assert!(l.posteriors(&[true], &[1.5], &[true]).is_err());
    }

    #[test]
    fn noiseless_channel_recovers_sparse_bits_exactly() {
        let (w, s, t) = frame(200, 0.15, 1);
        let l = DriftLattice::new(0.0, 0.0, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.15; 200], &t).unwrap();
        for (p, &bit) in post.iter().zip(&s) {
            if bit {
                assert!(*p > 0.99, "p = {p}");
            } else {
                assert!(*p < 0.01, "p = {p}");
            }
        }
    }

    #[test]
    fn deletions_only_most_positions_recovered() {
        let p_d = 0.1;
        let (w, s, t) = frame(2000, 0.1, 2);
        let r = send_through_channel(&t, p_d, 0.0, 0.0, 3);
        assert!(r.len() < t.len());
        let l = DriftLattice::new(p_d, 0.0, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 2000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        // Without the lattice, deletions shift everything: BER would
        // approach the raw mismatch rate (~0.18 for f = 0.1 XOR
        // noise). The lattice must do far better.
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn insertions_only_most_positions_recovered() {
        let p_i = 0.1;
        let (w, s, t) = frame(2000, 0.1, 4);
        let r = send_through_channel(&t, 0.0, p_i, 0.0, 5);
        assert!(r.len() > t.len());
        let l = DriftLattice::new(0.0, p_i, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 2000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn full_channel_posteriors_beat_priors() {
        let (p_d, p_i, p_s) = (0.05, 0.05, 0.02);
        let (w, s, t) = frame(3000, 0.1, 6);
        let r = send_through_channel(&t, p_d, p_i, p_s, 7);
        let l = DriftLattice::new(p_d, p_i, p_s).unwrap();
        let post = l.posteriors(&w, &vec![0.1; 3000], &r).unwrap();
        let decisions: Vec<bool> = post.iter().map(|&p| p > 0.5).collect();
        let ber = crate::bits::bit_error_rate(&decisions, &s);
        // Guessing all-zeros from the prior alone gives BER = 0.1.
        // Every position carries data here (no pure watermark
        // anchors), so the gain is modest — the sparse codec in
        // `watermark` is where large gains appear.
        assert!(ber < 0.09, "ber = {ber}");
    }

    #[test]
    fn posteriors_are_probabilities() {
        let (w, _s, t) = frame(500, 0.2, 8);
        let r = send_through_channel(&t, 0.1, 0.1, 0.05, 9);
        let l = DriftLattice::new(0.1, 0.1, 0.05).unwrap();
        let post = l.posteriors(&w, &vec![0.2; 500], &r).unwrap();
        assert_eq!(post.len(), 500);
        assert!(post
            .iter()
            .all(|p| (0.0..=1.0).contains(p) && p.is_finite()));
    }

    #[test]
    fn impossible_received_length_fails_cleanly() {
        let l = DriftLattice::new(0.0, 0.0, 0.0).unwrap();
        let w = vec![true; 4];
        // More received bits than a zero-insertion channel can emit.
        let r = vec![true; 10];
        assert!(matches!(
            l.posteriors(&w, &[0.1; 4], &r),
            Err(CodingError::DecodeFailure(_))
        ));
    }

    #[test]
    fn zero_prior_positions_stay_zero() {
        // Positions with prior 0 are pure watermark: posterior must
        // remain 0 regardless of noise.
        let (w, _s, _t) = frame(300, 0.0, 10);
        let t: Vec<bool> = w.clone();
        let r = send_through_channel(&t, 0.1, 0.1, 0.0, 11);
        let l = DriftLattice::new(0.1, 0.1, 0.0).unwrap();
        let post = l.posteriors(&w, &vec![0.0; 300], &r).unwrap();
        assert!(post.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let (w, _s, t) = frame(400, 0.2, 12);
        let r = send_through_channel(&t, 0.08, 0.04, 0.01, 13);
        let l = DriftLattice::new(0.08, 0.04, 0.01).unwrap();
        let priors = vec![0.2; 400];
        let base = l.posteriors(&w, &priors, &r).unwrap();
        // Dirty the scratch with a differently-shaped decode first.
        let mut scratch = DecoderScratch::new();
        let (w2, _s2, t2) = frame(90, 0.5, 14);
        l.posteriors_into(&mut scratch, &w2, &vec![0.5; 90], &t2)
            .unwrap();
        let reused = l
            .posteriors_into(&mut scratch, &w, &priors, &r)
            .unwrap()
            .to_vec();
        assert_eq!(base, reused);
    }

    #[test]
    fn narrow_band_reports_decode_failure() {
        let (w, _s, t) = frame(800, 0.1, 15);
        let r = send_through_channel(&t, 0.12, 0.0, 0.0, 16);
        // A zero-slack, zero-diffusion band cannot absorb the drift of
        // a 12% deletion rate over 800 bits: slack 0 with the
        // diffusion estimate still covers it, so force the failure by
        // pretending the channel is noiseless (half-width collapses to
        // |n - m| which the *interior* rows cannot bridge).
        let optimistic = DriftLattice::new(0.0, 0.0, 0.0).unwrap().with_slack(0);
        assert!(matches!(
            optimistic.posteriors(&w, &vec![0.1; 800], &r),
            Err(CodingError::DecodeFailure(_))
        ));
    }
}
