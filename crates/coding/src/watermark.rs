//! Watermark codes: reliable non-synchronized communication.
//!
//! The paper's §4.1 observes that reliable communication over a
//! deletion-insertion channel *without any synchronization* is
//! possible (Dobrushin) but "the capacity is quite low and in
//! practice sophisticated coding techniques are required", citing
//! Davey & MacKay's watermark codes. This module implements a
//! binary watermark codec:
//!
//! * a **pseudorandom watermark** `w` known to both ends provides the
//!   synchronization substrate;
//! * data bits are protected by an outer **convolutional code**, then
//!   **sparsified** (one data-carrying position per block of
//!   `block_len`) and XORed onto the watermark;
//! * the receiver runs the [`crate::lattice::DriftLattice`]
//!   forward–backward pass to regain alignment and produce per-bit
//!   LLRs, which feed the outer soft Viterbi decoder.
//!
//! The code rate is deliberately low — that *is* the paper's point:
//! compare the rates achieved here (experiment E9) with the feedback
//! capacity `N·(1 − P_d)` of Theorem 3.

use crate::conv::{ConvCode, ViterbiScratch};
use crate::error::CodingError;
use crate::lattice::{DecoderScratch, DriftLattice};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reusable decode working memory for [`WatermarkCode`]: the drift
/// lattice's band scratch, the Viterbi scratch, and cached
/// watermark/prior/LLR frames. After warm-up a full frame decode
/// through [`WatermarkCode::decode_into`] performs zero heap
/// allocations. The watermark/prior cache is keyed by
/// `(seed, block_len, frame_len)`, so one scratch can serve many
/// codecs without cross-contamination.
#[derive(Debug, Clone, Default)]
pub struct WatermarkScratch {
    lattice: DecoderScratch,
    viterbi: ViterbiScratch,
    watermark: Vec<bool>,
    priors: Vec<f64>,
    llrs: Vec<f64>,
    frame_key: Option<(u64, usize, usize)>,
}

impl WatermarkScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A watermark codec over the binary deletion-insertion channel.
///
/// # Example
///
/// ```
/// use nsc_coding::watermark::WatermarkCode;
/// use nsc_coding::conv::ConvCode;
///
/// let code = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 0xC0FFEE)?;
/// let data = vec![true, false, false, true, true, false, true, false];
/// let sent = code.encode(&data)?;
/// // Noiseless channel: decoding inverts encoding.
/// let back = code.decode(&sent, data.len(), 0.0, 0.0, 0.0)?;
/// assert_eq!(back, data);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WatermarkCode {
    outer: ConvCode,
    block_len: usize,
    watermark_seed: u64,
}

impl WatermarkCode {
    /// Creates a codec with the given outer code, sparse block length
    /// (one data-carrying position per `block_len` transmitted bits)
    /// and watermark seed (shared by sender and receiver).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when `block_len` is
    /// zero.
    pub fn new(
        outer: ConvCode,
        block_len: usize,
        watermark_seed: u64,
    ) -> Result<Self, CodingError> {
        if block_len == 0 {
            return Err(CodingError::BadParameter(
                "block length must be positive".to_owned(),
            ));
        }
        Ok(WatermarkCode {
            outer,
            block_len,
            watermark_seed,
        })
    }

    /// The outer convolutional code.
    pub fn outer(&self) -> &ConvCode {
        &self.outer
    }

    /// Transmitted bits per data bit (the inverse of the rate).
    pub fn expansion(&self) -> usize {
        self.outer.outputs_per_input() * self.block_len
    }

    /// The code rate in data bits per transmitted bit, for `k` data
    /// bits (tail overhead included).
    pub fn rate(&self, k: usize) -> f64 {
        k as f64 / self.frame_len(k) as f64
    }

    /// Transmitted frame length for `k` data bits.
    pub fn frame_len(&self, k: usize) -> usize {
        self.outer.coded_len(k) * self.block_len
    }

    /// The pseudorandom watermark for a frame of `len` bits.
    pub fn watermark(&self, len: usize) -> Vec<bool> {
        crate::bits::random_bits(len, &mut StdRng::seed_from_u64(self.watermark_seed))
    }

    /// Encodes data bits into the transmitted frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] for an empty message.
    pub fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodingError> {
        if data.is_empty() {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a non-empty message".to_owned(),
            });
        }
        let coded = self.outer.encode(data);
        let frame_len = coded.len() * self.block_len;
        let w = self.watermark(frame_len);
        let mut out = w;
        for (b, &bit) in coded.iter().enumerate() {
            let pos = b * self.block_len;
            out[pos] ^= bit;
        }
        Ok(out)
    }

    /// Decodes a received bit stream. The receiver must know the
    /// frame's data length `k` (frame framing is out of band, as in
    /// Davey & MacKay) and the channel parameters.
    ///
    /// Allocating convenience wrapper over [`Self::decode_into`];
    /// the two are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates lattice construction/decoding errors and outer-code
    /// failures.
    pub fn decode(
        &self,
        received: &[bool],
        k: usize,
        p_d: f64,
        p_i: f64,
        p_s: f64,
    ) -> Result<Vec<bool>, CodingError> {
        let mut scratch = WatermarkScratch::new();
        let mut out = Vec::new();
        self.decode_into(&mut scratch, received, k, p_d, p_i, p_s, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode`] into caller-owned working memory; the decoded
    /// data bits replace the contents of `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    #[allow(clippy::too_many_arguments)]
    // nsc-lint: hot
    pub fn decode_into(
        &self,
        scratch: &mut WatermarkScratch,
        received: &[bool],
        k: usize,
        p_d: f64,
        p_i: f64,
        p_s: f64,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        if k == 0 {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a positive data length".to_owned(),
            });
        }
        let frame_len = self.frame_len(k);
        // Watermark and priors depend only on the cached key: rebuild
        // them (deterministically) only when the key changes.
        let key = (self.watermark_seed, self.block_len, frame_len);
        if scratch.frame_key != Some(key) {
            crate::bits::random_bits_into(
                frame_len,
                &mut StdRng::seed_from_u64(self.watermark_seed),
                &mut scratch.watermark,
            );
            scratch.priors.clear();
            scratch.priors.extend(
                (0..frame_len).map(|i| if i % self.block_len == 0 { 0.5 } else { 0.0 }),
            );
            scratch.frame_key = Some(key);
        }
        let lattice = DriftLattice::new(p_d, p_i, p_s)?;
        let post = lattice.posteriors_into(
            &mut scratch.lattice,
            &scratch.watermark,
            &scratch.priors,
            received,
        )?;
        // LLR of each outer coded bit from the posterior of its
        // data-carrying position.
        let coded_len = self.outer.coded_len(k);
        scratch.llrs.clear();
        for b in 0..coded_len {
            let p1 = post[b * self.block_len].clamp(1e-12, 1.0 - 1e-12);
            scratch.llrs.push(((1.0 - p1) / p1).ln());
        }
        self.outer
            .decode_soft_into(&scratch.llrs, &mut scratch.viterbi, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn through_channel(bits: &[bool], p_d: f64, p_i: f64, p_s: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, p_s).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    fn codec() -> WatermarkCode {
        WatermarkCode::new(ConvCode::standard_half_rate(), 3, 99).unwrap()
    }

    #[test]
    fn construction_and_rate() {
        assert!(WatermarkCode::new(ConvCode::standard_half_rate(), 0, 1).is_err());
        let c = codec();
        assert_eq!(c.expansion(), 6);
        // 100 data bits -> (100+2)*2*3 = 612 transmitted.
        assert_eq!(c.frame_len(100), 612);
        assert!((c.rate(100) - 100.0 / 612.0).abs() < 1e-12);
    }

    #[test]
    fn encode_rejects_empty() {
        assert!(codec().encode(&[]).is_err());
        assert!(codec().decode(&[true], 0, 0.1, 0.0, 0.0).is_err());
    }

    #[test]
    fn round_trip_noiseless() {
        let c = codec();
        let mut rng = StdRng::seed_from_u64(0);
        let data = random_bits(64, &mut rng);
        let sent = c.encode(&data).unwrap();
        assert_eq!(sent.len(), c.frame_len(64));
        let back = c.decode(&sent, 64, 0.0, 0.0, 0.0).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn survives_deletions() {
        let c = codec();
        let p_d = 0.08;
        let data = random_bits(300, &mut StdRng::seed_from_u64(1));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, 0.0, 0.0, 2);
        let back = c.decode(&recv, 300, p_d, 0.0, 0.0).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.02, "ber = {ber}");
    }

    #[test]
    fn survives_insertions_and_substitutions() {
        let c = codec();
        let (p_d, p_i, p_s) = (0.0, 0.08, 0.01);
        let data = random_bits(300, &mut StdRng::seed_from_u64(3));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, p_i, p_s, 4);
        let back = c.decode(&recv, 300, p_d, p_i, p_s).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.02, "ber = {ber}");
    }

    #[test]
    fn survives_combined_channel() {
        let c = codec();
        let (p_d, p_i, p_s) = (0.05, 0.05, 0.01);
        let data = random_bits(400, &mut StdRng::seed_from_u64(5));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, p_i, p_s, 6);
        let back = c.decode(&recv, 400, p_d, p_i, p_s).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.05, "ber = {ber}");
    }

    #[test]
    fn heavy_noise_degrades_gracefully() {
        // At extreme deletion rates decoding degrades but returns a
        // result (no panic, right length).
        let c = codec();
        let p_d = 0.4;
        let data = random_bits(100, &mut StdRng::seed_from_u64(7));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, 0.0, 0.0, 8);
        let back = c.decode(&recv, 100, p_d, 0.0, 0.0).unwrap();
        assert_eq!(back.len(), data.len());
    }

    #[test]
    fn different_seeds_give_different_watermarks() {
        let a = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 1).unwrap();
        let b = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 2).unwrap();
        assert_ne!(a.watermark(100), b.watermark(100));
        // Same seed: deterministic.
        assert_eq!(a.watermark(100), a.watermark(100));
    }

    #[test]
    fn rate_is_far_below_feedback_capacity() {
        // The paper's point: non-synchronized coding achieves rates
        // much lower than the feedback capacity 1 - p_d.
        let c = codec();
        let p_d = 0.05;
        let feedback_capacity = 1.0 - p_d;
        assert!(c.rate(300) < feedback_capacity / 3.0);
    }
}
