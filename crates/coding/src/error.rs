//! Error type for codecs.

use std::fmt;

/// Errors produced by encoders and decoders.
#[derive(Debug, Clone, PartialEq)]
pub enum CodingError {
    /// Bad construction parameter (rate, density, window, …).
    BadParameter(String),
    /// The input length violates the codec's framing.
    BadLength {
        /// Length supplied.
        got: usize,
        /// What the codec required (description).
        need: String,
    },
    /// Decoding failed irrecoverably (e.g. the drift lattice found no
    /// path consistent with the received length).
    DecodeFailure(String),
    /// The trial engine failed to deliver a batch while running a
    /// coded campaign (an internal invariant violation, not a coding
    /// error per se).
    Engine(String),
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            CodingError::BadLength { got, need } => {
                write!(f, "bad input length {got}: need {need}")
            }
            CodingError::DecodeFailure(msg) => write!(f, "decode failure: {msg}"),
            CodingError::Engine(msg) => write!(f, "engine failure: {msg}"),
        }
    }
}

impl std::error::Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CodingError::BadParameter("x".to_owned()),
            CodingError::BadLength {
                got: 3,
                need: "a multiple of 2".to_owned(),
            },
            CodingError::DecodeFailure("no path".to_owned()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
