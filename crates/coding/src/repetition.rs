//! Repetition coding: the negative baseline.
//!
//! Repetition with majority voting fixes substitution errors on a
//! *synchronous* channel, but is helpless against deletions and
//! insertions: one lost bit shifts every later vote window off by
//! one. The tests and experiment E9 use it to demonstrate *why*
//! synchronization-aware codes (markers, watermarks) are necessary —
//! the paper's "sophisticated coding techniques are required".

use crate::error::CodingError;
use serde::{Deserialize, Serialize};

/// An `r`-fold repetition code with majority decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionCode {
    repeat: usize,
}

impl RepetitionCode {
    /// Creates an `r`-fold repetition code.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] unless `repeat` is odd
    /// and positive.
    pub fn new(repeat: usize) -> Result<Self, CodingError> {
        if repeat == 0 || repeat.is_multiple_of(2) {
            return Err(CodingError::BadParameter(
                "repetition factor must be odd and positive".to_owned(),
            ));
        }
        Ok(RepetitionCode { repeat })
    }

    /// The repetition factor.
    pub fn repeat(&self) -> usize {
        self.repeat
    }

    /// Code rate.
    pub fn rate(&self) -> f64 {
        1.0 / self.repeat as f64
    }

    /// Encodes by repeating each bit.
    pub fn encode(&self, data: &[bool]) -> Vec<bool> {
        data.iter()
            .flat_map(|&b| std::iter::repeat_n(b, self.repeat))
            .collect()
    }

    /// Majority-decodes assuming perfect alignment: chunks of
    /// `repeat` bits vote. Shorter trailing chunks vote over what is
    /// there; a missing tail yields zeros.
    pub fn decode(&self, received: &[bool], k: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(k);
        self.decode_into(received, k, &mut out);
        out
    }

    /// [`Self::decode`] into a reused output buffer (cleared first);
    /// bit-identical to the allocating form.
    // nsc-lint: hot
    pub fn decode_into(&self, received: &[bool], k: usize, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(k);
        for b in 0..k {
            let start = b * self.repeat;
            let mut ones = 0usize;
            let mut total = 0usize;
            for r in 0..self.repeat {
                if let Some(&bit) = received.get(start + r) {
                    total += 1;
                    if bit {
                        ones += 1;
                    }
                }
            }
            out.push(total > 0 && ones * 2 > total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn construction() {
        assert!(RepetitionCode::new(0).is_err());
        assert!(RepetitionCode::new(2).is_err());
        let c = RepetitionCode::new(3).unwrap();
        assert_eq!(c.repeat(), 3);
        assert!((c.rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_and_substitution_correction() {
        let c = RepetitionCode::new(3).unwrap();
        let data = random_bits(200, &mut StdRng::seed_from_u64(0));
        let mut coded = c.encode(&data);
        assert_eq!(coded.len(), 600);
        // One flip per group is corrected.
        for g in 0..200 {
            coded[g * 3] = !coded[g * 3];
        }
        assert_eq!(c.decode(&coded, 200), data);
    }

    #[test]
    fn handles_truncated_input() {
        let c = RepetitionCode::new(3).unwrap();
        let decoded = c.decode(&[true, true], 2);
        assert_eq!(decoded, vec![true, false]);
    }

    #[test]
    fn beats_bsc_noise_when_synchronous() {
        let c = RepetitionCode::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_bits(2000, &mut rng);
        let mut coded = c.encode(&data);
        let p = 0.1;
        for b in coded.iter_mut() {
            if rng.gen::<f64>() < p {
                *b = !*b;
            }
        }
        let ber = bit_error_rate(&c.decode(&coded, 2000), &data);
        assert!(ber < 0.01, "ber = {ber}");
    }

    #[test]
    fn collapses_under_deletions() {
        // The headline negative result: a mere 2% deletion rate
        // destroys a rate-1/5 repetition code because alignment is
        // lost — while the same code shrugs off 10% substitutions.
        let c = RepetitionCode::new(5).unwrap();
        let data = random_bits(2000, &mut StdRng::seed_from_u64(2));
        let coded = c.encode(&data);
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::deletion_only(0.02).unwrap(),
        );
        let input: Vec<Symbol> = coded
            .iter()
            .map(|&b| Symbol::from_index(b as u32))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let recv: Vec<bool> = ch
            .transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect();
        let ber = bit_error_rate(&c.decode(&recv, 2000), &data);
        assert!(ber > 0.2, "expected collapse, ber = {ber}");
    }
}
