//! Systematic IRA-style LDPC codes with min-sum decoding.
//!
//! Davey & MacKay's original construction protects the sparse inner
//! stream with an LDPC outer code. This module provides a binary
//! **irregular repeat-accumulate (staircase) LDPC** code: the
//! parity part of the check matrix is dual-diagonal, so encoding is a
//! single accumulation pass (no Gaussian elimination), while decoding
//! is standard normalized min-sum belief propagation over the Tanner
//! graph. Soft inputs (LLRs) plug directly into the drift lattice's
//! posteriors.
//!
//! LLR convention matches [`crate::conv`]: positive favours bit 0.

use crate::error::CodingError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reusable belief-propagation working memory for [`LdpcCode`]: the
/// flat check-to-variable message table (one slot per Tanner-graph
/// edge), per-check message offsets, the variable-to-check messages
/// for the check currently being updated, the hard-decision buffer,
/// and the LLR buffer used by the posterior interface. After one
/// warm-up decode, [`LdpcCode::decode_into`] makes no further heap
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct LdpcScratch {
    /// Check-to-variable messages, all checks concatenated; the
    /// messages of check `c` live at `offsets[c]..offsets[c + 1]`,
    /// aligned with that check's neighbor list.
    check_to_var: Vec<f64>,
    /// Per-check start offsets into `check_to_var` (length `m + 1`).
    offsets: Vec<usize>,
    /// Variable-to-check messages for the check being updated.
    incoming: Vec<f64>,
    /// Hard decision per block bit.
    hard: Vec<bool>,
    /// LLRs derived from posteriors (posterior interface only).
    llrs: Vec<f64>,
}

impl LdpcScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A systematic staircase LDPC code with `k` data bits and `m`
/// parity bits (block length `k + m`).
///
/// # Example
///
/// ```
/// use nsc_coding::ldpc::LdpcCode;
///
/// let code = LdpcCode::new(64, 64, 3, 0xACE)?;
/// let data: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
/// let block = code.encode(&data);
/// // Hard-decision decode of the clean block returns the data.
/// let llrs: Vec<f64> = block.iter().map(|&b| if b { -2.0 } else { 2.0 }).collect();
/// assert_eq!(code.decode(&llrs, 30)?, data);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LdpcCode {
    k: usize,
    m: usize,
    /// For each check, the data-variable indices it covers.
    check_data: Vec<Vec<usize>>,
    /// For each variable (data then parity), its (check, edge slot)
    /// adjacency, where the slot indexes into that check's combined
    /// neighbor list.
    var_adj: Vec<Vec<(usize, usize)>>,
    /// For each check, its full neighbor list (data vars then parity
    /// vars).
    check_adj: Vec<Vec<usize>>,
}

impl LdpcCode {
    /// Builds a code with `k` data bits, `m` parity checks, data
    /// column weight `weight`, from a deterministic seed (both ends
    /// must agree on it).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when `k` or `m` is zero,
    /// `weight` is zero, or `weight > m`.
    pub fn new(k: usize, m: usize, weight: usize, seed: u64) -> Result<Self, CodingError> {
        if k == 0 || m == 0 {
            return Err(CodingError::BadParameter(
                "k and m must be positive".to_owned(),
            ));
        }
        if weight == 0 || weight > m {
            return Err(CodingError::BadParameter(format!(
                "column weight {weight} must be in 1..={m}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut check_data = vec![Vec::new(); m];
        for v in 0..k {
            // `weight` distinct checks per data column.
            let mut chosen = Vec::with_capacity(weight);
            while chosen.len() < weight {
                let c = rng.gen_range(0..m);
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            for &c in &chosen {
                check_data[c].push(v);
            }
        }
        // Full adjacency: data neighbors + staircase parity
        // neighbors. Check j covers parity j and (for j > 0) parity
        // j - 1:  p_j = p_{j-1} XOR (data in check j).
        let n = k + m;
        let mut check_adj: Vec<Vec<usize>> = Vec::with_capacity(m);
        for (j, data) in check_data.iter().enumerate() {
            let mut adj = data.clone();
            adj.push(k + j);
            if j > 0 {
                adj.push(k + j - 1);
            }
            check_adj.push(adj);
        }
        let mut var_adj = vec![Vec::new(); n];
        for (c, adj) in check_adj.iter().enumerate() {
            for (slot, &v) in adj.iter().enumerate() {
                var_adj[v].push((c, slot));
            }
        }
        Ok(LdpcCode {
            k,
            m,
            check_data,
            var_adj,
            check_adj,
        })
    }

    /// Data bits per block.
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Total block length `k + m`.
    pub fn block_len(&self) -> usize {
        self.k + self.m
    }

    /// Code rate `k / (k + m)`.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.block_len() as f64
    }

    /// Encodes `data` into a systematic block (data bits followed by
    /// parity bits).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != k` — framing is the caller's
    /// contract.
    pub fn encode(&self, data: &[bool]) -> Vec<bool> {
        assert_eq!(data.len(), self.k, "data length must equal k");
        let mut block = data.to_vec();
        let mut prev = false;
        for checks in &self.check_data {
            let mut p = prev;
            for &v in checks {
                p ^= data[v];
            }
            block.push(p);
            prev = p;
        }
        block
    }

    /// Returns `true` when `block` satisfies every parity check.
    pub fn check(&self, block: &[bool]) -> bool {
        if block.len() != self.block_len() {
            return false;
        }
        self.check_adj
            .iter()
            .all(|adj| !adj.iter().fold(false, |acc, &v| acc ^ block[v]))
    }

    /// Decodes channel LLRs (one per block bit, positive favours 0)
    /// with normalized min-sum belief propagation, returning the data
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] for a wrong-length input and
    /// [`CodingError::BadParameter`] for a zero iteration budget.
    /// A block that fails to converge is *not* an error: the best
    /// available hard decision is returned (errors surface as BER, as
    /// with every other codec here).
    pub fn decode(&self, llrs: &[f64], iterations: usize) -> Result<Vec<bool>, CodingError> {
        let mut scratch = LdpcScratch::new();
        let mut out = Vec::new();
        self.decode_into(&mut scratch, llrs, iterations, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode`] into caller-owned working memory; the decoded
    /// data bits replace the contents of `out`. Allocation-free once
    /// `scratch` is warm.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    // nsc-lint: hot
    pub fn decode_into(
        &self,
        scratch: &mut LdpcScratch,
        llrs: &[f64],
        iterations: usize,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        if llrs.len() != self.block_len() {
            return Err(CodingError::BadLength {
                got: llrs.len(),
                // nsc-lint: allow(hot-alloc, reason = "cold validation path: a wrong-length block aborts before belief propagation starts")
                need: format!("block length {}", self.block_len()),
            });
        }
        if iterations == 0 {
            return Err(CodingError::BadParameter(
                "need at least one iteration".to_owned(),
            ));
        }
        const NORMALIZATION: f64 = 0.75;
        // Messages live on edges, stored per check in one flat
        // buffer: check `c` owns `offsets[c]..offsets[c + 1]`,
        // aligned with check_adj[c].
        scratch.offsets.clear();
        scratch.offsets.push(0);
        let mut total = 0usize;
        for adj in &self.check_adj {
            total += adj.len();
            scratch.offsets.push(total);
        }
        scratch.check_to_var.clear();
        scratch.check_to_var.resize(total, 0.0);
        scratch.hard.clear();
        scratch.hard.resize(self.block_len(), false);
        for _ in 0..iterations {
            // Check update: for each check, combine the *extrinsic*
            // variable messages (llr + other checks' messages).
            for (c, adj) in self.check_adj.iter().enumerate() {
                // Variable-to-check messages for this check.
                scratch.incoming.clear();
                for &v in adj {
                    let mut msg = llrs[v];
                    for &(c2, slot2) in &self.var_adj[v] {
                        if c2 != c {
                            msg += scratch.check_to_var[scratch.offsets[c2] + slot2];
                        }
                    }
                    scratch.incoming.push(msg);
                }
                // Min-sum: sign product and two smallest magnitudes.
                let mut sign = 1.0f64;
                let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
                let mut argmin = 0usize;
                for (i, &msg) in scratch.incoming.iter().enumerate() {
                    if msg < 0.0 {
                        sign = -sign;
                    }
                    let mag = msg.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        argmin = i;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                let base = scratch.offsets[c];
                for (i, &msg) in scratch.incoming.iter().enumerate() {
                    let self_sign = if msg < 0.0 { -1.0 } else { 1.0 };
                    let mag = if i == argmin { min2 } else { min1 };
                    scratch.check_to_var[base + i] = NORMALIZATION * sign * self_sign * mag.min(1e3);
                }
            }
            // Posterior + hard decision.
            for (v, h) in scratch.hard.iter_mut().enumerate() {
                let mut l = llrs[v];
                for &(c, slot) in &self.var_adj[v] {
                    l += scratch.check_to_var[scratch.offsets[c] + slot];
                }
                *h = l < 0.0;
            }
            if self.check(&scratch.hard) {
                break;
            }
        }
        out.clear();
        out.extend_from_slice(&scratch.hard[..self.k]);
        Ok(())
    }

    /// Convenience: decode from per-bit probabilities of being one
    /// (e.g. the drift lattice's posteriors), clamped away from 0/1.
    ///
    /// Allocating wrapper over
    /// [`Self::decode_from_posteriors_into`]; the two are
    /// bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    pub fn decode_from_posteriors(
        &self,
        p_one: &[f64],
        iterations: usize,
    ) -> Result<Vec<bool>, CodingError> {
        let mut scratch = LdpcScratch::new();
        let mut out = Vec::new();
        self.decode_from_posteriors_into(&mut scratch, p_one, iterations, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode_from_posteriors`] into caller-owned working
    /// memory. Allocation-free once `scratch` is warm.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    // nsc-lint: hot
    pub fn decode_from_posteriors_into(
        &self,
        scratch: &mut LdpcScratch,
        p_one: &[f64],
        iterations: usize,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        // Take the LLR buffer out of the scratch so the core decode
        // can borrow the rest of it mutably alongside the LLR slice.
        let mut llrs = std::mem::take(&mut scratch.llrs);
        llrs.clear();
        llrs.extend(p_one.iter().map(|&p| {
            let p = p.clamp(1e-9, 1.0 - 1e-9);
            ((1.0 - p) / p).ln()
        }));
        let result = self.decode_into(scratch, &llrs, iterations, out);
        scratch.llrs = llrs;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::new(256, 256, 3, 7).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(LdpcCode::new(0, 10, 3, 0).is_err());
        assert!(LdpcCode::new(10, 0, 3, 0).is_err());
        assert!(LdpcCode::new(10, 10, 0, 0).is_err());
        assert!(LdpcCode::new(10, 5, 6, 0).is_err());
        assert!(LdpcCode::new(10, 10, 3, 0).is_ok());
    }

    #[test]
    fn rate_and_lengths() {
        let c = LdpcCode::new(100, 50, 3, 1).unwrap();
        assert_eq!(c.data_len(), 100);
        assert_eq!(c.block_len(), 150);
        assert!((c.rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn encoded_blocks_satisfy_all_checks() {
        let c = code();
        for seed in 0..5u64 {
            let data = random_bits(256, &mut StdRng::seed_from_u64(seed));
            let block = c.encode(&data);
            assert!(c.check(&block), "seed {seed}");
            // A flipped bit breaks at least one check.
            let mut corrupted = block.clone();
            corrupted[10] = !corrupted[10];
            assert!(!c.check(&corrupted));
        }
    }

    #[test]
    fn clean_decode_round_trips() {
        let c = code();
        let data = random_bits(256, &mut StdRng::seed_from_u64(1));
        let block = c.encode(&data);
        let llrs: Vec<f64> = block.iter().map(|&b| if b { -4.0 } else { 4.0 }).collect();
        assert_eq!(c.decode(&llrs, 20).unwrap(), data);
    }

    #[test]
    fn corrects_bsc_noise() {
        let c = code();
        let mut rng = StdRng::seed_from_u64(2);
        let mut total_ber = 0.0;
        let trials = 5;
        for _ in 0..trials {
            let data = random_bits(256, &mut rng);
            let block = c.encode(&data);
            let p = 0.04;
            let llrs: Vec<f64> = block
                .iter()
                .map(|&b| {
                    let flipped = rng.gen::<f64>() < p;
                    let observed = b ^ flipped;
                    // LLR magnitude ln((1-p)/p) with the observed sign.
                    let mag = ((1.0 - p) / p).ln();
                    if observed {
                        -mag
                    } else {
                        mag
                    }
                })
                .collect();
            let decoded = c.decode(&llrs, 50).unwrap();
            total_ber += bit_error_rate(&decoded, &data);
        }
        let ber = total_ber / trials as f64;
        assert!(ber < 0.005, "residual BER {ber}");
    }

    #[test]
    fn erasures_are_recovered() {
        let c = code();
        let data = random_bits(256, &mut StdRng::seed_from_u64(3));
        let block = c.encode(&data);
        // Erase 15% of positions (LLR 0), rest confident.
        let mut rng = StdRng::seed_from_u64(4);
        let llrs: Vec<f64> = block
            .iter()
            .map(|&b| {
                if rng.gen::<f64>() < 0.15 {
                    0.0
                } else if b {
                    -4.0
                } else {
                    4.0
                }
            })
            .collect();
        let decoded = c.decode(&llrs, 50).unwrap();
        let ber = bit_error_rate(&decoded, &data);
        assert!(ber < 0.01, "ber = {ber}");
    }

    #[test]
    fn decode_validation() {
        let c = code();
        assert!(c.decode(&[0.0; 3], 10).is_err());
        assert!(c.decode(&vec![0.0; c.block_len()], 0).is_err());
    }

    #[test]
    fn posterior_interface_matches_llr_interface() {
        let c = LdpcCode::new(64, 64, 3, 9).unwrap();
        let data = random_bits(64, &mut StdRng::seed_from_u64(5));
        let block = c.encode(&data);
        let p_one: Vec<f64> = block.iter().map(|&b| if b { 0.95 } else { 0.05 }).collect();
        assert_eq!(c.decode_from_posteriors(&p_one, 30).unwrap(), data);
    }

    #[test]
    fn dirty_scratch_decode_matches_allocating_decode() {
        // One scratch reused across codes of different shapes and
        // noise levels must reproduce the allocating interface
        // bit-for-bit: every buffer is re-sized and re-zeroed per
        // call, so stale state from a previous (larger) code cannot
        // leak in.
        let mut scratch = LdpcScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        for &(k, m) in &[(256usize, 256usize), (64, 64), (100, 50)] {
            let c = LdpcCode::new(k, m, 3, 7).unwrap();
            for trial in 0..3 {
                let data = random_bits(k, &mut rng);
                let block = c.encode(&data);
                let p = 0.04;
                let llrs: Vec<f64> = block
                    .iter()
                    .map(|&b| {
                        let flipped = rng.gen::<f64>() < p;
                        let mag = ((1.0 - p) / p).ln();
                        if b ^ flipped {
                            -mag
                        } else {
                            mag
                        }
                    })
                    .collect();
                c.decode_into(&mut scratch, &llrs, 30, &mut out).unwrap();
                assert_eq!(out, c.decode(&llrs, 30).unwrap(), "k={k} m={m} trial={trial}");
                let p_one: Vec<f64> =
                    block.iter().map(|&b| if b { 0.9 } else { 0.1 }).collect();
                c.decode_from_posteriors_into(&mut scratch, &p_one, 30, &mut out)
                    .unwrap();
                assert_eq!(out, c.decode_from_posteriors(&p_one, 30).unwrap());
            }
        }
    }

    #[test]
    fn scratch_decode_validation_matches() {
        let c = code();
        let mut scratch = LdpcScratch::new();
        let mut out = Vec::new();
        assert!(c.decode_into(&mut scratch, &[0.0; 3], 10, &mut out).is_err());
        assert!(c
            .decode_into(&mut scratch, &vec![0.0; c.block_len()], 0, &mut out)
            .is_err());
    }

    #[test]
    fn deterministic_construction_from_seed() {
        let a = LdpcCode::new(32, 32, 3, 42).unwrap();
        let b = LdpcCode::new(32, 32, 3, 42).unwrap();
        let c = LdpcCode::new(32, 32, 3, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
